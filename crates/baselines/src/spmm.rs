//! SpMM baselines: TorchBSR (BCSR), Sputnik (swizzled CSR), cuSPARSE
//! (row-split CSR).

use crate::Result;
use insum_formats::{Bcsr, Csr};
use insum_gpu::{launch, DeviceModel, Mode, Profile};
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::Tensor;

/// Build the BCSR SpMM kernel (TorchBSR's strategy): one program per
/// (block row, column tile); a dynamic loop walks the row's blocks and
/// feeds Tensor Cores. Every block row — including empty ones — costs a
/// program launch and two row-pointer loads, which is the hypersparse
/// overhead the paper's Fig. 10 discussion pins on BCSR.
fn bcsr_kernel(bm: usize, bk: usize, n: usize, xb: usize) -> (Kernel, usize) {
    let mut b = KernelBuilder::new("torchbsr_spmm");
    let ptr_p = b.input("ROWPTR");
    let idx_p = b.input("COLIDX");
    let av_p = b.input("AV");
    let b_p = b.input("B");
    let c_p = b.output("C");

    let pid0 = b.program_id(0); // column tile
    let br = b.program_id(1); // block row
    let one = b.constant(1.0);
    let lo = b.load(ptr_p, br, None, 0.0);
    let br1 = b.binary(BinOp::Add, br, one);
    let hi = b.load(ptr_p, br1, None, 0.0);

    let xb_c = b.constant(xb as f64);
    let xbase = b.binary(BinOp::Mul, pid0, xb_c);
    let xl = b.arange(xb);
    let xr = b.binary(BinOp::Add, xbase, xl);
    let x = b.expand_dims(xr, 0); // (1,X)
    let ml = b.arange(bm);
    let m_col = b.expand_dims(ml, 1); // (bm,1)
    let kl = b.arange(bk);
    let k_row = b.expand_dims(kl, 0); // (1,bk)
    let k_col = b.expand_dims(kl, 1); // (bk,1)

    let acc = b.full(vec![bm, xb], 0.0);
    let p = b.begin_loop_dyn(lo, hi);
    {
        let bc = b.load(idx_p, p, None, 0.0);
        // AV block (bm, bk) at p*bm*bk.
        let blk_sz = b.constant((bm * bk) as f64);
        let av_base = b.binary(BinOp::Mul, p, blk_sz);
        let bk_c = b.constant(bk as f64);
        let av_row = b.binary(BinOp::Mul, m_col, bk_c);
        let av_rk = b.binary(BinOp::Add, av_row, k_row);
        let av_off = b.binary(BinOp::Add, av_base, av_rk);
        let av_blk = b.load(av_p, av_off, None, 0.0);
        // B tile (bk, X) at rows bc*bk.
        let n_c = b.constant(n as f64);
        let bkn = b.constant((bk * n) as f64);
        let b_base = b.binary(BinOp::Mul, bc, bkn);
        let b_row = b.binary(BinOp::Mul, k_col, n_c);
        let b_rx = b.binary(BinOp::Add, b_row, x);
        let b_off = b.binary(BinOp::Add, b_base, b_rx);
        let b_blk = b.load(b_p, b_off, None, 0.0);
        // TorchBSR is a generic Triton template: operands go through the
        // eager-broadcasting tl.view/tl.trans layout dance (§5.2.3)
        // before reaching the dot — the reshape overhead the paper's
        // lazy-broadcasting codegen eliminates.
        let av_v = b.view(av_blk, vec![bm, bk]);
        let b_t = b.trans(b_blk);
        let b_tt = b.trans(b_t);
        b.dot_acc(acc, av_v, b_tt);
    }
    b.end_loop();

    let n_c2 = b.constant(n as f64);
    let bmn = b.constant((bm * n) as f64);
    let c_base = b.binary(BinOp::Mul, br, bmn);
    let c_row = b.binary(BinOp::Mul, m_col, n_c2);
    let c_rx = b.binary(BinOp::Add, c_row, x);
    let c_off = b.binary(BinOp::Add, c_base, c_rx);
    b.store(c_p, c_off, acc, None);
    (b.build(), xb)
}

/// Run TorchBSR-style BCSR SpMM: `C = A @ B` with `A` in [`Bcsr`].
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `n` is not divisible by the 32-wide column tile.
pub fn torch_bsr_spmm(
    a: &Bcsr,
    b: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let n = b.shape()[1];
    let (kernel, xb) = bcsr_kernel(a.bm, a.bk, n, 32);
    assert_eq!(n % xb, 0, "column count must divide the tile");
    let brows = a.rows / a.bm;
    let mut ptr = a.row_ptr.clone();
    let mut idx = a.col_idx.clone();
    let mut av = a.av.clone();
    let mut b_t = b.clone();
    let mut c = Tensor::zeros_with(vec![a.rows, n], a.av.dtype());
    let report = launch(
        &kernel,
        &[n / xb, brows],
        &mut [&mut ptr, &mut idx, &mut av, &mut b_t, &mut c],
        device,
        mode,
    )?;
    let mut profile = Profile::new();
    profile.push(report);
    Ok((c, profile))
}

/// Build the CSR SpMM kernel: one program per (row, column tile), scalar
/// dynamic loop over the row's nonzeros, vector accumulate over columns.
/// `swizzle` adds an indirection through a row-order tensor.
fn csr_kernel(n: usize, xb: usize, swizzle: bool) -> Kernel {
    let mut b = KernelBuilder::new(if swizzle {
        "sputnik_spmm"
    } else {
        "cusparse_spmm"
    });
    let order_p = if swizzle {
        Some(b.input("ORDER"))
    } else {
        None
    };
    let ptr_p = b.input("ROWPTR");
    let idx_p = b.input("COLIDX");
    let val_p = b.input("VALS");
    let b_p = b.input("B");
    let c_p = b.output("C");

    let pid0 = b.program_id(0);
    let pid1 = b.program_id(1);
    let row = match order_p {
        Some(op) => b.load(op, pid1, None, 0.0),
        None => pid1,
    };
    let one = b.constant(1.0);
    let lo = b.load(ptr_p, row, None, 0.0);
    let row1 = b.binary(BinOp::Add, row, one);
    let hi = b.load(ptr_p, row1, None, 0.0);

    let xb_c = b.constant(xb as f64);
    let xbase = b.binary(BinOp::Mul, pid0, xb_c);
    let xl = b.arange(xb);
    let x = b.binary(BinOp::Add, xbase, xl); // (X,)

    let acc = b.full(vec![xb], 0.0);
    let p = b.begin_loop_dyn(lo, hi);
    {
        let col = b.load(idx_p, p, None, 0.0);
        let val = b.load(val_p, p, None, 0.0);
        let n_c = b.constant(n as f64);
        let b_base = b.binary(BinOp::Mul, col, n_c);
        let b_off = b.binary(BinOp::Add, b_base, x);
        let b_row = b.load(b_p, b_off, None, 0.0);
        let contrib = b.binary(BinOp::Mul, val, b_row);
        b.binary_into(acc, BinOp::Add, acc, contrib);
    }
    b.end_loop();

    let n_c2 = b.constant(n as f64);
    let c_base = b.binary(BinOp::Mul, row, n_c2);
    let c_off = b.binary(BinOp::Add, c_base, x);
    b.store(c_p, c_off, acc, None);
    b.build()
}

fn run_csr(
    a: &Csr,
    b: &Tensor,
    device: &DeviceModel,
    mode: Mode,
    order: Option<Tensor>,
) -> Result<(Tensor, Profile)> {
    let n = b.shape()[1];
    let xb = 32;
    assert_eq!(n % xb, 0, "column count must divide the tile");
    let kernel = csr_kernel(n, xb, order.is_some());
    let mut ptr = a.row_ptr.clone();
    let mut idx = a.col_idx.clone();
    let mut vals = a.vals.clone();
    let mut b_t = b.clone();
    let mut c = Tensor::zeros_with(vec![a.rows, n], a.vals.dtype());
    let grid = [n / xb, a.rows];
    let report = match order {
        Some(mut ord) => launch(
            &kernel,
            &grid,
            &mut [&mut ord, &mut ptr, &mut idx, &mut vals, &mut b_t, &mut c],
            device,
            mode,
        )?,
        None => launch(
            &kernel,
            &grid,
            &mut [&mut ptr, &mut idx, &mut vals, &mut b_t, &mut c],
            device,
            mode,
        )?,
    };
    let mut profile = Profile::new();
    profile.push(report);
    Ok((c, profile))
}

/// cuSPARSE-style CSR SpMM: rows processed in storage order.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn cusparse_spmm(
    a: &Csr,
    b: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    run_csr(a, b, device, mode, None)
}

/// Sputnik-style CSR SpMM: rows sorted by descending nonzero count (the
/// row-swizzle load-balancing strategy of Gale et al.), then the same
/// row-split kernel. On skewed matrices the long rows dispatch first and
/// pack tightly across SMs.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn sputnik_spmm(
    a: &Csr,
    b: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let mut order: Vec<usize> = (0..a.rows).collect();
    order.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r)));
    let order_t = Tensor::from_indices(vec![a.rows], order.into_iter().map(|r| r as i64).collect())
        .expect("length matches");
    run_csr(a, b, device, mode, Some(order_t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_formats::Coo;
    use insum_tensor::rand_uniform;
    use insum_workloads::blocksparse::{block_sparse_dense, coo_from_degrees};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bcsr_spmm_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a_dense = block_sparse_dense(64, 64, 16, 16, 0.6, &mut rng);
        let a = Bcsr::from_dense(&a_dense, 16, 16).unwrap();
        let b = rand_uniform(vec![64, 32], -1.0, 1.0, &mut rng);
        let (c, profile) = torch_bsr_spmm(&a, &b, &DeviceModel::rtx3090(), Mode::Execute).unwrap();
        let want = a_dense.matmul(&b).unwrap();
        assert!(c.allclose(&want, 1e-4, 1e-4));
        assert!(
            profile.total_stats().flops_tc_f32 > 0,
            "BCSR path uses tensor cores"
        );
    }

    #[test]
    fn bcsr_pays_for_empty_rows() {
        // A hypersparse matrix with one block: BCSR still runs a program
        // per block row.
        let mut dense = Tensor::zeros(vec![256, 64]);
        for i in 0..16 {
            for j in 0..16 {
                dense.set(&[i, j], 1.0);
            }
        }
        let a = Bcsr::from_dense(&dense, 16, 16).unwrap();
        let b = Tensor::ones(vec![64, 32]);
        let (_, profile) = torch_bsr_spmm(&a, &b, &DeviceModel::rtx3090(), Mode::Execute).unwrap();
        assert_eq!(profile.reports[0].stats.instances, (256 / 16));
    }

    #[test]
    fn csr_kernels_match_reference() {
        let mut rng = SmallRng::seed_from_u64(2);
        let coo = coo_from_degrees(&[5, 0, 9, 2, 7, 1, 3, 4], 16, &mut rng);
        let a = Csr::from_coo(&coo);
        let b = rand_uniform(vec![16, 32], -1.0, 1.0, &mut rng);
        let want = coo.to_dense().matmul(&b).unwrap();
        let device = DeviceModel::rtx3090();
        let (c1, _) = cusparse_spmm(&a, &b, &device, Mode::Execute).unwrap();
        let (c2, _) = sputnik_spmm(&a, &b, &device, Mode::Execute).unwrap();
        assert!(c1.allclose(&want, 1e-4, 1e-4));
        assert!(c2.allclose(&want, 1e-4, 1e-4));
    }

    #[test]
    fn sputnik_wins_on_skewed_rows() {
        // One huge row late in the matrix: in storage order it lands on
        // an SM last (straggler); sorted first it overlaps everything.
        let mut degrees = vec![2usize; 400];
        degrees[399] = 800;
        let mut rng = SmallRng::seed_from_u64(3);
        let coo = coo_from_degrees(&degrees, 1024, &mut rng);
        let a = Csr::from_coo(&coo);
        let b = rand_uniform(vec![1024, 32], -1.0, 1.0, &mut rng);
        let device = DeviceModel::rtx3090();
        let (_, p_cus) = cusparse_spmm(&a, &b, &device, Mode::Analytic).unwrap();
        let (_, p_spt) = sputnik_spmm(&a, &b, &device, Mode::Analytic).unwrap();
        assert!(
            p_spt.total_time() < p_cus.total_time(),
            "sputnik {:.3e} should beat cusparse {:.3e} on skew",
            p_spt.total_time(),
            p_cus.total_time()
        );
    }

    #[test]
    fn csr_agree_on_empty_matrix() {
        let coo = Coo::from_triplets(8, 8, &[(0, 0, 1.0)]).unwrap();
        let a = Csr::from_coo(&coo);
        let b = Tensor::ones(vec![8, 32]);
        let device = DeviceModel::rtx3090();
        let (c, _) = cusparse_spmm(&a, &b, &device, Mode::Execute).unwrap();
        assert_eq!(c.at(&[0, 0]), 1.0);
        assert_eq!(c.at(&[1, 0]), 0.0);
    }
}
