//! Hand-written baseline kernels, re-implemented on the kernel IR.
//!
//! Every library the paper compares against is reproduced here as a
//! kernel-IR program embodying its published algorithmic strategy, so all
//! comparisons run on the same simulator and cost model as the Insum
//! compiler output:
//!
//! | Paper baseline | Module | Strategy reproduced |
//! |---|---|---|
//! | dense matmul (cuBLAS) | [`dense`] | tiled `tl.dot` GEMM |
//! | TorchBSR | [`spmm::torch_bsr_spmm`] | BCSR with per-block-row pointers (pays `O(N)` row overhead) |
//! | Sputnik | [`spmm::sputnik_spmm`] | CSR with rows sorted by length (load-balancing swizzle) |
//! | cuSPARSE | [`spmm::cusparse_spmm`] | CSR row-split, launch order as stored |
//! | TorchSparse Algo1 | [`conv::implicit_gemm_conv`] | ImplicitGEMM over a dense 27×V neighbour table |
//! | TorchSparse Algo2 | [`conv::fetch_on_demand_conv`] | per-offset gather → GEMM → scatter (3 launches × 27) |
//! | TACO | [`conv::taco_conv`] | unscheduled scalar kernel, no Tensor Cores |
//! | SparseTIR | [`conv::sparsetir_conv`] | manually scheduled fused kernel (fixed tiles, eager broadcasting) |
//! | e3nn | [`tp::e3nn_tp`] | per-path dense CG contraction + batched GEMM (2 launches/path) |
//! | cuequivariance | [`tp::cuequivariance_tp`] | specialized fused kernel per path (CG baked in, no Tensor Cores) |
//!
//! Each baseline returns its output tensor plus the [`insum_gpu::Profile`]
//! of every kernel it launched.

pub mod conv;
pub mod dense;
pub mod spmm;
pub mod tp;

use insum_gpu::GpuError;
use std::error::Error;
use std::fmt;

/// Error from running a baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// Simulator error.
    Gpu(GpuError),
    /// Invalid workload configuration.
    Invalid(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Gpu(e) => write!(f, "gpu error: {e}"),
            BaselineError::Invalid(msg) => write!(f, "invalid workload: {msg}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for BaselineError {
    fn from(e: GpuError) -> Self {
        BaselineError::Gpu(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
