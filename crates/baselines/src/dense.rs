//! Tiled dense matmul — the cuBLAS-class baseline of paper Fig. 10.

use crate::Result;
use insum_gpu::{launch, DeviceModel, Mode, Profile};
use insum_kernel::{BinOp, Kernel, KernelBuilder};
use insum_tensor::Tensor;

/// Build the tiled GEMM kernel `C[M,N] = A[M,K] @ B[K,N]`.
fn gemm_kernel(m: usize, k: usize, n: usize, tile: usize) -> (Kernel, Vec<usize>) {
    assert!(
        m.is_multiple_of(tile) && n.is_multiple_of(tile) && k.is_multiple_of(tile),
        "gemm extents must divide the tile"
    );
    let mut b = KernelBuilder::new("dense_gemm");
    let a_p = b.input("A");
    let b_p = b.input("B");
    let c_p = b.output("C");
    let pid0 = b.program_id(0);
    let pid1 = b.program_id(1);
    let tile_c = b.constant(tile as f64);
    let xbase = b.binary(BinOp::Mul, pid0, tile_c);
    let ybase = b.binary(BinOp::Mul, pid1, tile_c);
    let lanes = b.arange(tile);
    let xr = b.binary(BinOp::Add, xbase, lanes);
    let yr = b.binary(BinOp::Add, ybase, lanes);
    let y = b.expand_dims(yr, 1); // (Y,1)
    let x = b.expand_dims(xr, 0); // (1,X)
    let acc = b.full(vec![tile, tile], 0.0);
    let i = b.begin_loop(0, (k / tile) as i64, 1);
    let rbase = b.binary(BinOp::Mul, i, tile_c);
    let r = b.binary(BinOp::Add, rbase, lanes);
    let r_row = b.expand_dims(r, 0); // (1,R)
    let r_col = b.expand_dims(r, 1); // (R,1)
    let k_c = b.constant(k as f64);
    let n_c = b.constant(n as f64);
    let a_off_y = b.binary(BinOp::Mul, y, k_c);
    let a_off = b.binary(BinOp::Add, a_off_y, r_row); // (Y,R)
    let a_blk = b.load(a_p, a_off, None, 0.0);
    let b_off_r = b.binary(BinOp::Mul, r_col, n_c);
    let b_off = b.binary(BinOp::Add, b_off_r, x); // (R,X)
    let b_blk = b.load(b_p, b_off, None, 0.0);
    b.dot_acc(acc, a_blk, b_blk);
    b.end_loop();
    let c_off_y = b.binary(BinOp::Mul, y, n_c);
    let c_off = b.binary(BinOp::Add, c_off_y, x);
    b.store(c_p, c_off, acc, None);
    (b.build(), vec![n / tile, m / tile])
}

/// Run the dense GEMM baseline: `C = A @ B`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the matrix extents are not divisible by 32 (the fixed tile of
/// this hand-written kernel, as in real template GEMMs).
pub fn dense_matmul(
    a: &Tensor,
    b: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let (kernel, grid) = gemm_kernel(m, k, n, 32);
    let mut a_t = a.clone();
    let mut b_t = b.clone();
    let mut c_t = Tensor::zeros_with(vec![m, n], a.dtype());
    let report = launch(
        &kernel,
        &grid,
        &mut [&mut a_t, &mut b_t, &mut c_t],
        device,
        mode,
    )?;
    let mut profile = Profile::new();
    profile.push(report);
    Ok((c_t, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::rand_uniform;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gemm_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = rand_uniform(vec![64, 32], -1.0, 1.0, &mut rng);
        let b = rand_uniform(vec![32, 64], -1.0, 1.0, &mut rng);
        let (c, profile) = dense_matmul(&a, &b, &DeviceModel::rtx3090(), Mode::Execute).unwrap();
        let want = a.matmul(&b).unwrap();
        assert!(c.allclose(&want, 1e-4, 1e-4));
        assert_eq!(profile.launches(), 1);
        assert!(profile.total_stats().flops_tc_f32 > 0);
    }

    #[test]
    fn f16_gemm_uses_f16_pipe() {
        use insum_tensor::DType;
        let mut rng = SmallRng::seed_from_u64(2);
        let a = rand_uniform(vec![32, 32], -1.0, 1.0, &mut rng).cast(DType::F16);
        let b = rand_uniform(vec![32, 32], -1.0, 1.0, &mut rng).cast(DType::F16);
        let (_, profile) = dense_matmul(&a, &b, &DeviceModel::rtx3090(), Mode::Execute).unwrap();
        let s = profile.total_stats();
        assert!(s.flops_tc_f16 > 0);
        assert_eq!(s.flops_tc_f32, 0);
    }
}
