//! Point-cloud sparse convolution baselines (paper §6.4, Fig. 12,
//! Table 3): TorchSparse Algo1 (ImplicitGEMM), TorchSparse Algo2
//! (Fetch-on-Demand), TACO, and SparseTIR.

use crate::{BaselineError, Result};
use insum_gpu::{launch, DeviceModel, Mode, Profile};
use insum_kernel::{BinOp, KernelBuilder};
use insum_tensor::Tensor;
use insum_workloads::pointcloud::VoxelScene;
use std::collections::HashMap;

/// Dense 27×V neighbour table: entry `[z, v]` is the input-voxel index of
/// out-voxel `v`'s neighbour at offset `z`, or −1 when absent. This is
/// the "implicit" structure ImplicitGEMM iterates over.
pub fn neighbor_table(scene: &VoxelScene) -> Tensor {
    let index: HashMap<[i32; 3], usize> = scene
        .voxels
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let v_count = scene.voxels.len();
    let mut data = vec![-1i64; 27 * v_count];
    for (out_idx, &v) in scene.voxels.iter().enumerate() {
        let mut z = 0usize;
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let n = [v[0] + dx, v[1] + dy, v[2] + dz];
                    if let Some(&in_idx) = index.get(&n) {
                        data[z * v_count + out_idx] = in_idx as i64;
                    }
                    z += 1;
                }
            }
        }
    }
    Tensor::from_indices(vec![27 * v_count], data).expect("length matches")
}

/// Unpadded kernel-map pairs grouped by weight offset:
/// `pairs[z] = [(out_voxel, in_voxel), ...]`.
pub fn pairs_by_offset(scene: &VoxelScene) -> Vec<Vec<(usize, usize)>> {
    let index: HashMap<[i32; 3], usize> = scene
        .voxels
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let mut out: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 27];
    for (out_idx, &v) in scene.voxels.iter().enumerate() {
        let mut z = 0usize;
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let n = [v[0] + dx, v[1] + dy, v[2] + dz];
                    if let Some(&in_idx) = index.get(&n) {
                        out[z].push((out_idx, in_idx));
                    }
                    z += 1;
                }
            }
        }
    }
    out
}

fn check_channels(c: usize, m: usize, tile: usize) -> Result<()> {
    if !c.is_multiple_of(tile) || !m.is_multiple_of(tile) {
        return Err(BaselineError::Invalid(format!(
            "channel counts ({c}, {m}) must divide the {tile}-wide tile"
        )));
    }
    Ok(())
}

/// TorchSparse Algo1 — ImplicitGEMM: a single fused kernel iterating all
/// 27 offsets over a dense neighbour table with validity masks; absent
/// neighbours still occupy Tensor-Core lanes (the wasted-compute
/// trade-off the paper's grouped formats avoid).
///
/// # Errors
///
/// [`BaselineError::Invalid`] if channels don't divide the 16-wide tiles;
/// simulator errors are propagated.
pub fn implicit_gemm_conv(
    scene: &VoxelScene,
    input: &Tensor,
    weight: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let v_count = scene.voxels.len();
    let c = input.shape()[1];
    let m = weight.shape()[2];
    let (yb, xb, rb) = (16usize, 16usize, 16usize);
    check_channels(c, m, rb)?;

    let mut b = KernelBuilder::new("torchsparse_implicit_gemm");
    let nbr_p = b.input("NBR");
    let in_p = b.input("IN");
    let w_p = b.input("W");
    let out_p = b.output("OUT");

    let pid0 = b.program_id(0); // m tile
    let pid1 = b.program_id(1); // voxel tile
    let yb_c = b.constant(yb as f64);
    let ybase = b.binary(BinOp::Mul, pid1, yb_c);
    let yl = b.arange(yb);
    let y = b.binary(BinOp::Add, ybase, yl); // (Y,)
    let v_c = b.constant(v_count as f64);
    let y_mask = b.binary(BinOp::Lt, y, v_c); // (Y,)
    let xb_c = b.constant(xb as f64);
    let xbase = b.binary(BinOp::Mul, pid0, xb_c);
    let xl = b.arange(xb);
    let xr = b.binary(BinOp::Add, xbase, xl);
    let x = b.expand_dims(xr, 0); // (1,X)

    let acc = b.full(vec![yb, xb], 0.0);
    let z = b.begin_loop(0, 27, 1);
    {
        let zv = b.binary(BinOp::Mul, z, v_c);
        let nbr_off = b.binary(BinOp::Add, zv, y);
        let nbr = b.load(nbr_p, nbr_off, Some(y_mask), -1.0); // (Y,)
        let zero = b.constant(0.0);
        let valid = b.binary(BinOp::Ge, nbr, zero); // (Y,) covers absent + oob
        let valid2 = b.expand_dims(valid, 1); // (Y,1)
        let nbr2 = b.expand_dims(nbr, 1); // (Y,1)
        let i = b.begin_loop(0, (c / rb) as i64, 1);
        {
            let rb_c = b.constant(rb as f64);
            let rbase = b.binary(BinOp::Mul, i, rb_c);
            let rl = b.arange(rb);
            let r = b.binary(BinOp::Add, rbase, rl); // (R,)
            let r_row = b.expand_dims(r, 0); // (1,R)
            let r_col = b.expand_dims(r, 1); // (R,1)
            let c_c = b.constant(c as f64);
            let in_row = b.binary(BinOp::Mul, nbr2, c_c);
            let in_off = b.binary(BinOp::Add, in_row, r_row); // (Y,R)
            let in_blk = b.load(in_p, in_off, Some(valid2), 0.0);
            let m_c = b.constant(m as f64);
            let cm = b.constant((c * m) as f64);
            let w_base = b.binary(BinOp::Mul, z, cm);
            let w_row = b.binary(BinOp::Mul, r_col, m_c);
            let w_rx = b.binary(BinOp::Add, w_row, x);
            let w_off = b.binary(BinOp::Add, w_base, w_rx); // (R,X)
            let w_blk = b.load(w_p, w_off, None, 0.0);
            b.dot_acc(acc, in_blk, w_blk);
        }
        b.end_loop();
    }
    b.end_loop();
    let m_c2 = b.constant(m as f64);
    let y2 = b.expand_dims(y, 1);
    let o_row = b.binary(BinOp::Mul, y2, m_c2);
    let o_off = b.binary(BinOp::Add, o_row, x);
    let y_mask2 = b.expand_dims(y_mask, 1);
    b.store(out_p, o_off, acc, Some(y_mask2));
    let kernel = b.build();

    let mut nbr_t = neighbor_table(scene);
    let mut in_t = input.clone();
    let mut w_t = weight.clone();
    let mut out_t = Tensor::zeros_with(vec![v_count, m], input.dtype());
    let grid = [m / xb, v_count.div_ceil(yb)];
    let report = launch(
        &kernel,
        &grid,
        &mut [&mut nbr_t, &mut in_t, &mut w_t, &mut out_t],
        device,
        mode,
    )?;
    let mut profile = Profile::new();
    profile.push(report);
    Ok((out_t, profile))
}

/// TorchSparse Algo2 — Fetch-on-Demand: per weight offset, a gather
/// kernel, a dense GEMM, and a scatter kernel (up to 81 launches with
/// materialized intermediates — efficient GEMMs but heavy launch and
/// DRAM traffic).
///
/// # Errors
///
/// [`BaselineError::Invalid`] on channel/tile mismatch; simulator errors
/// are propagated.
pub fn fetch_on_demand_conv(
    scene: &VoxelScene,
    input: &Tensor,
    weight: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let v_count = scene.voxels.len();
    let c = input.shape()[1];
    let m = weight.shape()[2];
    let (yb, xb, rb) = (16usize, 16usize, 16usize);
    check_channels(c, m, rb)?;
    let mut out_t = Tensor::zeros_with(vec![v_count, m], input.dtype());
    let mut profile = Profile::new();

    for (z, pairs) in pairs_by_offset(scene).into_iter().enumerate() {
        if pairs.is_empty() {
            continue;
        }
        let len = pairs.len();
        let in_idx =
            Tensor::from_indices(vec![len], pairs.iter().map(|&(_, i)| i as i64).collect())
                .expect("length matches");
        let out_idx =
            Tensor::from_indices(vec![len], pairs.iter().map(|&(o, _)| o as i64).collect())
                .expect("length matches");

        // (1) Gather: G[j, c] = IN[in_idx[j], c].
        let mut g = Tensor::zeros_with(vec![len, c], input.dtype());
        {
            let total = len * c;
            let lanes = 256usize;
            let mut b = KernelBuilder::new("tsp2_gather");
            let in_p = b.input("IN");
            let idx_p = b.input("IDX");
            let g_p = b.output("G");
            let pid = b.program_id(0);
            let l_c = b.constant(lanes as f64);
            let base = b.binary(BinOp::Mul, pid, l_c);
            let ll = b.arange(lanes);
            let flat = b.binary(BinOp::Add, base, ll);
            let total_c = b.constant(total as f64);
            let mask = b.binary(BinOp::Lt, flat, total_c);
            let c_c = b.constant(c as f64);
            let ci = b.binary(BinOp::Mod, flat, c_c);
            let j = b.binary(BinOp::FloorDiv, flat, c_c);
            let jv = b.load(idx_p, j, Some(mask), 0.0);
            let row = b.binary(BinOp::Mul, jv, c_c);
            let off = b.binary(BinOp::Add, row, ci);
            let v = b.load(in_p, off, Some(mask), 0.0);
            b.store(g_p, flat, v, Some(mask));
            let kernel = b.build();
            let mut in_t = input.clone();
            let mut idx_t = in_idx.clone();
            let report = launch(
                &kernel,
                &[total.div_ceil(lanes)],
                &mut [&mut in_t, &mut idx_t, &mut g],
                device,
                mode,
            )?;
            profile.push(report);
        }

        // (2) GEMM: T = G @ W[z] with a masked tiled kernel.
        let mut t = Tensor::zeros_with(vec![len, m], input.dtype());
        {
            let mut b = KernelBuilder::new("tsp2_gemm");
            let g_p = b.input("G");
            let w_p = b.input("W");
            let t_p = b.output("T");
            let pid0 = b.program_id(0);
            let pid1 = b.program_id(1);
            let yb_c = b.constant(yb as f64);
            let ybase = b.binary(BinOp::Mul, pid1, yb_c);
            let yl = b.arange(yb);
            let yr = b.binary(BinOp::Add, ybase, yl);
            let len_c = b.constant(len as f64);
            let ym = b.binary(BinOp::Lt, yr, len_c);
            let y = b.expand_dims(yr, 1);
            let ym2 = b.expand_dims(ym, 1);
            let xb_c = b.constant(xb as f64);
            let xbase = b.binary(BinOp::Mul, pid0, xb_c);
            let xl = b.arange(xb);
            let xr = b.binary(BinOp::Add, xbase, xl);
            let x = b.expand_dims(xr, 0);
            let acc = b.full(vec![yb, xb], 0.0);
            let i = b.begin_loop(0, (c / rb) as i64, 1);
            {
                let rb_c = b.constant(rb as f64);
                let rbase = b.binary(BinOp::Mul, i, rb_c);
                let rl = b.arange(rb);
                let r = b.binary(BinOp::Add, rbase, rl);
                let r_row = b.expand_dims(r, 0);
                let r_col = b.expand_dims(r, 1);
                let c_c = b.constant(c as f64);
                let g_row = b.binary(BinOp::Mul, y, c_c);
                let g_off = b.binary(BinOp::Add, g_row, r_row);
                let g_blk = b.load(g_p, g_off, Some(ym2), 0.0);
                let m_c = b.constant(m as f64);
                let cm = b.constant((c * m) as f64);
                let zc = b.constant(z as f64);
                let w_base = b.binary(BinOp::Mul, zc, cm);
                let w_row = b.binary(BinOp::Mul, r_col, m_c);
                let w_rx = b.binary(BinOp::Add, w_row, x);
                let w_off = b.binary(BinOp::Add, w_base, w_rx);
                let w_blk = b.load(w_p, w_off, None, 0.0);
                b.dot_acc(acc, g_blk, w_blk);
            }
            b.end_loop();
            let m_c2 = b.constant(m as f64);
            let t_row = b.binary(BinOp::Mul, y, m_c2);
            let t_off = b.binary(BinOp::Add, t_row, x);
            b.store(t_p, t_off, acc, Some(ym2));
            let kernel = b.build();
            let mut w_t = weight.clone();
            let report = launch(
                &kernel,
                &[m / xb, len.div_ceil(yb)],
                &mut [&mut g, &mut w_t, &mut t],
                device,
                mode,
            )?;
            profile.push(report);
        }

        // (3) Scatter: OUT[out_idx[j], m] += T[j, m].
        {
            let total = len * m;
            let lanes = 256usize;
            let mut b = KernelBuilder::new("tsp2_scatter");
            let t_p = b.input("T");
            let idx_p = b.input("IDX");
            let out_p = b.output("OUT");
            let pid = b.program_id(0);
            let l_c = b.constant(lanes as f64);
            let base = b.binary(BinOp::Mul, pid, l_c);
            let ll = b.arange(lanes);
            let flat = b.binary(BinOp::Add, base, ll);
            let total_c = b.constant(total as f64);
            let mask = b.binary(BinOp::Lt, flat, total_c);
            let m_c = b.constant(m as f64);
            let mi = b.binary(BinOp::Mod, flat, m_c);
            let j = b.binary(BinOp::FloorDiv, flat, m_c);
            let jv = b.load(idx_p, j, Some(mask), 0.0);
            let v = b.load(t_p, flat, Some(mask), 0.0);
            let row = b.binary(BinOp::Mul, jv, m_c);
            let off = b.binary(BinOp::Add, row, mi);
            b.atomic_add(out_p, off, v, Some(mask));
            let kernel = b.build();
            let mut idx_t = out_idx.clone();
            let report = launch(
                &kernel,
                &[total.div_ceil(lanes)],
                &mut [&mut t, &mut idx_t, &mut out_t],
                device,
                mode,
            )?;
            profile.push(report);
        }
    }
    Ok((out_t, profile))
}

/// TACO-style conv: the schedule the paper reports after hours of manual
/// search — one program per kernel-map pair, scalar channel loop, no
/// shared memory, no Tensor Cores, atomics per output element.
///
/// # Errors
///
/// Simulator errors are propagated.
pub fn taco_conv(
    scene: &VoxelScene,
    input: &Tensor,
    weight: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let v_count = scene.voxels.len();
    let c = input.shape()[1];
    let m = weight.shape()[2];
    let mut outs = Vec::new();
    let mut ins = Vec::new();
    let mut zs = Vec::new();
    for (z, pairs) in pairs_by_offset(scene).into_iter().enumerate() {
        for (o, i) in pairs {
            outs.push(o as i64);
            ins.push(i as i64);
            zs.push(z as i64);
        }
    }
    let pair_count = outs.len();
    let mut b = KernelBuilder::new("taco_conv");
    let oi_p = b.input("OUTI");
    let ii_p = b.input("INI");
    let zi_p = b.input("ZI");
    let in_p = b.input("IN");
    let w_p = b.input("W");
    let out_p = b.output("OUT");
    let pid = b.program_id(0);
    let oi = b.load(oi_p, pid, None, 0.0);
    let ii = b.load(ii_p, pid, None, 0.0);
    let zi = b.load(zi_p, pid, None, 0.0);
    let ml = b.arange(m);
    let acc = b.full(vec![m], 0.0);
    let cc = b.begin_loop(0, c as i64, 1);
    {
        let c_c = b.constant(c as f64);
        let in_row = b.binary(BinOp::Mul, ii, c_c);
        let in_off = b.binary(BinOp::Add, in_row, cc);
        let in_v = b.load(in_p, in_off, None, 0.0); // scalar
        let m_c = b.constant(m as f64);
        let cm = b.constant((c * m) as f64);
        let w_base = b.binary(BinOp::Mul, zi, cm);
        let w_row = b.binary(BinOp::Mul, cc, m_c);
        let w_zr = b.binary(BinOp::Add, w_base, w_row);
        let w_off = b.binary(BinOp::Add, w_zr, ml);
        let w_v = b.load(w_p, w_off, None, 0.0); // (M,)
        let contrib = b.binary(BinOp::Mul, in_v, w_v);
        b.binary_into(acc, BinOp::Add, acc, contrib);
    }
    b.end_loop();
    let m_c2 = b.constant(m as f64);
    let o_row = b.binary(BinOp::Mul, oi, m_c2);
    let o_off = b.binary(BinOp::Add, o_row, ml);
    b.atomic_add(out_p, o_off, acc, None);
    let kernel = b.build();

    let mut oi_t = Tensor::from_indices(vec![pair_count], outs).expect("length matches");
    let mut ii_t = Tensor::from_indices(vec![pair_count], ins).expect("length matches");
    let mut zi_t = Tensor::from_indices(vec![pair_count], zs).expect("length matches");
    let mut in_t = input.clone();
    let mut w_t = weight.clone();
    let mut out_t = Tensor::zeros_with(vec![v_count, m], input.dtype());
    let report = launch(
        &kernel,
        &[pair_count],
        &mut [
            &mut oi_t, &mut ii_t, &mut zi_t, &mut in_t, &mut w_t, &mut out_t,
        ],
        device,
        mode,
    )?;
    let mut profile = Profile::new();
    profile.push(report);
    Ok((out_t, profile))
}

/// SparseTIR-style conv: the authors' hand-crafted composable schedule —
/// grouped format and a fused Tensor-Core kernel, but with fixed
/// (untuned) 16³ tiles and eager broadcasting. Implemented by driving the
/// Insum codegen with that fixed manual schedule, which is exactly what
/// SparseTIR's ~800-line schedule encodes.
///
/// # Errors
///
/// Propagates codegen/simulator errors as [`BaselineError::Invalid`].
pub fn sparsetir_conv(
    scene: &VoxelScene,
    input: &Tensor,
    weight: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    use insum_graph::TensorMeta;
    use insum_inductor::{build_plan, compile_fused, run_fused, CodegenOptions};
    use std::collections::BTreeMap;

    let km = insum_workloads::pointcloud::kernel_map(scene, 16);
    let v_count = scene.voxels.len();
    let m = weight.shape()[2];
    let stmt =
        insum_lang::parse("Out[MAPX[p,q],m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]")
            .expect("statement is well-formed");
    let out0 = Tensor::zeros_with(vec![v_count, m], input.dtype());
    let binds: Vec<(&str, Tensor)> = vec![
        ("Out", out0),
        ("MAPX", km.mapx.clone()),
        ("MAPY", km.mapy.clone()),
        ("MAPZ", km.mapz.clone()),
        ("MAPV", km.mapv.clone()),
        ("In", input.clone()),
        ("Weight", weight.clone()),
    ];
    let metas: BTreeMap<String, TensorMeta> = binds
        .iter()
        .map(|(n, t)| {
            (
                n.to_string(),
                TensorMeta::new(t.shape().to_vec(), t.dtype()),
            )
        })
        .collect();
    let inputs: BTreeMap<String, Tensor> =
        binds.into_iter().map(|(n, t)| (n.to_string(), t)).collect();
    let plan = build_plan(&stmt, &metas)
        .map_err(|e| BaselineError::Invalid(format!("sparsetir plan: {e}")))?;
    let opts = CodegenOptions {
        tensor_cores: true,
        lazy_broadcast: false,
        yblock: Some(16),
        xblock: Some(16),
        rblock: Some(16),
    };
    let op = compile_fused(&plan, &opts)
        .map_err(|e| BaselineError::Invalid(format!("sparsetir codegen: {e}")))?;
    let (out, report) = run_fused(&op, &inputs, device, mode)
        .map_err(|e| BaselineError::Invalid(format!("sparsetir run: {e}")))?;
    let mut profile = Profile::new();
    profile.push(report);
    Ok((out, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::rand_uniform;
    use insum_workloads::pointcloud::{generate_points, voxelize, RoomSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_scene() -> VoxelScene {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = RoomSpec {
            name: "t",
            w: 1.5,
            d: 1.5,
            h: 1.5,
            furniture: 1,
        };
        voxelize(&generate_points(&spec, 0.3, &mut rng), 0.3)
    }

    fn reference_conv(scene: &VoxelScene, input: &Tensor, weight: &Tensor) -> Tensor {
        let v = scene.voxels.len();
        let c = input.shape()[1];
        let m = weight.shape()[2];
        let mut out = Tensor::zeros(vec![v, m]);
        for (z, pairs) in pairs_by_offset(scene).into_iter().enumerate() {
            for (o, i) in pairs {
                for mi in 0..m {
                    let mut acc = out.at(&[o, mi]);
                    for ci in 0..c {
                        acc += input.at(&[i, ci]) * weight.at(&[z, ci, mi]);
                    }
                    out.set(&[o, mi], acc);
                }
            }
        }
        out
    }

    fn conv_setup() -> (VoxelScene, Tensor, Tensor, Tensor) {
        let scene = tiny_scene();
        let mut rng = SmallRng::seed_from_u64(2);
        let input = rand_uniform(vec![scene.voxels.len(), 16], -1.0, 1.0, &mut rng);
        let weight = rand_uniform(vec![27, 16, 16], -0.5, 0.5, &mut rng);
        let want = reference_conv(&scene, &input, &weight);
        (scene, input, weight, want)
    }

    #[test]
    fn implicit_gemm_matches_reference() {
        let (scene, input, weight, want) = conv_setup();
        let (got, profile) = implicit_gemm_conv(
            &scene,
            &input,
            &weight,
            &DeviceModel::rtx3090(),
            Mode::Execute,
        )
        .unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "diff {:?}",
            got.max_abs_diff(&want)
        );
        assert_eq!(
            profile.launches(),
            1,
            "ImplicitGEMM is a single fused kernel"
        );
    }

    #[test]
    fn fetch_on_demand_matches_reference() {
        let (scene, input, weight, want) = conv_setup();
        let (got, profile) = fetch_on_demand_conv(
            &scene,
            &input,
            &weight,
            &DeviceModel::rtx3090(),
            Mode::Execute,
        )
        .unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "diff {:?}",
            got.max_abs_diff(&want)
        );
        assert!(profile.launches() > 27, "three kernels per nonempty offset");
    }

    #[test]
    fn taco_matches_reference_but_no_tensor_cores() {
        let (scene, input, weight, want) = conv_setup();
        let (got, profile) = taco_conv(
            &scene,
            &input,
            &weight,
            &DeviceModel::rtx3090(),
            Mode::Execute,
        )
        .unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "diff {:?}",
            got.max_abs_diff(&want)
        );
        let s = profile.total_stats();
        assert_eq!(s.flops_tc_f16 + s.flops_tc_f32, 0, "TACO path is scalar");
        assert!(s.atomics > 0);
    }

    #[test]
    fn sparsetir_matches_reference() {
        let (scene, input, weight, want) = conv_setup();
        let (got, profile) = sparsetir_conv(
            &scene,
            &input,
            &weight,
            &DeviceModel::rtx3090(),
            Mode::Execute,
        )
        .unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "diff {:?}",
            got.max_abs_diff(&want)
        );
        assert_eq!(profile.launches(), 1);
        assert!(
            profile.total_stats().smem_bytes > 0,
            "eager broadcasting pays smem"
        );
    }

    #[test]
    fn neighbor_table_center_is_identity() {
        let scene = tiny_scene();
        let nbr = neighbor_table(&scene);
        let v = scene.voxels.len();
        for i in 0..v {
            assert_eq!(nbr.at_i64(&[13 * v + i]), i as i64);
        }
    }

    #[test]
    fn taco_much_slower_than_implicit_gemm() {
        // At the tiny test scene the fixed launch overhead dominates both
        // kernels, so compare the per-kernel device work (time minus one
        // launch) — the quantity that scales with the scene.
        let (scene, input, weight, _) = conv_setup();
        let device = DeviceModel::rtx3090();
        let (_, p_taco) = taco_conv(&scene, &input, &weight, &device, Mode::Analytic).unwrap();
        let (_, p_ig) =
            implicit_gemm_conv(&scene, &input, &weight, &device, Mode::Analytic).unwrap();
        let work = |p: &Profile| p.total_time() - p.launches() as f64 * device.launch_overhead;
        // At this tiny test scene the gap is modest (~1.7x); Table 3
        // demonstrates the ~50x gap at benchmark scale.
        assert!(
            work(&p_taco) > 1.5 * work(&p_ig),
            "taco {:.3e} vs implicit gemm {:.3e}",
            work(&p_taco),
            work(&p_ig)
        );
    }
}
