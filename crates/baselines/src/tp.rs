//! Equivariant tensor-product baselines (paper §6.5, Table 2): e3nn and
//! cuequivariance.

use crate::Result;
use insum_gpu::{launch, DeviceModel, Mode, Profile};
use insum_kernel::{BinOp, KernelBuilder};
use insum_tensor::Tensor;
use insum_workloads::equivariant::{clebsch_gordan, irrep_offset, CgTensor};

/// e3nn-style tensor product: for every coupling path, (1) contract the
/// *dense* per-path CG block with the inputs (including its zeros —
/// e3nn's format-agnostic einsum), then (2) a batched GEMM against the
/// path weights. Two kernel launches per path; intermediates
/// materialized. Efficient at large channel counts, launch-bound at
/// small ones — the trend of Table 2.
///
/// `x` is `[B, dim, U]`, `y` is `[B, dim]`, `w` is `[B, paths, U, W]`;
/// returns `Z [B, dim, W]`.
///
/// # Errors
///
/// Simulator errors are propagated.
pub fn e3nn_tp(
    cg: &CgTensor,
    x: &Tensor,
    y: &Tensor,
    w: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let b_sz = x.shape()[0];
    let dim = x.shape()[1];
    let u = x.shape()[2];
    let wc = w.shape()[3];
    let n_paths = cg.paths.len();
    let mut z = Tensor::zeros_with(vec![b_sz, dim, wc], x.dtype());
    let mut profile = Profile::new();

    for (pidx, path) in cg.paths.iter().enumerate() {
        let (d1, d2, d3) = (2 * path.l1 + 1, 2 * path.l2 + 1, 2 * path.l3 + 1);
        let (o1, o2, o3) = (
            irrep_offset(path.l1),
            irrep_offset(path.l2),
            irrep_offset(path.l3),
        );
        // Dense CG block [d3, d1, d2] including zeros.
        let cgd = Tensor::from_fn(vec![d3, d1, d2], |i| {
            clebsch_gordan(
                path.l1 as i64,
                i[1] as i64 - path.l1 as i64,
                path.l2 as i64,
                i[2] as i64 - path.l2 as i64,
                path.l3 as i64,
                i[0] as i64 - path.l3 as i64,
            ) as f32
        });

        // (1) T[b, m3, u] = sum_{m1,m2} CGd[m3,m1,m2] X[b,o1+m1,u] Y[b,o2+m2].
        let mut t = Tensor::zeros_with(vec![b_sz, d3, u], x.dtype());
        {
            let mut kb = KernelBuilder::new("e3nn_cg_contract");
            let cg_p = kb.input("CGD");
            let x_p = kb.input("X");
            let y_p = kb.input("Y");
            let t_p = kb.output("T");
            let b_id = kb.program_id(1);
            let m3 = kb.program_id(0);
            let ul = kb.arange(u);
            let acc = kb.full(vec![u], 0.0);
            let m1 = kb.begin_loop(0, d1 as i64, 1);
            {
                let m2 = kb.begin_loop(0, d2 as i64, 1);
                {
                    let d12 = kb.constant((d1 * d2) as f64);
                    let d2c = kb.constant(d2 as f64);
                    let cg_row = kb.binary(BinOp::Mul, m3, d12);
                    let cg_m1 = kb.binary(BinOp::Mul, m1, d2c);
                    let cg_rm = kb.binary(BinOp::Add, cg_row, cg_m1);
                    let cg_off = kb.binary(BinOp::Add, cg_rm, m2);
                    let cgv = kb.load(cg_p, cg_off, None, 0.0);
                    let dimu = kb.constant((dim * u) as f64);
                    let u_c = kb.constant(u as f64);
                    let o1m = kb.constant(o1 as f64);
                    let j = kb.binary(BinOp::Add, o1m, m1);
                    let x_b = kb.binary(BinOp::Mul, b_id, dimu);
                    let x_j = kb.binary(BinOp::Mul, j, u_c);
                    let x_bj = kb.binary(BinOp::Add, x_b, x_j);
                    let x_off = kb.binary(BinOp::Add, x_bj, ul);
                    let xv = kb.load(x_p, x_off, None, 0.0);
                    let dim_c = kb.constant(dim as f64);
                    let o2m = kb.constant(o2 as f64);
                    let k = kb.binary(BinOp::Add, o2m, m2);
                    let y_b = kb.binary(BinOp::Mul, b_id, dim_c);
                    let y_off = kb.binary(BinOp::Add, y_b, k);
                    let yv = kb.load(y_p, y_off, None, 0.0);
                    let cgx = kb.binary(BinOp::Mul, cgv, xv);
                    let cgxy = kb.binary(BinOp::Mul, cgx, yv);
                    kb.binary_into(acc, BinOp::Add, acc, cgxy);
                }
                kb.end_loop();
            }
            kb.end_loop();
            let d3u = kb.constant((d3 * u) as f64);
            let u_c2 = kb.constant(u as f64);
            let t_b = kb.binary(BinOp::Mul, b_id, d3u);
            let t_m = kb.binary(BinOp::Mul, m3, u_c2);
            let t_bm = kb.binary(BinOp::Add, t_b, t_m);
            let t_off = kb.binary(BinOp::Add, t_bm, ul);
            kb.store(t_p, t_off, acc, None);
            let kernel = kb.build();
            let mut cg_t = cgd.clone();
            let mut x_t = x.clone();
            let mut y_t = y.clone();
            let report = launch(
                &kernel,
                &[d3, b_sz],
                &mut [&mut cg_t, &mut x_t, &mut y_t, &mut t],
                device,
                mode,
            )?;
            profile.push(report);
        }

        // (2) Z[b, o3+m3, w] += T[b, m3, :] @ W[b, pidx, :, :]  (batched
        // GEMM via cuBLAS in real e3nn).
        {
            let yb = d3.next_power_of_two().max(4);
            let rb = u.min(16);
            let mut kb = KernelBuilder::new("e3nn_path_gemm");
            let t_p = kb.input("T");
            let w_p = kb.input("W");
            let z_p = kb.output("Z");
            let b_id = kb.program_id(1);
            let pid0 = kb.program_id(0); // w tile
            let xb = wc.min(32);
            let xb_c = kb.constant(xb as f64);
            let xbase = kb.binary(BinOp::Mul, pid0, xb_c);
            let xl = kb.arange(xb);
            let xr = kb.binary(BinOp::Add, xbase, xl);
            let x2 = kb.expand_dims(xr, 0);
            let yl = kb.arange(yb);
            let d3_c = kb.constant(d3 as f64);
            let ymask = kb.binary(BinOp::Lt, yl, d3_c);
            let ym2 = kb.expand_dims(ymask, 1);
            let yc = kb.expand_dims(yl, 1);
            let acc = kb.full(vec![yb, xb], 0.0);
            let i = kb.begin_loop(0, (u as i64) / rb as i64, 1);
            {
                let rb_c = kb.constant(rb as f64);
                let rbase = kb.binary(BinOp::Mul, i, rb_c);
                let rl = kb.arange(rb);
                let r = kb.binary(BinOp::Add, rbase, rl);
                let r_row = kb.expand_dims(r, 0);
                let r_col = kb.expand_dims(r, 1);
                let d3u = kb.constant((d3 * u) as f64);
                let u_c = kb.constant(u as f64);
                let t_b = kb.binary(BinOp::Mul, b_id, d3u);
                let t_m = kb.binary(BinOp::Mul, yc, u_c);
                let t_bm = kb.binary(BinOp::Add, t_b, t_m);
                let t_off = kb.binary(BinOp::Add, t_bm, r_row);
                let t_blk = kb.load(t_p, t_off, Some(ym2), 0.0);
                let wc_c = kb.constant(wc as f64);
                let puw = kb.constant((n_paths * u * wc) as f64);
                let uw = kb.constant((u * wc) as f64);
                let w_b = kb.binary(BinOp::Mul, b_id, puw);
                let p_c = kb.constant(pidx as f64);
                let w_p_off = kb.binary(BinOp::Mul, p_c, uw);
                let w_bp = kb.binary(BinOp::Add, w_b, w_p_off);
                let w_r = kb.binary(BinOp::Mul, r_col, wc_c);
                let w_rx = kb.binary(BinOp::Add, w_r, x2);
                let w_off = kb.binary(BinOp::Add, w_bp, w_rx);
                let w_blk = kb.load(w_p, w_off, None, 0.0);
                kb.dot_acc(acc, t_blk, w_blk);
            }
            kb.end_loop();
            let dimw = kb.constant((dim * wc) as f64);
            let wc_c2 = kb.constant(wc as f64);
            let o3_c = kb.constant(o3 as f64);
            let z_b = kb.binary(BinOp::Mul, b_id, dimw);
            let i3 = kb.binary(BinOp::Add, o3_c, yc);
            let z_i = kb.binary(BinOp::Mul, i3, wc_c2);
            let z_bi = kb.binary(BinOp::Add, z_b, z_i);
            let z_off = kb.binary(BinOp::Add, z_bi, x2);
            kb.atomic_add(z_p, z_off, acc, Some(ym2));
            let kernel = kb.build();
            let mut w_t = w.clone();
            let report = launch(
                &kernel,
                &[wc.div_ceil(xb), b_sz],
                &mut [&mut t, &mut w_t, &mut z],
                device,
                mode,
            )?;
            profile.push(report);
        }
    }
    Ok((z, profile))
}

/// cuequivariance-style tensor product: one *specialized* fused kernel
/// per path with the CG coefficients baked in as constants (the
/// library's per-path code generation). Far fewer launches than e3nn and
/// no intermediates, but the contraction runs on the scalar pipe — so it
/// shines at small sizes and loses ground at large `ℓmax`/channels,
/// matching the Table 2 trend.
///
/// # Errors
///
/// Simulator errors are propagated.
pub fn cuequivariance_tp(
    cg: &CgTensor,
    x: &Tensor,
    y: &Tensor,
    w: &Tensor,
    device: &DeviceModel,
    mode: Mode,
) -> Result<(Tensor, Profile)> {
    let b_sz = x.shape()[0];
    let dim = x.shape()[1];
    let u = x.shape()[2];
    let wc = w.shape()[3];
    let n_paths = cg.paths.len();
    let mut z = Tensor::zeros_with(vec![b_sz, dim, wc], x.dtype());
    let mut profile = Profile::new();

    for (pidx, path) in cg.paths.iter().enumerate() {
        let (d3, l1, l2, l3) = (
            2 * path.l3 + 1,
            path.l1 as i64,
            path.l2 as i64,
            path.l3 as i64,
        );
        let (o1, o2, o3) = (
            irrep_offset(path.l1),
            irrep_offset(path.l2),
            irrep_offset(path.l3),
        );
        let mut kb = KernelBuilder::new("cueq_path_kernel");
        let x_p = kb.input("X");
        let y_p = kb.input("Y");
        let w_p = kb.input("W");
        let z_p = kb.output("Z");
        let b_id = kb.program_id(0);
        let ul = kb.arange(u);
        let u_col = kb.expand_dims(ul, 1); // (U,1)
        let wl = kb.arange(wc);
        let w_row = kb.expand_dims(wl, 0); // (1,W)

        for m3 in -l3..=l3 {
            // t_u = sum over nonzero CG of cg * X[b, o1+m1, :] * Y[b, o2+m2].
            let t = kb.full(vec![u], 0.0);
            let mut any = false;
            for m1 in -l1..=l1 {
                let m2 = m3 - m1;
                if m2.abs() > l2 {
                    continue;
                }
                let c = clebsch_gordan(l1, m1, l2, m2, l3, m3);
                if c.abs() < 1e-12 {
                    continue;
                }
                any = true;
                let dimu = kb.constant((dim * u) as f64);
                let u_c = kb.constant(u as f64);
                let j_c = kb.constant((o1 as i64 + m1 + l1) as f64);
                let x_b = kb.binary(BinOp::Mul, b_id, dimu);
                let x_j = kb.binary(BinOp::Mul, j_c, u_c);
                let x_bj = kb.binary(BinOp::Add, x_b, x_j);
                let x_off = kb.binary(BinOp::Add, x_bj, ul);
                let xv = kb.load(x_p, x_off, None, 0.0);
                let dim_c = kb.constant(dim as f64);
                let k_c = kb.constant((o2 as i64 + m2 + l2) as f64);
                let y_b = kb.binary(BinOp::Mul, b_id, dim_c);
                let y_off = kb.binary(BinOp::Add, y_b, k_c);
                let yv = kb.load(y_p, y_off, None, 0.0);
                let cg_c = kb.constant(c);
                let cx = kb.binary(BinOp::Mul, cg_c, xv);
                let cxy = kb.binary(BinOp::Mul, cx, yv);
                kb.binary_into(t, BinOp::Add, t, cxy);
            }
            if !any {
                continue;
            }
            // acc_w = sum_u t[u] * W[b, pidx, u, w]  (scalar pipe).
            let puw = kb.constant((n_paths * u * wc) as f64);
            let uw = kb.constant((u * wc) as f64);
            let wc_c = kb.constant(wc as f64);
            let w_b = kb.binary(BinOp::Mul, b_id, puw);
            let p_c = kb.constant(pidx as f64);
            let w_po = kb.binary(BinOp::Mul, p_c, uw);
            let w_bp = kb.binary(BinOp::Add, w_b, w_po);
            let w_u = kb.binary(BinOp::Mul, u_col, wc_c);
            let w_ux = kb.binary(BinOp::Add, w_u, w_row);
            let w_off = kb.binary(BinOp::Add, w_bp, w_ux); // (U,W)
            let w_blk = kb.load(w_p, w_off, None, 0.0);
            let t_col = kb.expand_dims(t, 1); // (U,1)
            let prod = kb.binary(BinOp::Mul, t_col, w_blk); // (U,W)
            let accw = kb.sum(prod, 0); // (W,)
            let dimw = kb.constant((dim * wc) as f64);
            let i3_c = kb.constant(((o3 as i64 + m3 + l3) * wc as i64) as f64);
            let z_b = kb.binary(BinOp::Mul, b_id, dimw);
            let z_bi = kb.binary(BinOp::Add, z_b, i3_c);
            let z_off = kb.binary(BinOp::Add, z_bi, wl);
            kb.atomic_add(z_p, z_off, accw, None);
        }
        let _ = d3;
        let kernel = kb.build();
        let mut x_t = x.clone();
        let mut y_t = y.clone();
        let mut w_t = w.clone();
        let report = launch(
            &kernel,
            &[b_sz],
            &mut [&mut x_t, &mut y_t, &mut w_t, &mut z],
            device,
            mode,
        )?;
        profile.push(report);
    }
    Ok((z, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::rand_uniform;
    use insum_workloads::equivariant::cg_tensor;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Direct reference: Z[b,i,w] = sum CG entries.
    fn reference_tp(cg: &CgTensor, x: &Tensor, y: &Tensor, w: &Tensor) -> Tensor {
        let b_sz = x.shape()[0];
        let u = x.shape()[2];
        let wc = w.shape()[3];
        let mut z = Tensor::zeros(vec![b_sz, cg.dim, wc]);
        for pidx in 0..cg.paths.len() {
            for (i, j, k, v) in cg.path_entries(pidx) {
                for b in 0..b_sz {
                    for wi in 0..wc {
                        let mut acc = z.at(&[b, i, wi]);
                        for ui in 0..u {
                            acc += v * x.at(&[b, j, ui]) * y.at(&[b, k]) * w.at(&[b, pidx, ui, wi]);
                        }
                        z.set(&[b, i, wi], acc);
                    }
                }
            }
        }
        z
    }

    fn tp_setup(lmax: usize) -> (CgTensor, Tensor, Tensor, Tensor, Tensor) {
        let cg = cg_tensor(lmax, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        let (b_sz, u, wc) = (2, 16, 16);
        let x = rand_uniform(vec![b_sz, cg.dim, u], -1.0, 1.0, &mut rng);
        let y = rand_uniform(vec![b_sz, cg.dim], -1.0, 1.0, &mut rng);
        let w = rand_uniform(vec![b_sz, cg.paths.len(), u, wc], -0.5, 0.5, &mut rng);
        let want = reference_tp(&cg, &x, &y, &w);
        (cg, x, y, w, want)
    }

    #[test]
    fn e3nn_matches_reference() {
        let (cg, x, y, w, want) = tp_setup(1);
        let (got, profile) =
            e3nn_tp(&cg, &x, &y, &w, &DeviceModel::rtx3090(), Mode::Execute).unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "diff {:?}",
            got.max_abs_diff(&want)
        );
        assert_eq!(profile.launches(), 2 * cg.paths.len());
    }

    #[test]
    fn cuequivariance_matches_reference() {
        let (cg, x, y, w, want) = tp_setup(1);
        let (got, profile) =
            cuequivariance_tp(&cg, &x, &y, &w, &DeviceModel::rtx3090(), Mode::Execute).unwrap();
        assert!(
            got.allclose(&want, 1e-3, 1e-3),
            "diff {:?}",
            got.max_abs_diff(&want)
        );
        assert_eq!(profile.launches(), cg.paths.len());
        let s = profile.total_stats();
        assert_eq!(s.flops_tc_f16 + s.flops_tc_f32, 0, "cueq path is scalar");
    }

    #[test]
    fn lmax2_agreement() {
        let (cg, x, y, w, want) = tp_setup(2);
        let device = DeviceModel::rtx3090();
        let (z1, _) = e3nn_tp(&cg, &x, &y, &w, &device, Mode::Execute).unwrap();
        let (z2, _) = cuequivariance_tp(&cg, &x, &y, &w, &device, Mode::Execute).unwrap();
        assert!(z1.allclose(&want, 1e-3, 1e-3));
        assert!(z2.allclose(&want, 1e-3, 1e-3));
    }
}
