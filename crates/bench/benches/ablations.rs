//! Ablation benches for the design choices DESIGN.md calls out:
//! fusion, broadcasting strategy, Tensor Cores, format family, and the
//! group-size heuristic. Each bench measures the host cost of the
//! analytic simulation and prints the *simulated* device time once, which
//! is the quantity the ablations compare.

use criterion::{criterion_group, criterion_main, Criterion};
use insum::apps;
use insum::{InsumOptions, Tensor};
use insum_formats::heuristic::{brute_force_group_size, heuristic_group_size};
use insum_formats::{BlockCoo, BlockGroupCoo, Coo, Ell, GroupCoo};
use insum_tensor::DType;
use insum_workloads::blocksparse::block_sparse_dense;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn setup() -> (Tensor, Tensor) {
    let mut rng = SmallRng::seed_from_u64(42);
    let a = block_sparse_dense(256, 256, 32, 32, 0.8, &mut rng).cast(DType::F16);
    let b = insum_tensor::rand_uniform(vec![256, 64], -1.0, 1.0, &mut rng).cast(DType::F16);
    (a, b)
}

fn simulated(app: &apps::BoundApp, opts: &InsumOptions) -> f64 {
    app.compile(opts)
        .expect("compilation succeeds")
        .time(&app.tensors)
        .expect("simulation succeeds")
        .total_time()
}

/// Ablation 1: fusion on vs off (Fig. 13 rows 4–5 mechanism).
fn ablation_fusion(c: &mut Criterion) {
    let (a, b) = setup();
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 4).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let fused = simulated(&app, &InsumOptions::default());
    let unfused = simulated(&app, &InsumOptions::unfused());
    eprintln!(
        "[ablation_fusion] simulated: fused={:.2}us unfused={:.2}us ({:.2}x)",
        fused * 1e6,
        unfused * 1e6,
        unfused / fused
    );
    assert!(fused < unfused, "fusion must win");
    c.bench_function("ablation/fusion_on", |bch| {
        bch.iter(|| simulated(black_box(&app), &InsumOptions::default()))
    });
    c.bench_function("ablation/fusion_off", |bch| {
        bch.iter(|| simulated(black_box(&app), &InsumOptions::unfused()))
    });
}

/// Ablation 2: lazy vs eager broadcasting (§5.2.3).
fn ablation_broadcast(c: &mut Criterion) {
    let (a, b) = setup();
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 4).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let lazy = simulated(&app, &InsumOptions::default());
    let eager = simulated(
        &app,
        &InsumOptions {
            lazy_broadcast: false,
            ..Default::default()
        },
    );
    eprintln!(
        "[ablation_broadcast] simulated: lazy={:.2}us eager={:.2}us ({:.2}x)",
        lazy * 1e6,
        eager * 1e6,
        eager / lazy
    );
    assert!(lazy < eager, "lazy broadcasting must win");
    c.bench_function("ablation/broadcast_lazy", |bch| {
        bch.iter(|| simulated(black_box(&app), &InsumOptions::default()))
    });
}

/// Ablation 3: Tensor Cores on vs off.
fn ablation_tensor_cores(c: &mut Criterion) {
    let (a, b) = setup();
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 4).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let tc = simulated(&app, &InsumOptions::default());
    let no_tc = simulated(
        &app,
        &InsumOptions {
            tensor_cores: false,
            ..Default::default()
        },
    );
    eprintln!(
        "[ablation_tensor_cores] simulated: tc={:.2}us scalar={:.2}us ({:.2}x)",
        tc * 1e6,
        no_tc * 1e6,
        no_tc / tc
    );
    assert!(tc < no_tc, "tensor cores must win");
    c.bench_function("ablation/tensor_cores_on", |bch| {
        bch.iter(|| simulated(black_box(&app), &InsumOptions::default()))
    });
}

/// Ablation 4: format family at fixed compiler settings (COO vs GroupCOO
/// vs ELL-like padding behaviour).
fn ablation_formats(c: &mut Criterion) {
    let (a, b) = setup();
    let coo = Coo::from_dense(&a).expect("matrix");
    let gc = GroupCoo::from_coo(&coo, 16).expect("valid g");
    let ell = Ell::from_coo(&coo).expect("no duplicates");
    let opts = InsumOptions::default();
    let t_coo = simulated(&apps::spmm_coo(&coo, &b), &opts);
    let t_gc = simulated(&apps::spmm_group(&gc, &b), &opts);
    // ELL is GroupCOO with g = max occupancy and per-row groups.
    let gc_ell = GroupCoo::from_coo(&coo, ell.width.max(1)).expect("valid g");
    let t_ell = simulated(&apps::spmm_group(&gc_ell, &b), &opts);
    eprintln!(
        "[ablation_formats] simulated: coo={:.2}us group16={:.2}us ell-like={:.2}us",
        t_coo * 1e6,
        t_gc * 1e6,
        t_ell * 1e6
    );
    c.bench_function("ablation/format_group_coo", |bch| {
        bch.iter(|| simulated(black_box(&apps::spmm_group(&gc, &b)), &opts))
    });
}

/// Ablation 5: heuristic group size vs brute-force argmin of F(g) (§4.2).
fn ablation_group_size(c: &mut Criterion) {
    let (a, b) = setup();
    let bcoo = BlockCoo::from_dense(&a, 32, 32).expect("blocked");
    let occ = bcoo.block_occupancy();
    let g_h = heuristic_group_size(&occ);
    let g_b = brute_force_group_size(&occ);
    let opts = InsumOptions::default();
    let t_h = simulated(
        &apps::spmm_block_group(
            &BlockGroupCoo::from_block_coo(&bcoo, g_h).expect("valid"),
            &b,
        ),
        &opts,
    );
    let t_b = simulated(
        &apps::spmm_block_group(
            &BlockGroupCoo::from_block_coo(&bcoo, g_b).expect("valid"),
            &b,
        ),
        &opts,
    );
    eprintln!(
        "[ablation_group_size] heuristic g={g_h} -> {:.2}us; brute-force g={g_b} -> {:.2}us (ratio {:.3})",
        t_h * 1e6, t_b * 1e6, t_h / t_b
    );
    assert!(t_h <= t_b * 1.5, "heuristic must stay near-optimal");
    c.bench_function("ablation/group_size_heuristic", |bch| {
        bch.iter(|| heuristic_group_size(black_box(&occ)))
    });
    c.bench_function("ablation/group_size_bruteforce", |bch| {
        bch.iter(|| brute_force_group_size(black_box(&occ)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = ablation_fusion, ablation_broadcast, ablation_tensor_cores, ablation_formats, ablation_group_size
}
criterion_main!(benches);
