//! Criterion benchmarks for the simulator execution core added by the
//! hot-path optimization work: interpreter throughput on representative
//! kernels, in both modes, plus the seed interpreter as the baseline.
//! `--bin simbench` is the heavyweight, JSON-emitting version of this
//! measurement; these benches are the quick regression check.

use criterion::{criterion_group, criterion_main, Criterion};
use insum::apps;
use insum::Tensor;
use insum_bench::structured_spmm_setup;
use insum_gpu::reference::launch_reference;
use insum_gpu::{launch, DeviceModel, Mode};
use insum_graph::TensorMeta;
use insum_inductor::{build_plan, compile_fused, CodegenOptions, FusedOp};
use insum_tensor::DType;
use std::collections::BTreeMap;
use std::hint::black_box;

fn compile(app: &apps::BoundApp) -> (FusedOp, Vec<Tensor>) {
    let stmt = insum_lang::parse(app.expr).expect("expression parses");
    let metas: BTreeMap<String, TensorMeta> = app
        .tensors
        .iter()
        .map(|(n, t)| (n.clone(), TensorMeta::new(t.shape().to_vec(), t.dtype())))
        .collect();
    let plan = build_plan(&stmt, &metas).expect("plan builds");
    let op = compile_fused(&plan, &CodegenOptions::default()).expect("kernel compiles");
    let args = op
        .plan
        .param_order
        .iter()
        .map(|n| app.tensors.get(n).expect("parameter bound").clone())
        .collect();
    (op, args)
}

/// A small block-group SpMM (256x256) so per-sample cost stays in the
/// milliseconds for tight criterion loops.
fn spmm_case() -> (FusedOp, Vec<Tensor>) {
    let (_, bgc, b) = structured_spmm_setup(256, 64, 0.6, DType::F16, 5);
    let app = apps::spmm_block_group(&bgc, &b);
    compile(&app)
}

fn bench_execute(c: &mut Criterion) {
    let device = DeviceModel::rtx3090();
    let (op, args) = spmm_case();
    c.bench_function("sim/execute_spmm_256", |bch| {
        bch.iter(|| {
            let mut owned = args.clone();
            let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
            launch(
                black_box(&op.kernel),
                &op.grid,
                &mut refs,
                &device,
                Mode::Execute,
            )
            .expect("launch succeeds")
        })
    });
}

fn bench_analytic(c: &mut Criterion) {
    let device = DeviceModel::rtx3090();
    let (op, args) = spmm_case();
    c.bench_function("sim/analytic_spmm_256", |bch| {
        bch.iter(|| {
            let mut owned = args.clone();
            let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
            launch(
                black_box(&op.kernel),
                &op.grid,
                &mut refs,
                &device,
                Mode::Analytic,
            )
            .expect("launch succeeds")
        })
    });
}

fn bench_seed_baseline(c: &mut Criterion) {
    let device = DeviceModel::rtx3090();
    let (op, args) = spmm_case();
    c.bench_function("sim/seed_execute_spmm_256", |bch| {
        bch.iter(|| {
            let mut owned = args.clone();
            let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
            launch_reference(
                black_box(&op.kernel),
                &op.grid,
                &mut refs,
                &device,
                Mode::Execute,
            )
            .expect("launch succeeds")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_execute, bench_analytic, bench_seed_baseline
}
criterion_main!(benches);
