//! Shared helpers for the benchmark harness that regenerates every table
//! and figure of the paper (see EXPERIMENTS.md for the index and the
//! scaled problem sizes).

use insum::apps::BoundApp;
use insum::{InsumOptions, Tensor};
use insum_formats::{BlockCoo, BlockGroupCoo};
use insum_tensor::DType;
use insum_workloads::blocksparse::block_sparse_dense;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Geometric mean of positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Compile and time a bound application, returning simulated seconds.
///
/// # Panics
///
/// Panics on compilation or simulation errors (benchmark harness policy:
/// fail loudly).
pub fn time_app(app: &BoundApp, opts: &InsumOptions) -> f64 {
    let compiled = app.compile(opts).expect("compilation succeeds");
    compiled
        .time(&app.tensors)
        .expect("simulation succeeds")
        .total_time()
}

/// Build the structured-SpMM workload of Figs. 10/13: a block-sparse
/// matrix in BlockGroupCOO (heuristic group size) plus a dense `B`.
pub fn structured_spmm_setup(
    n: usize,
    cols_b: usize,
    sparsity: f64,
    dtype: DType,
    seed: u64,
) -> (Tensor, BlockGroupCoo, Tensor) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dense = block_sparse_dense(n, n, 32, 32, sparsity, &mut rng).cast(dtype);
    let bcoo = BlockCoo::from_dense(&dense, 32, 32).expect("extents divide block size");
    let g = insum_formats::heuristic::heuristic_group_size(&bcoo.block_occupancy());
    let bgc = BlockGroupCoo::from_block_coo(&bcoo, g).expect("valid group size");
    let b = insum_tensor::rand_uniform(vec![n, cols_b], -1.0, 1.0, &mut rng).cast(dtype);
    (dense, bgc, b)
}

/// Format seconds as microseconds with 2 decimals.
pub fn us(t: f64) -> String {
    format!("{:.2}", t * 1e6)
}

/// Format a speedup ratio.
pub fn x(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn structured_setup_consistent() {
        let (dense, bgc, b) = structured_spmm_setup(128, 64, 0.8, DType::F16, 1);
        assert_eq!(dense.shape(), &[128, 128]);
        assert_eq!(b.shape(), &[128, 64]);
        assert_eq!(bgc.to_dense(), dense);
    }

    #[test]
    fn time_app_returns_positive_time() {
        let (_, bgc, b) = structured_spmm_setup(128, 64, 0.8, DType::F16, 2);
        let app = insum::apps::spmm_block_group(&bgc, &b);
        let t = time_app(&app, &InsumOptions::default());
        assert!(t > 0.0);
    }
}
