//! Simulator-throughput benchmark: the host-side performance of the GPU
//! interpreter itself (not the simulated device times).
//!
//! Each workload is lowered **once** into an `insum_gpu::Program` through
//! the cross-launch `ProgramCache` (the compile/launch split this
//! benchmark exists to validate), then the launch path is wall-clocked
//! against the seed implementation
//! (`insum_gpu::reference::launch_reference`) in both Execute and
//! Analytic modes and at one and many host threads, verifying that
//! stats, simulated timing, and (in Execute mode) output tensors are
//! bit-identical everywhere. An autotuning section sweeps the dense
//! matmul and fig7 SpMM twice — cold and warm — to demonstrate
//! cross-trial program reuse. The headline row is the fig7-scale
//! block-group SpMM in Execute mode.
//!
//! Results print as tables and are written to `BENCH_sim.json` so the
//! perf trajectory is tracked across PRs (see EXPERIMENTS.md).

use insum::apps;
use insum::{chain_reference, insum_with, plan_with_strategy, InsumOptions, OrderStrategy, Tensor};
use insum_bench::{print_table, structured_spmm_setup, x};
use insum_gpu::reference::launch_reference;
use insum_gpu::{DeviceModel, KernelReport, LaunchOptions, Mode, Program};
use insum_graph::TensorMeta;
use insum_inductor::{
    autotune_with, build_plan, compile_fused, CodegenOptions, FusedOp, FusionPlan, ProgramCache,
};
use insum_tensor::DType;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// A compiled workload plus its bound arguments in parameter order.
struct Case {
    name: &'static str,
    op: FusedOp,
    plan_for_tuning: Option<FusionPlan>,
    tensors: BTreeMap<String, Tensor>,
}

fn compile(app_expr: &str, tensors: &BTreeMap<String, Tensor>) -> (FusedOp, FusionPlan) {
    let stmt = insum_lang::parse(app_expr).expect("expression parses");
    let metas: BTreeMap<String, TensorMeta> = tensors
        .iter()
        .map(|(n, t)| (n.clone(), TensorMeta::new(t.shape().to_vec(), t.dtype())))
        .collect();
    let plan = build_plan(&stmt, &metas).expect("plan builds");
    let op = compile_fused(&plan, &CodegenOptions::default()).expect("kernel compiles");
    (op, plan)
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    // Fig. 7 scale: 1024x1024 block-sparse (32x32 blocks, 50% dense), B
    // with 256 columns — the acceptance benchmark for this harness.
    let (_, bgc, b) = structured_spmm_setup(1024, 256, 0.5, DType::F16, 77);
    let app = apps::spmm_block_group(&bgc, &b);
    let (op, plan) = compile(app.expr, &app.tensors);
    out.push(Case {
        name: "spmm_block_group_fig7",
        op,
        plan_for_tuning: Some(plan),
        tensors: app.tensors,
    });

    // Scatter-heavy COO SpMM (no Tensor Cores, atomic-dominated).
    let mut rng = SmallRng::seed_from_u64(7);
    let dense = insum_workloads::blocksparse::block_sparse_dense(512, 512, 16, 16, 0.7, &mut rng);
    let coo = insum_formats::Coo::from_dense(&dense).expect("matrix");
    let bmat = insum_tensor::rand_uniform(vec![512, 64], -1.0, 1.0, &mut rng);
    let app = apps::spmm_coo(&coo, &bmat);
    let (op, _) = compile(app.expr, &app.tensors);
    out.push(Case {
        name: "spmm_coo_scatter",
        op,
        plan_for_tuning: None,
        tensors: app.tensors,
    });

    // Point-cloud sparse convolution (gather + dot + scatter per offset).
    let mut rng = SmallRng::seed_from_u64(11);
    let pts = insum_workloads::pointcloud::generate_points(
        &insum_workloads::pointcloud::rooms()[0],
        0.10,
        &mut rng,
    );
    let scene = insum_workloads::pointcloud::voxelize(&pts, 0.05);
    let km = insum_workloads::pointcloud::kernel_map(&scene, 3);
    let input = insum_tensor::rand_normal(vec![scene.len(), 32], &mut rng);
    let weight = insum_tensor::rand_normal(vec![27, 32, 32], &mut rng);
    let app = apps::sparse_conv(&km, &input, &weight);
    let (op, _) = compile(app.expr, &app.tensors);
    out.push(Case {
        name: "pointcloud_conv",
        op,
        plan_for_tuning: None,
        tensors: app.tensors,
    });

    // Equivariant tensor product (the paper's fourth case study).
    let mut rng = SmallRng::seed_from_u64(13);
    let cg = insum_workloads::equivariant::cg_tensor(2, 8);
    let (batch, u, w) = (128, 16, 16);
    let xt = insum_tensor::rand_uniform(vec![batch, cg.dim, u], -1.0, 1.0, &mut rng);
    let yt = insum_tensor::rand_uniform(vec![batch, cg.dim], -1.0, 1.0, &mut rng);
    let wt = insum_tensor::rand_uniform(vec![batch, cg.paths.len(), u, w], -0.5, 0.5, &mut rng);
    let app = apps::equivariant_tp(&cg, &xt, &yt, &wt);
    let (op, _) = compile(app.expr, &app.tensors);
    out.push(Case {
        name: "equivariant_tp",
        op,
        plan_for_tuning: None,
        tensors: app.tensors,
    });

    // Dense matmul: the fully affine workload where analytic launches
    // collapse every row of instances into one costed class (and the
    // autotuner's inner loop goes O(classes)).
    let mut rng = SmallRng::seed_from_u64(17);
    let (m, k, n) = (512, 256, 512);
    let a = insum_tensor::rand_uniform(vec![m, k], -1.0, 1.0, &mut rng);
    let bmat = insum_tensor::rand_uniform(vec![k, n], -1.0, 1.0, &mut rng);
    let c = Tensor::zeros(vec![m, n]);
    let tensors: BTreeMap<String, Tensor> = [
        ("C".to_string(), c),
        ("A".to_string(), a),
        ("B".to_string(), bmat),
    ]
    .into_iter()
    .collect();
    let (op, plan) = compile("C[y,x] = A[y,r] * B[r,x]", &tensors);
    out.push(Case {
        name: "dense_matmul_512",
        op,
        plan_for_tuning: Some(plan),
        tensors,
    });

    out
}

/// Clone the case's tensors into launch-order argument storage.
fn bind(case: &Case) -> Vec<Tensor> {
    case.op
        .plan
        .param_order
        .iter()
        .map(|n| case.tensors.get(n).expect("parameter bound").clone())
        .collect()
}

fn run_program(
    case: &Case,
    program: &Program,
    device: &DeviceModel,
    mode: Mode,
    threads: usize,
) -> (f64, KernelReport, Vec<Tensor>) {
    let mut owned = bind(case);
    let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
    let opts = LaunchOptions {
        threads: Some(threads),
        ..Default::default()
    };
    let start = Instant::now();
    let report = program
        .launch_with(&mut refs, device, mode, &opts)
        .expect("launch succeeds");
    (start.elapsed().as_secs_f64(), report, owned)
}

fn run_reference(
    case: &Case,
    device: &DeviceModel,
    mode: Mode,
) -> (f64, KernelReport, Vec<Tensor>) {
    let mut owned = bind(case);
    let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
    let start = Instant::now();
    let report = launch_reference(&case.op.kernel, &case.op.grid, &mut refs, device, mode)
        .expect("launch succeeds");
    (start.elapsed().as_secs_f64(), report, owned)
}

/// Best-of-N wall-clock (N adapted so slow cases stay bounded).
fn best_wall(mut run: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    for i in 0..7 {
        let t = run();
        best = best.min(t);
        spent += t;
        if i >= 1 && spent > 10.0 {
            break;
        }
    }
    best
}

struct Row {
    name: String,
    mode: &'static str,
    host_threads: usize,
    instances: u64,
    wall_new: f64,
    wall_ref: f64,
    lane_ops: u64,
    bit_identical: bool,
    analytic_classes: bool,
}

struct TuneRow {
    name: String,
    configs_tried: usize,
    cold_wall: f64,
    cold_misses: u64,
    warm_wall: f64,
    warm_hits: u64,
    warm_misses: u64,
}

/// One multi-operand contraction chain: naive left-to-right vs the
/// planner's searched order, executed end to end.
struct ChainCase {
    name: &'static str,
    expr: &'static str,
    tensors: BTreeMap<String, Tensor>,
}

struct ChainRow {
    name: String,
    operands: usize,
    steps: usize,
    strategy: String,
    flops_naive: u128,
    flops_planned: u128,
    ws_naive_bytes: usize,
    ws_planned_bytes: usize,
    wall_naive: f64,
    wall_planned: f64,
    bit_identical: bool,
}

/// One canonical einsum the pattern classifier routes to a microkernel
/// or stride view, benchmarked against the general lowering it would
/// otherwise take.
struct FastCase {
    name: &'static str,
    expr: &'static str,
    tensors: BTreeMap<String, Tensor>,
}

struct FastRow {
    name: String,
    pattern: String,
    wall_general: f64,
    wall_fast: f64,
    bit_identical: bool,
    deep_copies_fast: u64,
}

fn fast_cases() -> Vec<FastCase> {
    let mut rng = SmallRng::seed_from_u64(29);
    let mut u = |shape: Vec<usize>| insum_tensor::rand_uniform(shape, -1.0, 1.0, &mut rng);
    let a = u(vec![512, 512]);
    let b = u(vec![512, 512]);
    let bind = |pairs: Vec<(&str, Tensor)>| -> BTreeMap<String, Tensor> {
        pairs.into_iter().map(|(n, t)| (n.to_string(), t)).collect()
    };
    vec![
        FastCase {
            name: "transpose_512",
            expr: "T[j,i] = A[i,j]",
            tensors: bind(vec![("T", Tensor::zeros(vec![512, 512])), ("A", a.clone())]),
        },
        FastCase {
            name: "reduction_768x512",
            expr: "S[i] = A[i,j]",
            tensors: bind(vec![
                ("S", Tensor::zeros(vec![768])),
                ("A", u(vec![768, 512])),
            ]),
        },
        FastCase {
            name: "hadamard_512",
            expr: "H[i,j] = A[i,j] * B[i,j]",
            tensors: bind(vec![
                ("H", Tensor::zeros(vec![512, 512])),
                ("A", a.clone()),
                ("B", b.clone()),
            ]),
        },
        FastCase {
            name: "outer_512",
            expr: "O[i,j] = U[i] * V[j]",
            tensors: bind(vec![
                ("O", Tensor::zeros(vec![512, 512])),
                ("U", u(vec![512])),
                ("V", u(vec![512])),
            ]),
        },
        FastCase {
            name: "diagonal_512",
            expr: "D[i] = A[i,i]",
            tensors: bind(vec![("D", Tensor::zeros(vec![512])), ("A", a.clone())]),
        },
        FastCase {
            name: "matmul_256",
            expr: "C[y,x] = A[y,r] * B[r,x]",
            tensors: bind(vec![
                ("C", Tensor::zeros(vec![256, 224])),
                ("A", u(vec![256, 192])),
                ("B", u(vec![192, 224])),
            ]),
        },
        FastCase {
            name: "batched_matmul_8x64",
            expr: "C[b,y,x] = A[b,y,r] * B[b,r,x]",
            tensors: bind(vec![
                ("C", Tensor::zeros(vec![8, 64, 64])),
                ("A", u(vec![8, 64, 64])),
                ("B", u(vec![8, 64, 64])),
            ]),
        },
    ]
}

/// Integer-valued operand in {-2, …, 2}: on this domain every
/// contraction order is bit-exact (see the `insum_planner` crate docs),
/// so the naive/planned comparison can assert equality, not closeness.
fn int_tensor(shape: Vec<usize>, rng: &mut SmallRng) -> Tensor {
    insum_tensor::rand_uniform(shape, -2.49, 2.49, rng).map(f32::round)
}

fn chain_cases() -> Vec<ChainCase> {
    let mut rng = SmallRng::seed_from_u64(23);
    vec![
        // Three-operand skew: the middle extents are tiny, so contracting
        // right-to-left shrinks the problem immediately while left-to-right
        // materializes a 256x256 intermediate.
        ChainCase {
            name: "chain3_skew",
            expr: "O[i,l] = A[i,j] * B[j,k] * C[k,l]",
            tensors: [
                ("A".to_string(), int_tensor(vec![256, 4], &mut rng)),
                ("B".to_string(), int_tensor(vec![4, 256], &mut rng)),
                ("C".to_string(), int_tensor(vec![256, 4], &mut rng)),
            ]
            .into_iter()
            .collect(),
        },
        // Four-operand skew (the acceptance chain): only `k` is tiny, so the
        // optimal tree is (AB)(CD) meeting at the 4-wide waist — ~32x fewer
        // FLOPs than left-to-right, whose last merge is a full dense matmul.
        ChainCase {
            name: "chain4_skew",
            expr: "O[i,m] = A[i,j] * B[j,k] * C[k,l] * D[l,m]",
            tensors: [
                ("A".to_string(), int_tensor(vec![384, 384], &mut rng)),
                ("B".to_string(), int_tensor(vec![384, 4], &mut rng)),
                ("C".to_string(), int_tensor(vec![4, 384], &mut rng)),
                ("D".to_string(), int_tensor(vec![384, 384], &mut rng)),
            ]
            .into_iter()
            .collect(),
        },
        // Attention-shaped QK/AV chain (scores and values in one spec; the
        // softmax between them lives in `examples/attention.rs`).
        ChainCase {
            name: "attention_qkv",
            expr: "O[b,h,q,d] = Q[b,h,q,e] * K[b,h,k,e] * V[b,h,k,d]",
            tensors: [
                ("Q".to_string(), int_tensor(vec![2, 4, 64, 32], &mut rng)),
                ("K".to_string(), int_tensor(vec![2, 4, 64, 32], &mut rng)),
                ("V".to_string(), int_tensor(vec![2, 4, 64, 32], &mut rng)),
            ]
            .into_iter()
            .collect(),
        },
    ]
}

fn main() {
    let device = DeviceModel::rtx3090();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always include a multi-threaded row: even on a single-core host it
    // exercises (and the asserts below verify) the deterministic shard
    // merge at >1 worker.
    let multi = max_threads.max(4);
    let thread_configs: Vec<usize> = vec![1, multi];
    let cache = ProgramCache::global();
    let mut rows: Vec<Row> = Vec::new();
    let mut compile_notes: Vec<(String, f64, bool, f64)> = Vec::new();
    let all_cases = cases();

    for case in &all_cases {
        // Compile once per launch shape through the cross-launch cache;
        // a second identical lookup must hit (CI smoke for the
        // compile-once/launch-many contract).
        let lens: Vec<usize> = case
            .op
            .plan
            .param_order
            .iter()
            .map(|n| case.tensors[n].len())
            .collect();
        let dtypes: Vec<DType> = case
            .op
            .plan
            .param_order
            .iter()
            .map(|n| case.tensors[n].dtype())
            .collect();
        let before = cache.stats();
        let t0 = Instant::now();
        let program = cache
            .get_or_compile(&case.op.kernel, &case.op.grid, &lens, &dtypes)
            .expect("program compiles");
        let compile_seconds = t0.elapsed().as_secs_f64();
        let again = cache
            .get_or_compile(&case.op.kernel, &case.op.grid, &lens, &dtypes)
            .expect("program compiles");
        let after = cache.stats();
        assert!(
            after.hits == before.hits + 1 && std::sync::Arc::ptr_eq(&program, &again),
            "{}: second identical launch must hit the ProgramCache",
            case.name
        );
        // Bind cost: cloning the case's tensors into launch-order
        // argument storage. With Arc-backed copy-on-write tensors this
        // is O(params) pointer bumps, not a deep copy of every buffer —
        // the `bind_ns` field records the elimination.
        let bind_reps = 200u32;
        let t_bind = Instant::now();
        for _ in 0..bind_reps {
            std::hint::black_box(bind(case));
        }
        let bind_ns = t_bind.elapsed().as_nanos() as f64 / f64::from(bind_reps);
        compile_notes.push((
            case.name.to_string(),
            compile_seconds,
            program.analytic_dedup_available(),
            bind_ns,
        ));

        for mode in [Mode::Execute, Mode::Analytic] {
            // Correctness first: one verified run per mode against the
            // seed interpreter (sequential), plus every thread config.
            let (_, r_ref, out_ref) = run_reference(case, &device, mode);
            for &threads in &thread_configs {
                let (_, r_new, out_new) = run_program(case, &program, &device, mode, threads);
                let outputs_equal = out_new
                    .iter()
                    .zip(&out_ref)
                    .all(|(a, b)| a.data() == b.data());
                let bit_identical =
                    r_new.stats == r_ref.stats && r_new.time == r_ref.time && outputs_equal;
                assert!(
                    bit_identical,
                    "{}: optimized interpreter diverges from the seed in {mode:?} mode \
                     at {threads} threads",
                    case.name
                );

                let wall_new = best_wall(|| run_program(case, &program, &device, mode, threads).0);
                let wall_ref = best_wall(|| run_reference(case, &device, mode).0);
                // Lane-level work per launch: block-arithmetic lanes,
                // atomic lanes, and memory sector transactions at 8 f32
                // lanes each.
                let lane_ops = r_new.stats.flops_scalar
                    + r_new.stats.atomics
                    + 8 * (r_new.stats.l2_read_sectors + r_new.stats.l2_write_sectors);
                rows.push(Row {
                    name: case.name.to_string(),
                    mode: if mode == Mode::Execute {
                        "execute"
                    } else {
                        "analytic"
                    },
                    host_threads: threads,
                    instances: r_new.stats.instances,
                    wall_new,
                    wall_ref,
                    lane_ops,
                    bit_identical,
                    analytic_classes: mode == Mode::Analytic && program.analytic_dedup_available(),
                });
            }
        }
    }

    // Autotuning: sweep twice per tunable workload — the second sweep
    // must re-lower nothing (cross-trial ProgramCache reuse).
    let mut tune_rows: Vec<TuneRow> = Vec::new();
    for case in &all_cases {
        let Some(plan) = &case.plan_for_tuning else {
            continue;
        };
        let tune_cache = ProgramCache::new();
        let cold = autotune_with(
            plan,
            &CodegenOptions::default(),
            &case.tensors,
            &device,
            &tune_cache,
        )
        .expect("autotune succeeds");
        let warm = autotune_with(
            plan,
            &CodegenOptions::default(),
            &case.tensors,
            &device,
            &tune_cache,
        )
        .expect("autotune succeeds");
        assert_eq!(
            warm.cache_misses, 0,
            "{}: warm re-tune must reuse every trial's program",
            case.name
        );
        assert_eq!(cold.best_time, warm.best_time);
        tune_rows.push(TuneRow {
            name: case.name.to_string(),
            configs_tried: cold.configs_tried,
            cold_wall: cold.tuning_wall_seconds,
            cold_misses: cold.cache_misses,
            warm_wall: warm.tuning_wall_seconds,
            warm_hits: warm.cache_hits,
            warm_misses: warm.cache_misses,
        });
    }

    // Contraction chains: naive left-to-right vs the planner's searched
    // order, executed end to end through the same compile/launch path.
    let mut chain_rows: Vec<ChainRow> = Vec::new();
    for case in chain_cases() {
        let opts = InsumOptions::default();
        let naive = plan_with_strategy(case.expr, &case.tensors, &opts, OrderStrategy::LeftToRight)
            .expect("naive plan compiles");
        let planned = plan_with_strategy(case.expr, &case.tensors, &opts, OrderStrategy::Auto)
            .expect("planned chain compiles");
        let reference = chain_reference(case.expr, &case.tensors).expect("reference evaluates");
        let (out_naive, _) = naive.run(&case.tensors).expect("naive chain runs");
        let (out_planned, _) = planned.run(&case.tensors).expect("planned chain runs");
        let bit_identical =
            out_naive.data() == reference.data() && out_planned.data() == reference.data();
        assert!(
            bit_identical,
            "{}: planned and naive orders must match the reference bit-for-bit \
             on integer-valued data",
            case.name
        );
        // Compile-once smoke: re-planning the identical chain must find
        // every device step's program already resident in the
        // cross-launch ProgramCache (simbench runs serially, so exact
        // global-cache deltas are race-free here).
        let before = cache.stats();
        let replanned = plan_with_strategy(case.expr, &case.tensors, &opts, OrderStrategy::Auto)
            .expect("replan compiles");
        replanned.run(&case.tensors).expect("replanned chain runs");
        let after = cache.stats();
        assert_eq!(
            after.misses, before.misses,
            "{}: re-planning an identical chain must re-lower nothing",
            case.name
        );
        assert!(
            after.hits >= before.hits + replanned.program_step_count() as u64,
            "{}: every program-backed device step of the replanned chain must hit \
             the ProgramCache (fast-path steps lower no programs and are exempt)",
            case.name
        );
        let wall_naive = best_wall(|| {
            let t = Instant::now();
            naive.run(&case.tensors).expect("naive chain runs");
            t.elapsed().as_secs_f64()
        });
        let wall_planned = best_wall(|| {
            let t = Instant::now();
            planned.run(&case.tensors).expect("planned chain runs");
            t.elapsed().as_secs_f64()
        });
        chain_rows.push(ChainRow {
            name: case.name.to_string(),
            operands: planned.plan().spec.operands.len(),
            steps: planned.step_count(),
            strategy: format!("{:?}", planned.plan().strategy),
            flops_naive: naive.plan().total_flops,
            flops_planned: planned.plan().total_flops,
            ws_naive_bytes: naive.plan().workspace_bytes(),
            ws_planned_bytes: planned.plan().workspace_bytes(),
            wall_naive,
            wall_planned,
            bit_identical,
        });
    }
    let skew4 = chain_rows
        .iter()
        .find(|r| r.name == "chain4_skew")
        .expect("skew4 chain row present");
    assert!(
        skew4.wall_naive / skew4.wall_planned >= 2.0,
        "skewed 4-operand chain: planned order must run >=2x faster than naive \
         left-to-right (naive {:.2} ms, planned {:.2} ms)",
        skew4.wall_naive * 1e3,
        skew4.wall_planned * 1e3
    );

    // Pattern fast path: canonical einsums dispatched to microkernels
    // and zero-copy stride views vs the same statements forced through
    // the general lowering (`fast_path: false`), which remains the
    // bit-identity oracle for every row.
    let mut fast_rows: Vec<FastRow> = Vec::new();
    for case in fast_cases() {
        let fast = insum_with(case.expr, &case.tensors, &InsumOptions::default())
            .expect("fast-path artifact compiles");
        let pattern = fast
            .fast_path_pattern()
            .unwrap_or_else(|| panic!("{}: must classify onto the fast path", case.name))
            .name()
            .to_string();
        let general_opts = InsumOptions {
            fast_path: false,
            ..InsumOptions::default()
        };
        let general =
            insum_with(case.expr, &case.tensors, &general_opts).expect("general artifact compiles");
        assert!(
            general.fast_path_pattern().is_none(),
            "{}: fast_path=false must force the general lowering",
            case.name
        );

        let copies_before = Tensor::deep_copy_count();
        let (out_fast, _) = fast.run(&case.tensors).expect("fast path runs");
        let deep_copies_fast = Tensor::deep_copy_count() - copies_before;
        let (out_general, _) = general.run(&case.tensors).expect("general path runs");
        let bit_identical = out_fast.bit_eq(&out_general);
        assert!(
            bit_identical,
            "{}: the fast path must be bit-identical to the general lowering",
            case.name
        );
        if pattern == "transpose" || pattern == "diagonal" {
            assert_eq!(
                deep_copies_fast, 0,
                "{}: stride-transform patterns must perform zero deep copies",
                case.name
            );
            assert!(
                out_fast.shares_storage(&case.tensors["A"]),
                "{}: the fast output must be a view of the input's storage",
                case.name
            );
        }

        let wall_fast = best_wall(|| {
            let t = Instant::now();
            fast.run(&case.tensors).expect("fast path runs");
            t.elapsed().as_secs_f64()
        });
        let wall_general = best_wall(|| {
            let t = Instant::now();
            general.run(&case.tensors).expect("general path runs");
            t.elapsed().as_secs_f64()
        });
        fast_rows.push(FastRow {
            name: case.name.to_string(),
            pattern,
            wall_general,
            wall_fast,
            bit_identical,
            deep_copies_fast,
        });
    }
    for r in &fast_rows {
        // The headline claim covers the matmul-free patterns: stride
        // views and single-pass microkernels vs full interpreter
        // launches. Matmul rows are reported but not gated — they run
        // the same tiled Block::dot arithmetic as the interpreter (for
        // bit-identity) and save only the lowering/launch overhead.
        let matmul_free = !matches!(r.pattern.as_str(), "matmul" | "batched_matmul" | "dot");
        if matmul_free {
            assert!(
                r.wall_general / r.wall_fast >= 5.0,
                "{}: the {} fast path must be >=5x over the general lowering \
                 (general {:.3} ms, fast {:.3} ms)",
                r.name,
                r.pattern,
                r.wall_general * 1e3,
                r.wall_fast * 1e3
            );
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.mode.to_string(),
                r.host_threads.to_string(),
                r.instances.to_string(),
                format!("{:.2}", r.wall_ref * 1e3),
                format!("{:.2}", r.wall_new * 1e3),
                x(r.wall_ref / r.wall_new),
                format!("{:.0}", r.instances as f64 / r.wall_new),
                format!("{:.2}", r.lane_ops as f64 / r.wall_new / 1e6),
            ]
        })
        .collect();
    print_table(
        &format!("simulator throughput (max host threads: {max_threads})"),
        &[
            "workload", "mode", "thr", "insts", "seed ms", "new ms", "speedup", "insts/s",
            "Mlanes/s",
        ],
        &table,
    );

    let tune_table: Vec<Vec<String>> = tune_rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.configs_tried.to_string(),
                format!("{:.2}", r.cold_wall * 1e3),
                r.cold_misses.to_string(),
                format!("{:.2}", r.warm_wall * 1e3),
                r.warm_hits.to_string(),
            ]
        })
        .collect();
    print_table(
        "autotune (cold vs warm ProgramCache)",
        &[
            "workload",
            "configs",
            "cold ms",
            "misses",
            "warm ms",
            "warm hits",
        ],
        &tune_table,
    );

    let chain_table: Vec<Vec<String>> = chain_rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.operands.to_string(),
                r.strategy.clone(),
                format!("{:.3}", r.flops_naive as f64 / 1e6),
                format!("{:.3}", r.flops_planned as f64 / 1e6),
                format!("{:.1}", r.ws_naive_bytes as f64 / 1024.0),
                format!("{:.1}", r.ws_planned_bytes as f64 / 1024.0),
                format!("{:.2}", r.wall_naive * 1e3),
                format!("{:.2}", r.wall_planned * 1e3),
                x(r.wall_naive / r.wall_planned),
                r.bit_identical.to_string(),
            ]
        })
        .collect();
    print_table(
        "contraction chains (naive left-to-right vs planned order)",
        &[
            "chain",
            "ops",
            "strategy",
            "naive Mflop",
            "plan Mflop",
            "naive wsKB",
            "plan wsKB",
            "naive ms",
            "plan ms",
            "speedup",
            "bits ok",
        ],
        &chain_table,
    );

    let fast_table: Vec<Vec<String>> = fast_rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.pattern.clone(),
                format!("{:.3}", r.wall_general * 1e3),
                format!("{:.3}", r.wall_fast * 1e3),
                x(r.wall_general / r.wall_fast),
                r.bit_identical.to_string(),
                r.deep_copies_fast.to_string(),
            ]
        })
        .collect();
    print_table(
        "pattern fast path (microkernels + stride views vs general lowering)",
        &[
            "case",
            "pattern",
            "general ms",
            "fast ms",
            "speedup",
            "bits ok",
            "deep copies",
        ],
        &fast_table,
    );

    let headline = rows
        .iter()
        .find(|r| r.name == "spmm_block_group_fig7" && r.mode == "execute" && r.host_threads == 1)
        .expect("headline row present");
    println!(
        "\nheadline: fig7-scale SpMM execute-mode speedup {:.2}x (single-thread)",
        headline.wall_ref / headline.wall_new
    );

    // Machine-readable trajectory record.
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"simbench\",\n");
    json.push_str("  \"device_model\": \"rtx3090-sim\",\n");
    json.push_str(&format!("  \"host_threads_max\": {max_threads},\n"));
    json.push_str("  \"compile\": [\n");
    for (i, (name, secs, dedup, bind_ns)) in compile_notes.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"program_compile_seconds\": {secs:.6}, \
             \"analytic_instance_classes\": {dedup}, \"program_cache_hit_on_relaunch\": true, \
             \"bind_ns\": {bind_ns:.1}}}{}\n",
            if i + 1 < compile_notes.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"host_threads\": {}, \
             \"instances\": {}, \
             \"wall_seconds_seed\": {:.6}, \"wall_seconds_new\": {:.6}, \
             \"speedup\": {:.3}, \"instances_per_sec\": {:.1}, \
             \"lanes_per_sec\": {:.1}, \"analytic_instance_classes\": {}, \
             \"bit_identical\": {}}}{}\n",
            r.name,
            r.mode,
            r.host_threads,
            r.instances,
            r.wall_ref,
            r.wall_new,
            r.wall_ref / r.wall_new,
            r.instances as f64 / r.wall_new,
            r.lane_ops as f64 / r.wall_new,
            r.analytic_classes,
            r.bit_identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"chains\": [\n");
    for (i, r) in chain_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"operands\": {}, \"steps\": {}, \
             \"strategy\": \"{}\", \"flops_naive\": {}, \"flops_planned\": {}, \
             \"workspace_bytes_naive\": {}, \"workspace_bytes_planned\": {}, \
             \"wall_seconds_naive\": {:.6}, \"wall_seconds_planned\": {:.6}, \
             \"speedup\": {:.3}, \"program_cache_hit_on_replan\": true, \
             \"bit_identical\": {}}}{}\n",
            r.name,
            r.operands,
            r.steps,
            r.strategy,
            r.flops_naive,
            r.flops_planned,
            r.ws_naive_bytes,
            r.ws_planned_bytes,
            r.wall_naive,
            r.wall_planned,
            r.wall_naive / r.wall_planned,
            r.bit_identical,
            if i + 1 < chain_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"fast_path\": [\n");
    for (i, r) in fast_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"pattern\": \"{}\", \
             \"wall_seconds_general\": {:.9}, \"wall_seconds_fast\": {:.9}, \
             \"speedup\": {:.3}, \"bit_identical\": {}, \
             \"deep_copies_fast\": {}}}{}\n",
            r.name,
            r.pattern,
            r.wall_general,
            r.wall_fast,
            r.wall_general / r.wall_fast,
            r.bit_identical,
            r.deep_copies_fast,
            if i + 1 < fast_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"autotune\": [\n");
    for (i, r) in tune_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"configs_tried\": {}, \
             \"tuning_wall_seconds_cold\": {:.6}, \"cache_misses_cold\": {}, \
             \"tuning_wall_seconds_warm\": {:.6}, \"cache_hits_warm\": {}, \
             \"cache_misses_warm\": {}}}{}\n",
            r.name,
            r.configs_tried,
            r.cold_wall,
            r.cold_misses,
            r.warm_wall,
            r.warm_hits,
            r.warm_misses,
            if i + 1 < tune_rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}
