//! Simulator-throughput benchmark: the host-side performance of the GPU
//! interpreter itself (not the simulated device times).
//!
//! For each workload the harness compiles the fused kernel once, then
//! wall-clocks the optimized interpreter (`insum_gpu::launch`) against
//! the seed implementation (`insum_gpu::reference::launch_reference`) in
//! both Execute and Analytic modes, verifying that stats, simulated
//! timing, and (in Execute mode) output tensors are bit-identical. The
//! headline row is the fig7-scale block-group SpMM in Execute mode.
//!
//! Results print as a table and are written to `BENCH_sim.json` so the
//! perf trajectory is tracked across PRs (see EXPERIMENTS.md).

use insum::apps;
use insum::Tensor;
use insum_bench::{print_table, structured_spmm_setup, x};
use insum_gpu::reference::launch_reference;
use insum_gpu::{launch, DeviceModel, KernelReport, Mode};
use insum_graph::TensorMeta;
use insum_inductor::{build_plan, compile_fused, CodegenOptions, FusedOp};
use insum_tensor::DType;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// A compiled workload plus its bound arguments in parameter order.
struct Case {
    name: &'static str,
    op: FusedOp,
    tensors: BTreeMap<String, Tensor>,
}

fn compile(app: &apps::BoundApp) -> FusedOp {
    let stmt = insum_lang::parse(app.expr).expect("expression parses");
    let metas: BTreeMap<String, TensorMeta> = app
        .tensors
        .iter()
        .map(|(n, t)| (n.clone(), TensorMeta::new(t.shape().to_vec(), t.dtype())))
        .collect();
    let plan = build_plan(&stmt, &metas).expect("plan builds");
    compile_fused(&plan, &CodegenOptions::default()).expect("kernel compiles")
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    // Fig. 7 scale: 1024x1024 block-sparse (32x32 blocks, 50% dense), B
    // with 256 columns — the acceptance benchmark for this harness.
    let (_, bgc, b) = structured_spmm_setup(1024, 256, 0.5, DType::F16, 77);
    let app = apps::spmm_block_group(&bgc, &b);
    out.push(Case {
        name: "spmm_block_group_fig7",
        op: compile(&app),
        tensors: app.tensors,
    });

    // Scatter-heavy COO SpMM (no Tensor Cores, atomic-dominated).
    let mut rng = SmallRng::seed_from_u64(7);
    let dense = insum_workloads::blocksparse::block_sparse_dense(512, 512, 16, 16, 0.7, &mut rng);
    let coo = insum_formats::Coo::from_dense(&dense).expect("matrix");
    let bmat = insum_tensor::rand_uniform(vec![512, 64], -1.0, 1.0, &mut rng);
    let app = apps::spmm_coo(&coo, &bmat);
    out.push(Case {
        name: "spmm_coo_scatter",
        op: compile(&app),
        tensors: app.tensors,
    });

    // Point-cloud sparse convolution (gather + dot + scatter per offset).
    let mut rng = SmallRng::seed_from_u64(11);
    let pts = insum_workloads::pointcloud::generate_points(
        &insum_workloads::pointcloud::rooms()[0],
        0.10,
        &mut rng,
    );
    let scene = insum_workloads::pointcloud::voxelize(&pts, 0.05);
    let km = insum_workloads::pointcloud::kernel_map(&scene, 3);
    let input = insum_tensor::rand_normal(vec![scene.len(), 32], &mut rng);
    let weight = insum_tensor::rand_normal(vec![27, 32, 32], &mut rng);
    let app = apps::sparse_conv(&km, &input, &weight);
    out.push(Case {
        name: "pointcloud_conv",
        op: compile(&app),
        tensors: app.tensors,
    });

    // Equivariant tensor product (the paper's fourth case study).
    let mut rng = SmallRng::seed_from_u64(13);
    let cg = insum_workloads::equivariant::cg_tensor(2, 8);
    let (batch, u, w) = (128, 16, 16);
    let xt = insum_tensor::rand_uniform(vec![batch, cg.dim, u], -1.0, 1.0, &mut rng);
    let yt = insum_tensor::rand_uniform(vec![batch, cg.dim], -1.0, 1.0, &mut rng);
    let wt = insum_tensor::rand_uniform(vec![batch, cg.paths.len(), u, w], -0.5, 0.5, &mut rng);
    let app = apps::equivariant_tp(&cg, &xt, &yt, &wt);
    out.push(Case {
        name: "equivariant_tp",
        op: compile(&app),
        tensors: app.tensors,
    });

    out
}

/// Clone the case's tensors into launch-order argument storage.
fn bind(case: &Case) -> Vec<Tensor> {
    case.op
        .plan
        .param_order
        .iter()
        .map(|n| case.tensors.get(n).expect("parameter bound").clone())
        .collect()
}

fn run_once(
    case: &Case,
    device: &DeviceModel,
    mode: Mode,
    reference: bool,
) -> (f64, KernelReport, Vec<Tensor>) {
    let mut owned = bind(case);
    let mut refs: Vec<&mut Tensor> = owned.iter_mut().collect();
    let start = Instant::now();
    let report = if reference {
        launch_reference(&case.op.kernel, &case.op.grid, &mut refs, device, mode)
    } else {
        launch(&case.op.kernel, &case.op.grid, &mut refs, device, mode)
    }
    .expect("launch succeeds");
    (start.elapsed().as_secs_f64(), report, owned)
}

/// Best-of-N wall-clock (N adapted so slow cases stay bounded).
fn best_wall(case: &Case, device: &DeviceModel, mode: Mode, reference: bool) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    for i in 0..7 {
        let (t, _, _) = run_once(case, device, mode, reference);
        best = best.min(t);
        spent += t;
        if i >= 1 && spent > 10.0 {
            break;
        }
    }
    best
}

struct Row {
    name: String,
    mode: &'static str,
    instances: u64,
    wall_new: f64,
    wall_ref: f64,
    lane_ops: u64,
    bit_identical: bool,
}

fn main() {
    let device = DeviceModel::rtx3090();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<Row> = Vec::new();

    for case in cases() {
        for mode in [Mode::Execute, Mode::Analytic] {
            // Correctness first: one verified run per mode.
            let (_, r_new, out_new) = run_once(&case, &device, mode, false);
            let (_, r_ref, out_ref) = run_once(&case, &device, mode, true);
            let outputs_equal = out_new
                .iter()
                .zip(&out_ref)
                .all(|(a, b)| a.data() == b.data());
            let bit_identical =
                r_new.stats == r_ref.stats && r_new.time == r_ref.time && outputs_equal;
            assert!(
                bit_identical,
                "{}: optimized interpreter diverges from the seed in {mode:?} mode",
                case.name
            );

            let wall_new = best_wall(&case, &device, mode, false);
            let wall_ref = best_wall(&case, &device, mode, true);
            // Lane-level work per launch: block-arithmetic lanes, atomic
            // lanes, and memory sector transactions at 8 f32 lanes each.
            let lane_ops = r_new.stats.flops_scalar
                + r_new.stats.atomics
                + 8 * (r_new.stats.l2_read_sectors + r_new.stats.l2_write_sectors);
            rows.push(Row {
                name: case.name.to_string(),
                mode: if mode == Mode::Execute {
                    "execute"
                } else {
                    "analytic"
                },
                instances: r_new.stats.instances,
                wall_new,
                wall_ref,
                lane_ops,
                bit_identical,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.mode.to_string(),
                r.instances.to_string(),
                format!("{:.2}", r.wall_ref * 1e3),
                format!("{:.2}", r.wall_new * 1e3),
                x(r.wall_ref / r.wall_new),
                format!("{:.0}", r.instances as f64 / r.wall_new),
                format!("{:.2}", r.lane_ops as f64 / r.wall_new / 1e6),
            ]
        })
        .collect();
    print_table(
        &format!("simulator throughput (host threads: {threads})"),
        &[
            "workload", "mode", "insts", "seed ms", "new ms", "speedup", "insts/s", "Mlanes/s",
        ],
        &table,
    );

    let headline = rows
        .iter()
        .find(|r| r.name == "spmm_block_group_fig7" && r.mode == "execute")
        .expect("headline row present");
    println!(
        "\nheadline: fig7-scale SpMM execute-mode speedup {:.2}x (target >= 5x)",
        headline.wall_ref / headline.wall_new
    );

    // Machine-readable trajectory record.
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"simbench\",\n");
    json.push_str("  \"device_model\": \"rtx3090-sim\",\n");
    json.push_str(&format!("  \"host_threads\": {threads},\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mode\": \"{}\", \"instances\": {}, \
             \"wall_seconds_seed\": {:.6}, \"wall_seconds_new\": {:.6}, \
             \"speedup\": {:.3}, \"instances_per_sec\": {:.1}, \
             \"lanes_per_sec\": {:.1}, \"bit_identical\": {}}}{}\n",
            r.name,
            r.mode,
            r.instances,
            r.wall_ref,
            r.wall_new,
            r.wall_ref / r.wall_new,
            r.instances as f64 / r.wall_new,
            r.lane_ops as f64 / r.wall_new,
            r.bit_identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    println!("wrote BENCH_sim.json");
}
