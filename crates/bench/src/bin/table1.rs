//! Table 1: the headline summary — lines of code and speedup for all
//! four applications.
//!
//! Speedups are measured against the strongest competing baseline in this
//! reproduction (the paper's comparison target for each app); LoC counts
//! the Insum expression (always 1) against the published size of each
//! hand-written library.

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_bench::{geomean, print_table, structured_spmm_setup, time_app, x};
use insum_formats::heuristic::heuristic_group_size;
use insum_formats::{Bcsr, Csr, GroupCoo};
use insum_gpu::DeviceModel;
use insum_tensor::DType;
use insum_workloads::equivariant::cg_tensor;
use insum_workloads::graphs::{catalog, generate};
use insum_workloads::pointcloud::{generate_points, kernel_map, rooms, voxelize};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let device = DeviceModel::rtx3090();
    let opts = InsumOptions::default();

    // --- Structured SpMM vs TorchBSR (90% sparsity, FP16). ---
    let (a_dense, bgc, b) = structured_spmm_setup(1024, 256, 0.9, DType::F16, 1);
    let t_ours = time_app(&apps::spmm_block_group(&bgc, &b), &opts);
    let bcsr = Bcsr::from_dense(&a_dense, 32, 32).expect("blocked");
    let (_, p) = insum_baselines::spmm::torch_bsr_spmm(&bcsr, &b, &device, Mode::Analytic)
        .expect("baseline runs");
    let su_struct = p.total_time() / t_ours;

    // --- Unstructured SpMM vs Sputnik (geomean over the graph suite). ---
    let mut ratios = Vec::new();
    for spec in catalog() {
        let mut rng = SmallRng::seed_from_u64(11);
        let coo = generate(&spec, 32, &mut rng);
        let b = insum_tensor::rand_uniform(vec![coo.cols, 128], -1.0, 1.0, &mut rng);
        let g = heuristic_group_size(&coo.occupancy());
        let gc = GroupCoo::from_coo(&coo, g).expect("valid group size");
        let t_ours = time_app(&apps::spmm_group(&gc, &b), &opts);
        let csr = Csr::from_coo(&coo);
        let (_, p) = insum_baselines::spmm::sputnik_spmm(&csr, &b, &device, Mode::Analytic)
            .expect("baseline runs");
        ratios.push(p.total_time() / t_ours);
    }
    let su_unstruct = geomean(&ratios);

    // --- Sparse conv vs TorchSparse (best of its two algorithms). ---
    let mut rng = SmallRng::seed_from_u64(12);
    let room = &rooms()[0];
    let scene = voxelize(&generate_points(room, 0.10, &mut rng), 0.15);
    let input = insum_tensor::rand_uniform(vec![scene.voxels.len(), 32], -1.0, 1.0, &mut rng)
        .cast(DType::F16);
    let weight = insum_tensor::rand_uniform(vec![27, 32, 32], -0.5, 0.5, &mut rng).cast(DType::F16);
    let occ: Vec<usize> = insum_baselines::conv::pairs_by_offset(&scene)
        .iter()
        .map(Vec::len)
        .collect();
    let km = kernel_map(&scene, heuristic_group_size(&occ).clamp(8, 64));
    let t_ours = time_app(&apps::sparse_conv(&km, &input, &weight), &opts);
    let (_, p1) =
        insum_baselines::conv::implicit_gemm_conv(&scene, &input, &weight, &device, Mode::Analytic)
            .expect("algo1 runs");
    let (_, p2) = insum_baselines::conv::fetch_on_demand_conv(
        &scene,
        &input,
        &weight,
        &device,
        Mode::Analytic,
    )
    .expect("algo2 runs");
    let su_conv = p1.total_time().min(p2.total_time()) / t_ours;

    // --- Equivariant TP vs e3nn (lmax=2, channels=32). ---
    let mut rng = SmallRng::seed_from_u64(2);
    let cg = cg_tensor(2, 8);
    let (batch, ch) = (256, 32);
    let x_t = insum_tensor::rand_uniform(vec![batch, cg.dim, ch], -1.0, 1.0, &mut rng);
    let y_t = insum_tensor::rand_uniform(vec![batch, cg.dim], -1.0, 1.0, &mut rng);
    let w_t = insum_tensor::rand_uniform(vec![batch, cg.paths.len(), ch, ch], -0.5, 0.5, &mut rng);
    let t_ours = time_app(&apps::equivariant_tp(&cg, &x_t, &y_t, &w_t), &opts);
    let (_, p) = insum_baselines::tp::e3nn_tp(&cg, &x_t, &y_t, &w_t, &device, Mode::Analytic)
        .expect("e3nn baseline runs");
    let su_tp = p.total_time() / t_ours;

    let rows = vec![
        vec![
            "Structured SpMM".into(),
            "TorchBSR".into(),
            "202 LoC".into(),
            "1 expr".into(),
            x(su_struct),
            "1.95x".into(),
        ],
        vec![
            "Unstructured SpMM".into(),
            "Sputnik".into(),
            "1918 LoC".into(),
            "1 expr".into(),
            x(su_unstruct),
            "1.20x".into(),
        ],
        vec![
            "Sparse Convolution".into(),
            "TorchSparse".into(),
            "4491 LoC".into(),
            "1 expr".into(),
            x(su_conv),
            "1.14x".into(),
        ],
        vec![
            "Equivariant Tensor Prod.".into(),
            "e3nn".into(),
            "225 LoC".into(),
            "1 expr".into(),
            x(su_tp),
            "3.81x".into(),
        ],
    ];
    print_table(
        "Table 1 — applications summary (speedup of Insum over the named baseline)",
        &[
            "application",
            "baseline",
            "baseline LoC (paper)",
            "ours LoC",
            "speedup (measured)",
            "speedup (paper)",
        ],
        &rows,
    );
    println!("\nexpressions (each exactly one line):");
    for (name, e) in [
        ("structured SpMM  ", apps::SPMM_BLOCK_GROUP_EXPR),
        ("unstructured SpMM", apps::SPMM_GROUP_EXPR),
        ("sparse conv      ", apps::CONV_EXPR),
        ("equivariant TP   ", apps::TP_EXPR),
    ] {
        println!("  {name}: {e}");
    }
}
