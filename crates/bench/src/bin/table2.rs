//! Table 2: equivariant tensor product against cuequivariance and e3nn,
//! normalized to e3nn, FP32.
//!
//! Paper claims: ours ≥2× over e3nn everywhere (2.3–8.3×), with the
//! advantage shrinking as ℓmax/channels grow; cuequivariance beats e3nn
//! at small configurations but falls below it at large ones.
//!
//! Scaled configuration: batch 256 (paper: 10 000), channels ∈ {16,32,64}.

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_bench::{print_table, time_app, x};
use insum_gpu::DeviceModel;
use insum_workloads::equivariant::cg_tensor;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let batch = 256;
    let device = DeviceModel::rtx3090();
    let opts = InsumOptions::default();

    let mut rows = Vec::new();
    for lmax in [1usize, 2, 3] {
        for channels in [16usize, 32, 64] {
            let mut rng = SmallRng::seed_from_u64(2);
            let cg = cg_tensor(lmax, 8);
            let x_t =
                insum_tensor::rand_uniform(vec![batch, cg.dim, channels], -1.0, 1.0, &mut rng);
            let y_t = insum_tensor::rand_uniform(vec![batch, cg.dim], -1.0, 1.0, &mut rng);
            let w_t = insum_tensor::rand_uniform(
                vec![batch, cg.paths.len(), channels, channels],
                -0.5,
                0.5,
                &mut rng,
            );

            let app = apps::equivariant_tp(&cg, &x_t, &y_t, &w_t);
            let t_ours = time_app(&app, &opts);
            let (_, p_e3) =
                insum_baselines::tp::e3nn_tp(&cg, &x_t, &y_t, &w_t, &device, Mode::Analytic)
                    .expect("e3nn baseline runs");
            let (_, p_cueq) = insum_baselines::tp::cuequivariance_tp(
                &cg,
                &x_t,
                &y_t,
                &w_t,
                &device,
                Mode::Analytic,
            )
            .expect("cuequivariance baseline runs");
            let t_e3 = p_e3.total_time();
            let t_cueq = p_cueq.total_time();
            rows.push(vec![
                lmax.to_string(),
                channels.to_string(),
                x(t_e3 / t_ours),
                x(t_e3 / t_cueq),
                "1.00x".to_string(),
            ]);
        }
    }
    print_table(
        "Table 2 — equivariant tensor product, speedup normalized to e3nn (FP32, batch 256)",
        &["lmax", "channels", "ours", "cuequivariance", "e3nn"],
        &rows,
    );
    println!(
        "\npaper: ours 8.3x..2.3x (>=2x everywhere), decreasing with lmax/channels; \
         cuequivariance 2.6x..0.3x (falls below e3nn at large sizes)"
    );
}
