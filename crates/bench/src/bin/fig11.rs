//! Figure 11: unstructured SpMM against Sputnik and cuSPARSE on the 14
//! TC-GNN matrices (synthetic models; see DESIGN.md), FP32, N = 128.
//!
//! Paper claims: ours is fastest on average (~1.20× cuSPARSE geomean vs
//! ~1.09× for Sputnik), no single kernel dominates everywhere, and
//! Sputnik's row-swizzling wins on heavily skewed matrices (`artist`).
//!
//! Matrices are scaled down 32× from the published sizes (average degree
//! preserved).

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_bench::{geomean, print_table, time_app, x};
use insum_formats::heuristic::heuristic_group_size;
use insum_formats::{Csr, GroupCoo};
use insum_gpu::DeviceModel;
use insum_workloads::graphs::{catalog, generate, gini};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n_cols = 128;
    let scale = 32;
    let device = DeviceModel::rtx3090();
    let opts = InsumOptions::default();

    let mut rows = Vec::new();
    let (mut su_ours, mut su_sputnik) = (Vec::new(), Vec::new());
    for spec in catalog() {
        let mut rng = SmallRng::seed_from_u64(11);
        let coo = generate(&spec, scale, &mut rng);
        let b = insum_tensor::rand_uniform(vec![coo.cols, n_cols], -1.0, 1.0, &mut rng);

        let g = heuristic_group_size(&coo.occupancy());
        let gc = GroupCoo::from_coo(&coo, g).expect("valid group size");
        let app = apps::spmm_group(&gc, &b);
        let t_ours = time_app(&app, &opts);

        let csr = Csr::from_coo(&coo);
        let (_, p_cus) = insum_baselines::spmm::cusparse_spmm(&csr, &b, &device, Mode::Analytic)
            .expect("cusparse baseline runs");
        let (_, p_spt) = insum_baselines::spmm::sputnik_spmm(&csr, &b, &device, Mode::Analytic)
            .expect("sputnik baseline runs");
        let t_cus = p_cus.total_time();
        let t_spt = p_spt.total_time();

        su_ours.push(t_cus / t_ours);
        su_sputnik.push(t_cus / t_spt);
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", coo.rows),
            format!("{}", coo.nnz()),
            format!("{:.2}", gini(&coo.occupancy())),
            x(t_cus / t_ours),
            x(t_cus / t_spt),
            "1.00x".to_string(),
        ]);
    }
    rows.push(vec![
        "geomean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        x(geomean(&su_ours)),
        x(geomean(&su_sputnik)),
        "1.00x".to_string(),
    ]);
    print_table(
        "Fig. 11 — unstructured SpMM speedup over cuSPARSE (FP32, N=128, scale 1/32)",
        &[
            "dataset",
            "rows",
            "nnz",
            "skew(gini)",
            "ours",
            "Sputnik",
            "cuSPARSE",
        ],
        &rows,
    );
    println!("\npaper geomeans: ours 1.20x, Sputnik 1.09x; Sputnik wins on skewed sets (artist)");
}
