//! Figure 8 (qualitative): the three codegen flavors for a dense matmul
//! `C[y,x] = A[y,r] * B[r,x]` — (a) default Inductor without `ops.dot`
//! (scalar multiply + `tl.sum`), (b) `tl.dot` with eager broadcasting
//! (note the `tl.view`/`tl.trans` before the dot), and (c) `tl.dot` with
//! lazy broadcasting (operands arrive in `(Y,R)`/`(R,X)` layout).

use insum::{insum_with, InsumOptions, Tensor};
use std::collections::BTreeMap;

fn main() {
    let n = 256;
    let tensors: BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![n, n])),
        ("A".to_string(), Tensor::zeros(vec![n, n])),
        ("B".to_string(), Tensor::zeros(vec![n, n])),
    ]
    .into_iter()
    .collect();
    let expr = "C[y,x] = A[y,r] * B[r,x]";

    let variants = [
        (
            "(a) default Inductor: no ops.dot, scalar multiply + tl.sum",
            InsumOptions {
                tensor_cores: false,
                ..Default::default()
            },
        ),
        (
            "(b) ops.dot with EAGER broadcasting: tl.view / tl.trans before the dot",
            InsumOptions {
                lazy_broadcast: false,
                ..Default::default()
            },
        ),
        (
            "(c) ops.dot with LAZY broadcasting (ours)",
            InsumOptions::default(),
        ),
    ];
    for (title, opts) in variants {
        let op = insum_with(expr, &tensors, &opts).expect("compilation succeeds");
        println!("# ---- {title} ----");
        println!("{}", op.triton_source());
        let profile = op.time(&tensors).expect("simulation succeeds");
        println!("# simulated time: {:.2} us\n", profile.total_time() * 1e6);
    }
}
