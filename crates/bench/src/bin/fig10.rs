//! Figure 10: structured SpMM speedup over dense matmul vs sparsity,
//! ours (BlockGroupCOO, fused, FP16) against TorchBSR.
//!
//! Paper claims: (1) ours matches or beats TorchBSR everywhere with a
//! growing advantage at high sparsity, and (2) the sparse-beats-dense
//! crossover moves from ~40% to ~25% sparsity.
//!
//! Scaled configuration: 1024×1024 (paper: 4096×4096), 32×32 blocks,
//! N = 256, FP16.

use insum::{InsumOptions, Mode};
use insum_bench::{print_table, structured_spmm_setup, x};
use insum_formats::Bcsr;
use insum_gpu::DeviceModel;

fn main() {
    let n = 1024;
    let cols_b = 256;
    let device = DeviceModel::rtx3090();
    let opts = InsumOptions::default();

    // Dense baseline is sparsity-independent.
    let (dense_a, _, b) = structured_spmm_setup(n, cols_b, 0.5, insum::DType::F16, 7);
    let (_, dense_profile) =
        insum_baselines::dense::dense_matmul(&dense_a, &b, &device, Mode::Analytic)
            .expect("dense baseline runs");
    let t_dense = dense_profile.total_time();

    let mut rows = Vec::new();
    let mut crossover_ours = None;
    let mut crossover_bsr = None;
    for sparsity in [
        0.10, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.99,
    ] {
        let (a_dense, _, b) = structured_spmm_setup(n, cols_b, sparsity, insum::DType::F16, 7);
        // Group size per §4.2: sqrt(S/n) rounded to nearby powers of two,
        // the winner selected by measured runtime.
        let bcoo = insum_formats::BlockCoo::from_dense(&a_dense, 32, 32).expect("blocked");
        let (_, t_ours) = insum::tune_block_group_size(&bcoo, &b, &opts).expect("tuning succeeds");

        let bcsr = Bcsr::from_dense(&a_dense, 32, 32).expect("blocked");
        let (_, p_bsr) = insum_baselines::spmm::torch_bsr_spmm(&bcsr, &b, &device, Mode::Analytic)
            .expect("bsr baseline runs");
        let t_bsr = p_bsr.total_time();

        let su_ours = t_dense / t_ours;
        let su_bsr = t_dense / t_bsr;
        if su_ours >= 1.0 && crossover_ours.is_none() {
            crossover_ours = Some(sparsity);
        }
        if su_bsr >= 1.0 && crossover_bsr.is_none() {
            crossover_bsr = Some(sparsity);
        }
        rows.push(vec![
            format!("{:.0}%", sparsity * 100.0),
            x(su_ours),
            x(su_bsr),
            x(t_bsr / t_ours),
        ]);
    }
    print_table(
        "Fig. 10 — structured SpMM speedup over dense MM (FP16, 1024x1024, 32x32 blocks)",
        &[
            "sparsity",
            "ours vs dense",
            "TorchBSR vs dense",
            "ours vs TorchBSR",
        ],
        &rows,
    );
    println!(
        "\ncrossover (sparse beats dense): ours at ~{}, TorchBSR at ~{}  [paper: ~25% vs ~40%]",
        crossover_ours.map_or("n/a".into(), |s| format!("{:.0}%", s * 100.0)),
        crossover_bsr.map_or("n/a".into(), |s| format!("{:.0}%", s * 100.0)),
    );
}
