//! Figure 7: group-size sweep — runtime vs (a) the indirect-access count
//! F(g) and (b) the format memory footprint.
//!
//! Paper claims: runtime correlates with F(g) = (g+1)·Σ⌈occᵢ/g⌉ (7a) and
//! does *not* correlate with format size, which grows almost
//! monotonically with g (7b).
//!
//! Scaled configuration: 1024×1024, 32×32 blocks, 50% block sparsity
//! (paper: 4096×4096 at 80%); g ∈ 1..=32. The denser matrix keeps the
//! g=1 scatter cost visible at the scaled-down size.

use insum::apps;
use insum::InsumOptions;
use insum_bench::{print_table, time_app, us};
use insum_formats::heuristic::{heuristic_group_size, indirect_access_cost};
use insum_formats::{BlockCoo, BlockGroupCoo};
use insum_tensor::DType;
use insum_workloads::blocksparse::block_sparse_dense;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Pearson correlation coefficient.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}

fn main() {
    let n = 1024;
    let cols_b = 256;
    let mut rng = SmallRng::seed_from_u64(77);
    let a_dense = block_sparse_dense(n, n, 32, 32, 0.5, &mut rng).cast(DType::F16);
    let b = insum_tensor::rand_uniform(vec![n, cols_b], -1.0, 1.0, &mut rng).cast(DType::F16);
    let bcoo = BlockCoo::from_dense(&a_dense, 32, 32).expect("blocked");
    let occ = bcoo.block_occupancy();
    let opts = InsumOptions::default();

    let mut rows = Vec::new();
    let (mut times, mut fgs, mut sizes) = (Vec::new(), Vec::new(), Vec::new());
    for g in 1..=32usize {
        let bgc = BlockGroupCoo::from_block_coo(&bcoo, g).expect("valid group size");
        let app = apps::spmm_block_group(&bgc, &b);
        let t = time_app(&app, &opts);
        let f = indirect_access_cost(&occ, g);
        let bytes = bgc.device_bytes();
        times.push(t);
        fgs.push(f as f64);
        sizes.push(bytes as f64);
        rows.push(vec![
            g.to_string(),
            us(t),
            f.to_string(),
            format!("{:.1} KiB", bytes as f64 / 1024.0),
        ]);
    }
    print_table(
        "Fig. 7 — BlockGroupCOO SpMM group-size sweep (1024x1024, 32x32 blocks, 50% block sparsity)",
        &["g", "runtime (us)", "F(g) indirect accesses", "format size"],
        &rows,
    );
    let r_f = pearson(&times, &fgs);
    let r_size = pearson(&times, &sizes);
    println!("\ncorrelation(runtime, F(g))        = {r_f:.3}   [paper: strong positive]");
    println!("correlation(runtime, format size) = {r_size:.3}   [paper: weak/negative]");
    // The discriminating region is small g, where F(g) falls while the
    // format grows: size would predict g=1 to be fastest; F(g) correctly
    // predicts the dip at moderate g.
    let k = 8.min(times.len());
    let r_f8 = pearson(&times[..k], &fgs[..k]);
    let r_size8 = pearson(&times[..k], &sizes[..k]);
    println!("over g<=8 only: corr(runtime, F(g)) = {r_f8:.3}, corr(runtime, size) = {r_size8:.3}");
    let g_star = heuristic_group_size(&occ);
    let best_g = 1 + times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
        .expect("nonempty sweep")
        .0;
    println!(
        "heuristic g* = {g_star} (sqrt(S/n) rounded to power of two); empirical best g = {best_g}"
    );
}
