//! Figure 13: ablation study on structured SpMM.
//!
//! Rows reproduce the paper's ladder: COO → +Group → +Block →
//! +Group+Block (all unfused, stock-Inductor pipeline), then the compiler
//! rows: +Tensor Core fusion and +Lazy Broadcasting. The final row should
//! beat the hand-written TorchBSR kernel.
//!
//! Scaled configuration: 512×512, 90% uniform element sparsity expressed
//! through 32×32 blocks (the paper uses 4096×4096); N = 128, FP16.

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_bench::{print_table, us, x};
use insum_formats::{Bcsr, BlockCoo, BlockGroupCoo, Coo, GroupCoo};
use insum_gpu::DeviceModel;
use insum_tensor::DType;
use insum_workloads::blocksparse::block_sparse_dense;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 512;
    let cols_b = 128;
    let mut rng = SmallRng::seed_from_u64(13);
    let a_dense = block_sparse_dense(n, n, 32, 32, 0.9, &mut rng).cast(DType::F16);
    let b = insum_tensor::rand_uniform(vec![n, cols_b], -1.0, 1.0, &mut rng).cast(DType::F16);
    let device = DeviceModel::rtx3090();

    let coo = Coo::from_dense(&a_dense).expect("matrix");
    let group = GroupCoo::from_coo(&coo, 16).expect("g=16 as in the paper");
    let bcoo = BlockCoo::from_dense(&a_dense, 32, 32).expect("blocked");
    let bgc = BlockGroupCoo::from_block_coo(&bcoo, 4).expect("g=4 as in the paper");

    let unfused = InsumOptions::unfused();
    let fused_eager = InsumOptions {
        lazy_broadcast: false,
        ..Default::default()
    };
    let fused_lazy = InsumOptions::default();

    let t_coo = insum_bench::time_app(&apps::spmm_coo(&coo, &b), &unfused);
    let t_group = insum_bench::time_app(&apps::spmm_group(&group, &b), &unfused);
    let t_block = insum_bench::time_app(&apps::spmm_block(&bcoo, &b), &unfused);
    let t_gb = insum_bench::time_app(&apps::spmm_block_group(&bgc, &b), &unfused);
    let t_tc = insum_bench::time_app(&apps::spmm_block_group(&bgc, &b), &fused_eager);
    let t_lazy = insum_bench::time_app(&apps::spmm_block_group(&bgc, &b), &fused_lazy);

    let bcsr = Bcsr::from_block_coo(&bcoo);
    let (_, p_bsr) = insum_baselines::spmm::torch_bsr_spmm(&bcsr, &b, &device, Mode::Analytic)
        .expect("baseline runs");
    let t_bsr = p_bsr.total_time();

    let rows: Vec<Vec<String>> = [
        ("COO (unfused)", t_coo),
        ("COO + Group (unfused)", t_group),
        ("COO + Block (unfused)", t_block),
        ("COO + Group + Block (unfused)", t_gb),
        ("+ Tensor Core fusion", t_tc),
        ("+ Lazy Broadcasting", t_lazy),
        ("TorchBSR (hand-written reference)", t_bsr),
    ]
    .iter()
    .map(|(name, t)| vec![name.to_string(), us(*t), x(t_coo / t), x(t_bsr / t)])
    .collect();
    print_table(
        "Fig. 13 — ablation on structured SpMM (512x512, 90% sparsity, 32x32 blocks, FP16)",
        &[
            "configuration",
            "time (us)",
            "speedup vs COO",
            "vs TorchBSR",
        ],
        &rows,
    );
    println!(
        "\npaper shape: group ~8x, group+block ~20x over COO; TC fusion ~2.6x more; \
         lazy broadcasting a further small gain; final row beats TorchBSR"
    );
}
