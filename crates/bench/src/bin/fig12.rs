//! Figure 12: point-cloud sparse convolution against TorchSparse Algo1
//! (ImplicitGEMM) and Algo2 (Fetch-on-Demand) on seven synthetic indoor
//! rooms, FP16, channels 32 (paper: 128; S3DIS rooms at 5 cm voxels).
//!
//! Paper claims: ours is fastest on every scene, geomean ~1.14× over the
//! better TorchSparse algorithm.

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_bench::{geomean, print_table, time_app, x};
use insum_formats::heuristic::heuristic_group_size;
use insum_gpu::DeviceModel;
use insum_tensor::DType;
use insum_workloads::pointcloud::{generate_points, kernel_map, rooms, voxelize};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let channels = 32;
    let device = DeviceModel::rtx3090();
    let opts = InsumOptions::default();

    let mut rows = Vec::new();
    let (mut su1, mut su2) = (Vec::new(), Vec::new());
    for room in rooms() {
        let mut rng = SmallRng::seed_from_u64(12);
        let scene = voxelize(&generate_points(&room, 0.10, &mut rng), 0.15);
        let input =
            insum_tensor::rand_uniform(vec![scene.voxels.len(), channels], -1.0, 1.0, &mut rng)
                .cast(DType::F16);
        let weight = insum_tensor::rand_uniform(vec![27, channels, channels], -0.5, 0.5, &mut rng)
            .cast(DType::F16);

        // Ours: grouped kernel map with the F(g) heuristic over per-offset
        // pair counts.
        let occ: Vec<usize> = insum_baselines::conv::pairs_by_offset(&scene)
            .iter()
            .map(Vec::len)
            .collect();
        let g = heuristic_group_size(&occ).clamp(8, 64);
        let km = kernel_map(&scene, g);
        let app = apps::sparse_conv(&km, &input, &weight);
        let t_ours = time_app(&app, &opts);

        let (_, p1) = insum_baselines::conv::implicit_gemm_conv(
            &scene,
            &input,
            &weight,
            &device,
            Mode::Analytic,
        )
        .expect("algo1 runs");
        let (_, p2) = insum_baselines::conv::fetch_on_demand_conv(
            &scene,
            &input,
            &weight,
            &device,
            Mode::Analytic,
        )
        .expect("algo2 runs");
        let (t1, t2) = (p1.total_time(), p2.total_time());
        su1.push(t1 / t_ours);
        su2.push(t2 / t_ours);
        rows.push(vec![
            room.name.to_string(),
            scene.voxels.len().to_string(),
            km.pairs.to_string(),
            x(t1 / t_ours),
            x(t2 / t_ours),
        ]);
    }
    rows.push(vec![
        "geomean".to_string(),
        String::new(),
        String::new(),
        x(geomean(&su1)),
        x(geomean(&su2)),
    ]);
    print_table(
        "Fig. 12 — sparse conv: ours speedup over TorchSparse (FP16, C=32)",
        &[
            "scene",
            "voxels",
            "map pairs",
            "vs Algo1 (ImplicitGEMM)",
            "vs Algo2 (Fetch-on-Demand)",
        ],
        &rows,
    );
    println!("\npaper: ours fastest on all scenes; ~1.14x geomean over the best TorchSparse algo");
}
