//! Table 3: compiler comparison on the point-cloud convolution
//! (conferenceRoom): compile time, autotune time, format-conversion time,
//! and kernel runtime for Insum vs TACO vs SparseTIR.
//!
//! Paper claims: Insum has the highest one-time compile+autotune cost but
//! the fastest kernel; TACO compiles and converts fastest but runs two to
//! three orders of magnitude slower; SparseTIR needs a ~800-line manual
//! schedule and pays a slow CPU-side format conversion.
//!
//! Compile/autotune times are host wall-clock of this reproduction's real
//! pipeline; conversion times are simulated from the bytes each system
//! moves (GPU-side for ours and TACO, CPU-side for SparseTIR, as in the
//! paper).

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_bench::print_table;
use insum_formats::heuristic::heuristic_group_size;
use insum_gpu::DeviceModel;
use insum_tensor::DType;
use insum_workloads::pointcloud::{generate_points, kernel_map, rooms, voxelize};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let device = DeviceModel::rtx3090();
    let mut rng = SmallRng::seed_from_u64(3);
    let room = &rooms()[0]; // conferenceRoom
    let scene = voxelize(&generate_points(room, 0.10, &mut rng), 0.15);
    let channels = 32;
    let input = insum_tensor::rand_uniform(vec![scene.voxels.len(), channels], -1.0, 1.0, &mut rng)
        .cast(DType::F16);
    let weight = insum_tensor::rand_uniform(vec![27, channels, channels], -0.5, 0.5, &mut rng)
        .cast(DType::F16);

    // ---- Ours: compile + autotune (real wall-clock), GPU conversion. ----
    let occ: Vec<usize> = insum_baselines::conv::pairs_by_offset(&scene)
        .iter()
        .map(Vec::len)
        .collect();
    let km = kernel_map(&scene, heuristic_group_size(&occ).clamp(8, 64));
    let app = apps::sparse_conv(&km, &input, &weight);
    let compiled = app
        .compile(&InsumOptions::autotuned())
        .expect("compilation succeeds");
    let t_ours = compiled
        .time(&app.tensors)
        .expect("simulation succeeds")
        .total_time();
    // Conversion: build the grouped kernel map on the GPU — bytes through
    // DRAM twice (scan pairs + write grouped arrays).
    let ours_convert_bytes = (km.mapx.device_bytes()
        + km.mapy.device_bytes()
        + km.mapz.device_bytes()
        + km.mapv.device_bytes()) as f64;
    let t_ours_convert = 2.0 * ours_convert_bytes / device.dram_bw + device.launch_overhead;

    // ---- TACO: fast codegen, cheap flat-pair conversion, slow kernel. ----
    let taco_compile = 0.01; // paper-reported CPU codegen time (seconds)
    let pairs: usize = occ.iter().sum();
    let taco_convert_bytes = (pairs * 3 * 4) as f64;
    let t_taco_convert = 2.0 * taco_convert_bytes / device.dram_bw + device.launch_overhead;
    let (_, p_taco) =
        insum_baselines::conv::taco_conv(&scene, &input, &weight, &device, Mode::Analytic)
            .expect("taco baseline runs");
    let t_taco = p_taco.total_time();

    // ---- SparseTIR: fixed manual schedule, CPU-side conversion. ----
    let sparsetir_compile = 0.32; // paper-reported TVM build time (seconds)
    let cpu_bw = 4e9; // single-threaded CPU conversion bandwidth, bytes/s
    let t_stir_convert = 2.0 * ours_convert_bytes / cpu_bw;
    let (_, p_stir) =
        insum_baselines::conv::sparsetir_conv(&scene, &input, &weight, &device, Mode::Analytic)
            .expect("sparsetir baseline runs");
    let t_stir = p_stir.total_time();

    let ms = |t: f64| format!("{:.3}", t * 1e3);
    let rows = vec![
        vec![
            "Compile (s)".into(),
            format!(
                "{:.2}",
                compiled.compile_seconds - compiled.autotune_seconds
            ),
            format!("{taco_compile:.2}"),
            format!("{sparsetir_compile:.2}"),
        ],
        vec![
            "Autotune (s)".into(),
            format!(
                "{:.2} ({} configs)",
                compiled.autotune_seconds, compiled.autotune_configs
            ),
            "n/a (10 LoC schedule)".into(),
            "n/a (860 LoC schedule)".into(),
        ],
        vec![
            "FormatConvert (ms)".into(),
            ms(t_ours_convert),
            ms(t_taco_convert),
            ms(t_stir_convert),
        ],
        vec!["Runtime (ms)".into(), ms(t_ours), ms(t_taco), ms(t_stir)],
    ];
    print_table(
        "Table 3 — compiler comparison on conferenceRoom sparse conv (FP16, C=32)",
        &["metric", "Insum (ours)", "TACO", "SparseTIR"],
        &rows,
    );
    println!(
        "\npaper: ours 9.9s compile + 4.9s autotune, 0.55ms convert, 0.47ms run; \
         TACO 0.01s / 0.47ms / 253.53ms; SparseTIR 0.32s / 13.47ms / 1.05ms"
    );
    println!(
        "runtime ratios: TACO/ours = {:.1}x slower, SparseTIR/ours = {:.2}x slower",
        t_taco / t_ours,
        t_stir / t_ours
    );
}
