//! Serving-engine throughput benchmark: request throughput of the
//! `insum_serve` engine versus today's entry point — a synchronous
//! one-shot `insum_with(...)` + `run(...)` per request — over the fig7
//! SpMM, COO scatter, and point-cloud workloads at client concurrency
//! 1/4/8/16.
//!
//! Every request carries its own activation tensor against shared static
//! operands (the sparse structure / weights), the serving reality the
//! engine exists for. Three measurements per workload:
//!
//! * **serial one-shot** — for each request, compile (with the
//!   workload's serving options, autotuned where the paper's deployment
//!   config says so) and run. This is what an application does today
//!   without the engine; PR 3's `ProgramCache` only dedups the simulator
//!   lowering, not the per-request parse/plan/codegen/autotune.
//! * **serial precompiled** — compile once, run every request
//!   back-to-back on one thread: the engine-free floor for pure
//!   execution.
//! * **engine** — clients submit concurrently; the engine's registry
//!   compiles once per distinct program, the scheduler batches
//!   launch-compatible requests, and the shared simulator pool executes
//!   them. Engines are warmed with one out-of-measurement request (the
//!   cold-start cost is reported separately).
//!
//! Every engine response is verified **bit-identical** — output tensor
//! and profile — to the serial one-shot result for the same request;
//! `bit_identical` lands in `BENCH_serve.json` per row and the process
//! aborts on any divergence. `--smoke` runs a deterministic small-scale
//! check (concurrency 4, preloaded queue so batching is exercised) for
//! CI.

use insum::apps::BoundApp;
use insum::{insum_with, InsumOptions, Mode, Profile, Tensor};
use insum_bench::{print_table, structured_spmm_setup, x};
use insum_serve::{CostBudget, ServeConfig, ServeEngine, ServeError, SubmitOptions};
use insum_tensor::DType;
use rand::rngs::SmallRng;
#[cfg(feature = "fault-injection")]
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// One serving workload: a fixed expression plus per-request tensor
/// bindings (shared static operands, per-request activations).
struct Workload {
    name: &'static str,
    expr: &'static str,
    options: InsumOptions,
    options_label: &'static str,
    requests: Vec<BTreeMap<String, Tensor>>,
}

fn fig7_requests(n_requests: usize) -> Workload {
    let (_, bgc, _) = structured_spmm_setup(1024, 256, 0.5, DType::F16, 77);
    let mut rng = SmallRng::seed_from_u64(770);
    let mut requests = Vec::with_capacity(n_requests);
    let mut expr = "";
    for _ in 0..n_requests {
        let b = insum_tensor::rand_uniform(vec![1024, 256], -1.0, 1.0, &mut rng).cast(DType::F16);
        let app: BoundApp = insum::apps::spmm_block_group(&bgc, &b);
        expr = app.expr;
        requests.push(app.tensors);
    }
    Workload {
        name: "spmm_block_group_fig7",
        expr,
        // The paper's deployment configuration (Table 3): autotuned
        // tiles. Without the engine every request pays the sweep.
        options: InsumOptions::autotuned(),
        options_label: "autotuned",
        requests,
    }
}

fn coo_requests(n_requests: usize) -> Workload {
    let mut rng = SmallRng::seed_from_u64(7);
    let dense = insum_workloads::blocksparse::block_sparse_dense(512, 512, 16, 16, 0.7, &mut rng);
    let coo = insum_formats::Coo::from_dense(&dense).expect("matrix");
    let mut requests = Vec::with_capacity(n_requests);
    let mut expr = "";
    for _ in 0..n_requests {
        let b = insum_tensor::rand_uniform(vec![512, 64], -1.0, 1.0, &mut rng);
        let app = insum::apps::spmm_coo(&coo, &b);
        expr = app.expr;
        requests.push(app.tensors);
    }
    Workload {
        name: "spmm_coo_scatter",
        expr,
        options: InsumOptions::default(),
        options_label: "default",
        requests,
    }
}

fn pointcloud_requests(n_requests: usize) -> Workload {
    let mut rng = SmallRng::seed_from_u64(11);
    let pts = insum_workloads::pointcloud::generate_points(
        &insum_workloads::pointcloud::rooms()[0],
        0.12,
        &mut rng,
    );
    let scene = insum_workloads::pointcloud::voxelize(&pts, 0.06);
    let km = insum_workloads::pointcloud::kernel_map(&scene, 3);
    let weight = insum_tensor::rand_normal(vec![27, 16, 16], &mut rng);
    let mut requests = Vec::with_capacity(n_requests);
    let mut expr = "";
    for _ in 0..n_requests {
        let input = insum_tensor::rand_normal(vec![scene.len(), 16], &mut rng);
        let app = insum::apps::sparse_conv(&km, &input, &weight);
        expr = app.expr;
        requests.push(app.tensors);
    }
    Workload {
        name: "pointcloud_conv",
        expr,
        options: InsumOptions::default(),
        options_label: "default",
        requests,
    }
}

fn smoke_requests(n_requests: usize) -> Workload {
    let (_, bgc, _) = structured_spmm_setup(128, 64, 0.8, DType::F16, 5);
    let mut rng = SmallRng::seed_from_u64(50);
    let mut requests = Vec::with_capacity(n_requests);
    let mut expr = "";
    for _ in 0..n_requests {
        let b = insum_tensor::rand_uniform(vec![128, 64], -1.0, 1.0, &mut rng).cast(DType::F16);
        let app = insum::apps::spmm_block_group(&bgc, &b);
        expr = app.expr;
        requests.push(app.tensors);
    }
    Workload {
        name: "spmm_smoke_128",
        expr,
        options: InsumOptions::default(),
        options_label: "default",
        requests,
    }
}

const FAIR_TENANTS: usize = 3;

struct FairnessResult {
    requests_per_fair_tenant: usize,
    greedy_requests: usize,
    probe_cost_units: u64,
    wall_solo: f64,
    wall_mixed_fair: f64,
    fair_completed_min: u64,
    fair_completed_max: u64,
    greedy_completed: u64,
    greedy_budget_rejected: u64,
}

/// Weighted-fair serving under a greedy flood: three fair tenants run
/// their workload alone (solo baseline), then again while one greedy
/// tenant floods 3x the work against a [`CostBudget`] sized at two
/// requests' deterministic cost. The budget must contain the flood —
/// in-budget wall time within 2x of solo, every fair tenant fully
/// served — or the phase aborts.
fn fairness_phase() -> FairnessResult {
    let per_fair = 12usize;
    let greedy_n = FAIR_TENANTS * per_fair;
    let w = smoke_requests(per_fair);

    // Probe the deterministic per-request cost to size the budget.
    let probe = ServeEngine::new(ServeConfig::default().with_options(w.options.clone()))
        .expect("engine starts");
    probe
        .session("probe")
        .submit(w.expr, &w.requests[0])
        .expect("admission succeeds")
        .wait()
        .expect("probe succeeds");
    let unit = probe.metrics().tenants["probe"].cost_units;
    assert!(unit > 0, "simulated launches must report nonzero cost");
    drop(probe);

    let engine_with = |budget: Option<CostBudget>| {
        let mut config = ServeConfig::default()
            .with_queue_capacity(256)
            .with_max_batch(8)
            .with_options(w.options.clone());
        if let Some(b) = budget {
            config = config.with_budget("greedy", b);
        }
        let engine = ServeEngine::new(config).expect("engine starts");
        engine
            .session("warmup")
            .submit(w.expr, &w.requests[0])
            .expect("admission succeeds")
            .wait()
            .expect("warmup succeeds");
        engine
    };
    let run_fair = |engine: &ServeEngine| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            let fair: Vec<_> = (0..FAIR_TENANTS)
                .map(|t| {
                    let session = engine.session(&format!("fair-{t}"));
                    let w = &w;
                    scope.spawn(move || {
                        let handles: Vec<_> = w
                            .requests
                            .iter()
                            .map(|r| session.submit(w.expr, r).expect("admission succeeds"))
                            .collect();
                        for h in handles {
                            h.wait().expect("fair request succeeds");
                        }
                    })
                })
                .collect();
            for f in fair {
                f.join().expect("fair client panicked");
            }
        });
        start.elapsed().as_secs_f64()
    };

    let solo = engine_with(None);
    let wall_solo = run_fair(&solo);
    drop(solo);

    let mixed = engine_with(Some(CostBudget {
        capacity: 2 * unit,
        refill_per_second: unit,
    }));
    let (wall_mixed_fair, (greedy_completed, greedy_budget_rejected)) =
        std::thread::scope(|scope| {
            let engine = &mixed;
            let w = &w;
            let greedy = scope.spawn(move || {
                let session = engine.session("greedy");
                let handles: Vec<_> = (0..greedy_n)
                    .map(|i| {
                        session
                            .submit(w.expr, &w.requests[i % w.requests.len()])
                            .expect("admission succeeds")
                    })
                    .collect();
                let mut ok = 0u64;
                let mut rejected = 0u64;
                for h in handles {
                    match h.wait() {
                        Ok(_) => ok += 1,
                        Err(ServeError::BudgetExhausted { .. }) => rejected += 1,
                        Err(e) => panic!("unexpected greedy outcome: {e:?}"),
                    }
                }
                (ok, rejected)
            });
            let wall = run_fair(&mixed);
            (wall, greedy.join().expect("greedy client panicked"))
        });

    let m = mixed.metrics();
    let completed: Vec<u64> = (0..FAIR_TENANTS)
        .map(|t| m.tenants[&format!("fair-{t}")].completed)
        .collect();
    let fair_completed_min = *completed.iter().min().expect("fair tenants present");
    let fair_completed_max = *completed.iter().max().expect("fair tenants present");
    assert_eq!(
        fair_completed_min, per_fair as u64,
        "every fair tenant must be fully served under the greedy flood"
    );
    assert!(
        fair_completed_max <= 2 * fair_completed_min,
        "per-tenant completion ratio must stay within 2x"
    );
    assert!(
        greedy_budget_rejected >= 1,
        "the flood must actually hit the budget"
    );
    assert!(greedy_completed >= 1, "in-budget greedy work still serves");
    assert!(
        wall_mixed_fair <= 2.0 * wall_solo,
        "fair tenants slowed {:.2}x by the greedy flood; budget must hold it under 2x",
        wall_mixed_fair / wall_solo
    );

    FairnessResult {
        requests_per_fair_tenant: per_fair,
        greedy_requests: greedy_n,
        probe_cost_units: unit,
        wall_solo,
        wall_mixed_fair,
        fair_completed_min,
        fair_completed_max,
        greedy_completed,
        greedy_budget_rejected,
    }
}

/// Chaos smoke: a seeded fault plan (compile/execute panics, latency,
/// budget spikes) over a randomized request mix with deadlines, cancels,
/// and retries. Asserts zero wedged handles, bit-identical survivors,
/// an allowed failure set, and reconciled books.
#[cfg(feature = "fault-injection")]
fn chaos_phase() {
    use insum_serve::faults::FaultPlan;
    use std::time::Duration;

    let n = 48usize;
    let w = smoke_requests(n);
    let expected: Vec<Tensor> = w
        .requests
        .iter()
        .map(|tensors| {
            insum_with(w.expr, tensors, &w.options)
                .expect("compilation succeeds")
                .run(tensors)
                .expect("execution succeeds")
                .0
        })
        .collect();

    insum_serve::faults::set_plan(Some(FaultPlan {
        seed: 0xc4a05,
        exec_panic_per_mille: 150,
        compile_panic_per_mille: 100,
        latency_per_mille: 100,
        latency: Duration::from_millis(1),
        budget_spike_per_mille: 50,
        budget_spike_units: 1_000,
    }));
    let engine = ServeEngine::new(
        ServeConfig::default()
            .with_queue_capacity(n)
            .with_max_batch(8)
            .with_options(w.options.clone())
            .with_retry_backoff(Duration::from_millis(1), Duration::from_millis(20))
            .with_breaker(5, Duration::from_millis(50)),
    )
    .expect("engine starts");
    let mut rng = SmallRng::seed_from_u64(0xfeed);
    let mut handles = Vec::with_capacity(n);
    for (i, tensors) in w.requests.iter().enumerate() {
        let deadline = match rng.gen_range(0..4) {
            0 => Some(Duration::ZERO),
            1 => Some(Duration::from_secs(60)),
            _ => None,
        };
        let mut opts = SubmitOptions::default()
            .with_max_retries(rng.gen_range(0..=3u32))
            .with_priority(rng.gen_range(-1..=1));
        if let Some(d) = deadline {
            opts = opts.with_deadline(d);
        }
        let handle = engine
            .session(&format!("tenant-{}", i % 4))
            .submit_with(w.expr, tensors, &opts)
            .expect("admission succeeds");
        let cancelled = rng.gen_range(0..8) == 0 && handle.cancel();
        handles.push((i, handle, deadline, cancelled));
    }

    // Wedge detection: every handle must resolve within the bound.
    let bound = Instant::now() + Duration::from_secs(60);
    let mut outcomes: Vec<Option<Result<insum_serve::Response, ServeError>>> =
        (0..n).map(|_| None).collect();
    while outcomes.iter().any(Option::is_none) {
        for (i, handle, _, _) in &handles {
            if outcomes[*i].is_none() {
                outcomes[*i] = handle.try_take();
            }
        }
        assert!(
            Instant::now() < bound,
            "wedged handles under chaos: {} of {n} never resolved",
            outcomes.iter().filter(|o| o.is_none()).count()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let (mut ok, mut failed, mut cancelled, mut expired, mut quarantined) = (0, 0, 0, 0, 0);
    for (i, _, deadline, cancelled_by_us) in &handles {
        match outcomes[*i].take().expect("resolved above") {
            Ok(response) => {
                assert!(!cancelled_by_us, "a won cancel cannot also deliver");
                assert_eq!(
                    response.output.data(),
                    expected[*i].data(),
                    "chaos survivor diverged from its serial oracle"
                );
                ok += 1;
            }
            Err(ServeError::Cancelled) => {
                assert!(cancelled_by_us, "only explicit cancels may cancel");
                cancelled += 1;
            }
            Err(ServeError::DeadlineExceeded { .. }) => {
                assert!(deadline.is_some(), "expiry needs a deadline");
                expired += 1;
            }
            Err(ServeError::Engine(_)) => failed += 1,
            Err(ServeError::Quarantined { .. }) => quarantined += 1,
            Err(other) => panic!("forbidden failure under chaos: {other:?}"),
        }
    }
    assert!(ok > 0, "chaos must not starve every request");

    let m = engine.metrics();
    assert_eq!(m.queue_depth, 0);
    assert_eq!(
        m.submitted,
        m.completed
            + m.failed
            + m.cancelled
            + m.deadline_expired
            + m.budget_rejected
            + m.quarantined,
        "chaos books must reconcile: {m:?}"
    );
    insum_serve::faults::set_plan(None);
    println!(
        "chaos ok: {n} requests — {ok} completed ({} retries), {failed} failed, \
         {cancelled} cancelled, {expired} expired, {quarantined} quarantined; \
         zero wedged handles, survivors bit-identical, books reconcile",
        m.retries
    );
}

#[cfg(not(feature = "fault-injection"))]
fn chaos_phase() {
    eprintln!(
        "servebench --chaos needs the fault-injection feature: \
         cargo run -p insum_bench --features fault-injection --bin servebench -- --chaos"
    );
    std::process::exit(2);
}

struct RestartResult {
    requests: usize,
    snapshot_bytes: u64,
    snapshot_writes: u64,
    cold_first_response_seconds: f64,
    cold_wall_seconds: f64,
    cold_programs_compiled: u64,
    warm_first_response_seconds: f64,
    warm_wall_seconds: f64,
    warm_programs_compiled: u64,
    warm_start_hits: u64,
    snapshot_rejected: u64,
}

/// Boot an engine on `config` and serve the whole workload serially,
/// returning (time-to-first-response, total wall, per-request output
/// bits, engine). The clock starts before the engine boots, so the first
/// figure includes snapshot loading and the first request's compile.
fn restart_boot(w: &Workload, config: &ServeConfig) -> (f64, f64, Vec<Vec<u32>>, ServeEngine) {
    let start = Instant::now();
    let engine = ServeEngine::new(config.clone()).expect("engine starts");
    let session = engine.session("restart");
    let mut first = None;
    let outputs = w
        .requests
        .iter()
        .map(|tensors| {
            let response = session
                .submit(w.expr, tensors)
                .expect("admission succeeds")
                .wait()
                .expect("request succeeds");
            first.get_or_insert_with(|| start.elapsed().as_secs_f64());
            response.output.data().iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    (
        first.expect("workload is nonempty"),
        start.elapsed().as_secs_f64(),
        outputs,
        engine,
    )
}

/// Crash-safe persistence: a cold fig7 engine compiles, serves, and
/// persists through [`ServeConfig::with_snapshot`]; a rebooted engine
/// (process-wide caches cleared, as a fresh process would see) must
/// warm-start from the file — zero programs lowered, bit-identical
/// responses, `warm_start_hits` counting the seeded serves — or the
/// phase aborts.
fn restart_phase() -> RestartResult {
    let w = fig7_requests(8);
    let dir = std::env::temp_dir().join(format!("insum_servebench_restart_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("serve.snap");
    let _ = std::fs::remove_file(&path);
    let config = ServeConfig::default()
        .with_queue_capacity(w.requests.len().max(16))
        .with_options(w.options.clone())
        .with_snapshot(&path);
    let cache = insum::ProgramCache::global();

    cache.clear();
    insum_inductor::AutotuneCache::global().clear();
    let (cold_first, cold_wall, cold_outputs, mut cold_engine) = restart_boot(&w, &config);
    let cold_programs_compiled = cache.stats().compiles;
    assert!(cold_programs_compiled > 0, "cold boot must lower programs");
    cold_engine.shutdown();
    let snapshot_writes = cold_engine.metrics().snapshot_writes;
    assert!(snapshot_writes >= 1, "shutdown must persist a snapshot");
    let snapshot_bytes = std::fs::metadata(&path).expect("snapshot written").len();
    drop(cold_engine);

    cache.clear();
    insum_inductor::AutotuneCache::global().clear();
    let (warm_first, warm_wall, warm_outputs, mut warm_engine) = restart_boot(&w, &config);
    let warm_programs_compiled = cache.stats().compiles;
    let m = warm_engine.metrics();
    assert_eq!(
        warm_programs_compiled, 0,
        "warm restart must serve with zero programs lowered"
    );
    assert_eq!(
        warm_outputs, cold_outputs,
        "warm restart must serve bit-identical responses"
    );
    assert!(
        m.warm_start_hits > 0,
        "seeded programs must serve the replay"
    );
    assert_eq!(m.snapshot_rejected, 0, "pristine snapshot, no rejections");
    warm_engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    RestartResult {
        requests: w.requests.len(),
        snapshot_bytes,
        snapshot_writes,
        cold_first_response_seconds: cold_first,
        cold_wall_seconds: cold_wall,
        cold_programs_compiled,
        warm_first_response_seconds: warm_first,
        warm_wall_seconds: warm_wall,
        warm_programs_compiled,
        warm_start_hits: m.warm_start_hits,
        snapshot_rejected: m.snapshot_rejected,
    }
}

/// Serial one-shot baseline: compile + run per request, returning the
/// expected response bits for the bit-identity checks.
fn serial_oneshot(w: &Workload) -> (f64, Vec<(Tensor, Profile)>) {
    let start = Instant::now();
    let results: Vec<(Tensor, Profile)> = w
        .requests
        .iter()
        .map(|tensors| {
            insum_with(w.expr, tensors, &w.options)
                .expect("compilation succeeds")
                .run(tensors)
                .expect("execution succeeds")
        })
        .collect();
    (start.elapsed().as_secs_f64(), results)
}

/// Mean wall-clock of `Session::submit` itself — admission plus
/// argument capture — measured against a warm, paused engine,
/// nanoseconds per request. With Arc-backed copy-on-write tensors the
/// submit-time `tensors.clone()` is O(params) pointer bumps; this row
/// records the elimination of the former per-submit deep copies.
fn submit_overhead_ns(w: &Workload) -> f64 {
    let engine = ServeEngine::new(
        ServeConfig::default()
            .with_queue_capacity(w.requests.len().max(16))
            .with_options(w.options.clone()),
    )
    .expect("engine starts");
    engine
        .session("warmup")
        .submit(w.expr, &w.requests[0])
        .expect("admission succeeds")
        .wait()
        .expect("warmup succeeds");
    engine.pause();
    let session = engine.session("overhead");
    let start = Instant::now();
    let handles: Vec<_> = w
        .requests
        .iter()
        .map(|tensors| session.submit(w.expr, tensors).expect("admission succeeds"))
        .collect();
    let per_submit = start.elapsed().as_nanos() as f64 / w.requests.len() as f64;
    engine.resume();
    for handle in handles {
        handle.wait().expect("request succeeds");
    }
    per_submit
}

/// Serial precompiled baseline: compile once, run back-to-back.
fn serial_precompiled(w: &Workload) -> f64 {
    let op = insum_with(w.expr, &w.requests[0], &w.options).expect("compilation succeeds");
    let start = Instant::now();
    for tensors in &w.requests {
        op.run(tensors).expect("execution succeeds");
    }
    start.elapsed().as_secs_f64()
}

/// p50/p95/p99/max of one latency histogram, in seconds.
#[derive(Clone, Copy)]
struct Quantiles {
    p50: f64,
    p95: f64,
    p99: f64,
    max: f64,
}

impl Quantiles {
    fn of(h: &insum_serve::Histogram) -> Quantiles {
        Quantiles {
            p50: h.quantile_seconds(0.50),
            p95: h.quantile_seconds(0.95),
            p99: h.quantile_seconds(0.99),
            max: h.max_seconds(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"p50\": {:.6}, \"p95\": {:.6}, \"p99\": {:.6}, \"max\": {:.6}}}",
            self.p50, self.p95, self.p99, self.max
        )
    }
}

struct EngineRow {
    concurrency: usize,
    wall_seconds: f64,
    cold_start_seconds: f64,
    batches: u64,
    largest_batch: usize,
    registry_hits: u64,
    registry_misses: u64,
    wait_mean_seconds: f64,
    wait_max_seconds: f64,
    queue_wait: Quantiles,
    e2e: Quantiles,
    compile: Quantiles,
    bit_identical: bool,
}

/// Drive one engine at the given client concurrency and verify every
/// response against the serial one-shot bits.
fn engine_run(
    w: &Workload,
    concurrency: usize,
    expected: &[(Tensor, Profile)],
    preload: bool,
) -> EngineRow {
    let engine = ServeEngine::new(
        ServeConfig::default()
            .with_queue_capacity(16.max(if preload { w.requests.len() } else { 16 }))
            .with_max_batch(8)
            .with_options(w.options.clone()),
    )
    .expect("engine starts");

    // Warm the registry (and the process-wide ProgramCache) with one
    // request outside the measurement: steady-state serving is the
    // regime of interest, the cold start is reported on its own.
    let cold = Instant::now();
    engine
        .session("warmup")
        .submit(w.expr, &w.requests[0])
        .expect("admission succeeds")
        .wait()
        .expect("warmup succeeds");
    let cold_start_seconds = cold.elapsed().as_secs_f64();

    if preload {
        engine.pause();
    }
    // Preload mode: a barrier guarantees every submission is queued
    // before the scheduler resumes, so batch formation is deterministic
    // (the live mode intentionally races clients against the scheduler).
    let submitted = preload.then(|| std::sync::Barrier::new(concurrency + 1));
    let start = Instant::now();
    let responses: Vec<(usize, insum_serve::Response)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..concurrency)
            .map(|c| {
                let session = engine.session(&format!("tenant-{c}"));
                let w = &w;
                let submitted = &submitted;
                scope.spawn(move || {
                    let handles: Vec<_> = (0..w.requests.len())
                        .skip(c)
                        .step_by(concurrency)
                        .map(|i| {
                            (
                                i,
                                session
                                    .submit(w.expr, &w.requests[i])
                                    .expect("admission succeeds"),
                            )
                        })
                        .collect();
                    if let Some(barrier) = submitted {
                        barrier.wait();
                    }
                    handles
                        .into_iter()
                        .map(|(i, h)| (i, h.wait().expect("request succeeds")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        if let Some(barrier) = &submitted {
            barrier.wait();
            engine.resume();
        }
        workers
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut bit_identical = true;
    let mut wait_sum = 0.0;
    let mut wait_max = 0.0f64;
    for (i, response) in &responses {
        let (want_out, want_profile) = &expected[*i];
        if response.output.data() != want_out.data() || &response.profile != want_profile {
            bit_identical = false;
        }
        wait_sum += response.queue_seconds;
        wait_max = wait_max.max(response.queue_seconds);
    }
    assert!(
        bit_identical,
        "{} @{}: engine responses diverge from serial one-shot execution",
        w.name, concurrency
    );
    assert_eq!(responses.len(), w.requests.len());

    let m = engine.metrics();
    EngineRow {
        concurrency,
        wall_seconds,
        cold_start_seconds,
        batches: m.batches,
        largest_batch: m.largest_batch,
        registry_hits: m.registry.hits,
        registry_misses: m.registry.misses,
        wait_mean_seconds: wait_sum / responses.len() as f64,
        wait_max_seconds: wait_max,
        queue_wait: Quantiles::of(&m.queue_wait()),
        e2e: Quantiles::of(&m.e2e()),
        compile: Quantiles::of(&m.compile()),
        bit_identical,
    }
}

struct WorkloadResult {
    name: &'static str,
    options_label: &'static str,
    requests: usize,
    wall_serial_oneshot: f64,
    wall_serial_precompiled: f64,
    submit_overhead_ns_mean: f64,
    rows: Vec<EngineRow>,
}

fn run_workload(w: &Workload, concurrencies: &[usize], preload: bool) -> WorkloadResult {
    let (wall_serial_oneshot, expected) = serial_oneshot(w);
    let wall_serial_precompiled = serial_precompiled(w);
    let submit_overhead_ns_mean = submit_overhead_ns(w);
    let rows = concurrencies
        .iter()
        .map(|&c| engine_run(w, c, &expected, preload))
        .collect();
    WorkloadResult {
        name: w.name,
        options_label: w.options_label,
        requests: w.requests.len(),
        wall_serial_oneshot,
        wall_serial_precompiled,
        submit_overhead_ns_mean,
        rows,
    }
}

struct TelemetryResult {
    disabled_wall_seconds: f64,
    enabled_wall_seconds: f64,
    overhead: f64,
}

/// Telemetry smoke: serving with tracing + histograms enabled must
/// change no bits, stay within a 5% overhead envelope of the disabled
/// configuration (min-of-3 walls plus an absolute slack so a sub-ms
/// workload can't fail on scheduler jitter), and the cadence dump must
/// parse back and reconcile with the in-memory counters.
fn telemetry_phase(w: &Workload, expected: &[(Tensor, Profile)]) -> TelemetryResult {
    let serve_all = |telemetry: bool| -> (f64, Vec<Vec<u32>>) {
        let engine = ServeEngine::new(
            ServeConfig::default()
                .with_queue_capacity(w.requests.len().max(16))
                .with_max_batch(8)
                .with_options(w.options.clone())
                .with_telemetry(telemetry),
        )
        .expect("engine starts");
        engine
            .session("warmup")
            .submit(w.expr, &w.requests[0])
            .expect("admission succeeds")
            .wait()
            .expect("warmup succeeds");
        engine.pause();
        let session = engine.session("telemetry");
        let handles: Vec<_> = w
            .requests
            .iter()
            .map(|t| session.submit(w.expr, t).expect("admission succeeds"))
            .collect();
        let start = Instant::now();
        engine.resume();
        let outputs: Vec<Vec<u32>> = handles
            .into_iter()
            .map(|h| {
                let r = h.wait().expect("request succeeds");
                assert_eq!(
                    r.trace.is_some(),
                    telemetry,
                    "spans ride responses exactly when telemetry is on"
                );
                r.output.data().iter().map(|v| v.to_bits()).collect()
            })
            .collect();
        (start.elapsed().as_secs_f64(), outputs)
    };

    // Min-of-3 per mode: the minimum is the least noisy wall estimator
    // on a shared CI host.
    let mut disabled = f64::INFINITY;
    let mut enabled = f64::INFINITY;
    let mut disabled_bits = None;
    let mut enabled_bits = None;
    for _ in 0..3 {
        let (woff, boff) = serve_all(false);
        disabled = disabled.min(woff);
        disabled_bits.get_or_insert(boff);
        let (won, bon) = serve_all(true);
        enabled = enabled.min(won);
        enabled_bits.get_or_insert(bon);
    }
    let expected_bits: Vec<Vec<u32>> = expected
        .iter()
        .map(|(t, _)| t.data().iter().map(|v| v.to_bits()).collect())
        .collect();
    assert_eq!(
        enabled_bits.as_ref().unwrap(),
        &expected_bits,
        "telemetry-enabled serving must change no bits"
    );
    assert_eq!(disabled_bits.as_ref().unwrap(), &expected_bits);
    let overhead = (enabled - disabled) / disabled;
    assert!(
        enabled <= disabled * 1.05 + 0.05,
        "telemetry overhead gate: enabled {enabled:.4}s vs disabled {disabled:.4}s \
         ({:.1}% > 5% + slack)",
        overhead * 100.0
    );

    // Dump parse-back: the final dump the scheduler writes at shutdown
    // must reconcile with the in-memory snapshot.
    let dir =
        std::env::temp_dir().join(format!("insum_servebench_telemetry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("metrics.prom");
    let mut engine = ServeEngine::new(
        ServeConfig::default()
            .with_queue_capacity(w.requests.len().max(16))
            .with_options(w.options.clone())
            .with_telemetry_dump(&path),
    )
    .expect("engine starts");
    let session = engine.session("dumper");
    for tensors in &w.requests {
        session
            .submit(w.expr, tensors)
            .expect("admission succeeds")
            .wait()
            .expect("request succeeds");
    }
    let m = engine.metrics();
    println!("{m}"); // the snapshot's own Display: the operator view
    engine.shutdown();

    let prom = std::fs::read_to_string(&path).expect("Prometheus dump written");
    let samples = insum_telemetry::expo::parse_prometheus(&prom);
    assert_eq!(samples["serve_completed_total"], m.completed as f64);
    assert_eq!(samples["serve_submitted_total"], m.submitted as f64);
    assert_eq!(
        samples["serve_queue_wait_seconds_count{tenant=\"dumper\"}"],
        m.tenants["dumper"].queue_wait.count() as f64,
        "dumped queue-wait histogram reconciles with the in-memory one"
    );
    let json_text =
        std::fs::read_to_string(path.with_extension("json")).expect("JSON dump written");
    let json = insum_telemetry::json::parse(&json_text).expect("dump is valid JSON");
    assert_eq!(
        json.get("completed").and_then(|v| v.as_f64()),
        Some(m.completed as f64)
    );
    assert_eq!(
        json.get("tenants")
            .and_then(|t| t.get("dumper"))
            .and_then(|t| t.get("queue_wait"))
            .and_then(|h| h.get("count"))
            .and_then(|v| v.as_f64()),
        Some(m.tenants["dumper"].queue_wait.count() as f64)
    );
    std::fs::remove_dir_all(&dir).ok();

    TelemetryResult {
        disabled_wall_seconds: disabled,
        enabled_wall_seconds: enabled,
        overhead,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chaos = std::env::args().any(|a| a == "--chaos");
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if chaos {
        // CI lifecycle smoke: the chaos harness plus the fairness gate.
        chaos_phase();
        let f = fairness_phase();
        println!(
            "fairness ok: {} fair tenants x {} requests vs greedy flood of {} — \
             solo {:.3}s, mixed {:.3}s ({:.2}x), greedy {} served / {} budget-rejected",
            FAIR_TENANTS,
            f.requests_per_fair_tenant,
            f.greedy_requests,
            f.wall_solo,
            f.wall_mixed_fair,
            f.wall_mixed_fair / f.wall_solo,
            f.greedy_completed,
            f.greedy_budget_rejected,
        );
        return;
    }

    if smoke {
        // Deterministic small-scale check for CI: preload the queue so
        // the batching path is exercised regardless of host speed.
        let w = smoke_requests(8);
        let result = run_workload(&w, &[4], true);
        let row = &result.rows[0];
        assert!(row.bit_identical);
        assert_eq!(row.registry_misses, 1, "only the warmup compiles");
        assert_eq!(row.registry_hits as usize, w.requests.len());
        assert!(
            row.largest_batch > 1,
            "preloaded queue must form multi-request batches"
        );
        // Clone accounting: shared-argument requests on a warm engine
        // must perform no deep tensor copies beyond the outputs the
        // kernel actually writes. `Tensor::deep_copy_count` counts only
        // real buffer materializations, so these asserts pin the
        // submit-time and bind-time clone elimination.
        let engine = ServeEngine::new(
            ServeConfig::default()
                .with_queue_capacity(32)
                .with_max_batch(8)
                .with_options(w.options.clone()),
        )
        .expect("engine starts");
        let shared_req = &w.requests[0];
        let warm = engine
            .session("warm")
            .submit(w.expr, shared_req)
            .expect("admission succeeds")
            .wait()
            .expect("warmup succeeds");
        let fanout = 6usize;

        // Analytic fan-out: nothing is written, so the whole path —
        // submit, scheduling, bind, launch, response — is zero-copy.
        engine.pause();
        let before = Tensor::deep_copy_count();
        let handles: Vec<_> = (0..fanout)
            .map(|i| {
                engine
                    .session(&format!("analytic-{i}"))
                    .submit_with(
                        w.expr,
                        shared_req,
                        &SubmitOptions::default().with_mode(Mode::Analytic),
                    )
                    .expect("admission succeeds")
            })
            .collect();
        engine.resume();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().expect("request succeeds"))
            .collect();
        let analytic_copies = Tensor::deep_copy_count() - before;
        assert!(
            responses.iter().all(|r| r.batch_size == fanout),
            "shared-argument fan-out must form one batch"
        );
        assert_eq!(
            analytic_copies, 0,
            "warm batched analytic launch of shared-argument requests \
             must perform zero deep tensor copies"
        );

        // Execute fan-out: exactly one materialization per request — the
        // written output — and nothing else.
        engine.pause();
        let before = Tensor::deep_copy_count();
        let handles: Vec<_> = (0..fanout)
            .map(|i| {
                engine
                    .session(&format!("execute-{i}"))
                    .submit(w.expr, shared_req)
                    .expect("admission succeeds")
            })
            .collect();
        engine.resume();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().expect("request succeeds"))
            .collect();
        let execute_copies = Tensor::deep_copy_count() - before;
        assert_eq!(
            execute_copies, fanout as u64,
            "warm batched execute launch must materialize exactly each \
             request's written output"
        );
        for r in &responses {
            assert_eq!(
                r.output.data(),
                warm.output.data(),
                "shared-argument responses stay bit-identical"
            );
        }

        // Chain compile-once smoke: a 4-operand contraction chain
        // submitted twice must compile (and lower) each pairwise step
        // exactly once — the second submission is a registry hit and
        // every step's launch hits the process-wide ProgramCache.
        // servebench runs serially, so exact global-cache deltas are
        // race-free here.
        let chain_expr = "O[i,m] = A[i,j] * B[j,k] * C[k,l] * D[l,m]";
        let mut rng = SmallRng::seed_from_u64(99);
        let mut int = |shape: Vec<usize>| {
            insum_tensor::rand_uniform(shape, -2.49, 2.49, &mut rng).map(f32::round)
        };
        let chain_tensors: BTreeMap<String, Tensor> = [
            ("A".to_string(), int(vec![64, 64])),
            ("B".to_string(), int(vec![64, 4])),
            ("C".to_string(), int(vec![4, 64])),
            ("D".to_string(), int(vec![64, 64])),
        ]
        .into_iter()
        .collect();
        // Dense pairwise steps classify onto the pattern fast path and
        // lower no programs at all; force the general lowering so this
        // smoke keeps exercising the per-step ProgramCache contract.
        let opts = InsumOptions {
            fast_path: false,
            ..InsumOptions::default()
        };
        let local_plan = insum::plan(chain_expr, &chain_tensors, &opts).expect("chain plans");
        let device_steps = local_plan.device_step_count() as u64;
        let reference = insum::chain_reference(chain_expr, &chain_tensors).expect("reference");

        // And the fast-path counterpart: with default options the same
        // chain's matmul steps all dispatch to microkernels — zero
        // programs lowered, bit-identical output.
        let cache = insum::ProgramCache::global();
        let fast_before = cache.stats().misses;
        let fast_plan = insum::plan(chain_expr, &chain_tensors, &InsumOptions::default())
            .expect("fast chain plans");
        assert_eq!(
            fast_plan.program_step_count(),
            0,
            "dense pairwise chain steps must classify onto the fast path"
        );
        assert_eq!(
            cache.stats().misses,
            fast_before,
            "fast-path chain steps must lower no programs"
        );
        let (fast_out, _) = fast_plan.run(&chain_tensors).expect("fast chain runs");
        assert_eq!(
            fast_out.data(),
            reference.data(),
            "fast-path chain output must match the naive reference bit-for-bit"
        );

        let chain_engine = ServeEngine::new(ServeConfig::default().with_options(opts.clone()))
            .expect("engine starts");
        let session = chain_engine.session("chain");
        let before = cache.stats();
        let first = session
            .submit(chain_expr, &chain_tensors)
            .expect("admission succeeds")
            .wait()
            .expect("first chain request succeeds");
        let mid = cache.stats();
        assert_eq!(
            mid.misses - before.misses,
            device_steps,
            "first chain run must lower exactly one program per device step"
        );
        let second = session
            .submit(chain_expr, &chain_tensors)
            .expect("admission succeeds")
            .wait()
            .expect("second chain request succeeds");
        let after = cache.stats();
        assert_eq!(
            after.misses, mid.misses,
            "second identical chain request must re-lower nothing"
        );
        assert!(
            after.hits >= mid.hits + device_steps,
            "every device step of the second chain request must hit the ProgramCache"
        );
        assert!(!first.registry_hit, "first chain request compiles the plan");
        assert!(
            second.registry_hit,
            "second chain request must reuse the registry's plan artifact"
        );
        for r in [&first, &second] {
            assert_eq!(
                r.output.data(),
                reference.data(),
                "served chain output must match the naive reference bit-for-bit"
            );
        }
        let cm = chain_engine.metrics();
        assert_eq!((cm.registry.misses, cm.registry.hits), (1, 1));
        drop(chain_engine);

        // Snapshot/restore smoke: a cold engine persists its programs,
        // a corrupted snapshot degrades to recompile (counted, bits
        // unchanged), and the restored pristine file warm-starts with
        // zero lowerings. servebench is serial, so clearing the
        // process-wide caches between boots is race-free.
        let snap_dir =
            std::env::temp_dir().join(format!("insum_servebench_smoke_{}", std::process::id()));
        std::fs::create_dir_all(&snap_dir).expect("temp dir");
        let snap_path = snap_dir.join("smoke.snap");
        let _ = std::fs::remove_file(&snap_path);
        let snap_config = ServeConfig::default()
            .with_options(w.options.clone())
            .with_snapshot(&snap_path);

        cache.clear();
        insum_inductor::AutotuneCache::global().clear();
        let (_, _, cold_outputs, mut snap_engine) = restart_boot(&w, &snap_config);
        snap_engine.shutdown();
        assert!(snap_engine.metrics().snapshot_writes >= 1);
        drop(snap_engine);
        let pristine = std::fs::read(&snap_path).expect("snapshot written");

        let mut damaged = pristine.clone();
        damaged[pristine.len() / 2] ^= 0xff;
        std::fs::write(&snap_path, &damaged).expect("write damaged snapshot");
        cache.clear();
        insum_inductor::AutotuneCache::global().clear();
        let (_, _, corrupt_outputs, mut snap_engine) = restart_boot(&w, &snap_config);
        let snapshot_rejected = snap_engine.metrics().snapshot_rejected;
        assert!(
            snapshot_rejected >= 1,
            "corruption must be detected and counted"
        );
        assert_eq!(
            corrupt_outputs, cold_outputs,
            "a corrupted snapshot must degrade to recompile, never wrong bits"
        );
        snap_engine.shutdown();
        drop(snap_engine);

        std::fs::write(&snap_path, &pristine).expect("restore pristine snapshot");
        cache.clear();
        insum_inductor::AutotuneCache::global().clear();
        let (_, _, warm_outputs, mut snap_engine) = restart_boot(&w, &snap_config);
        assert_eq!(
            cache.stats().compiles,
            0,
            "restored snapshot must warm-start with zero programs lowered"
        );
        assert_eq!(warm_outputs, cold_outputs);
        let warm_start_hits = snap_engine.metrics().warm_start_hits;
        assert!(warm_start_hits > 0);
        snap_engine.shutdown();
        drop(snap_engine);
        std::fs::remove_dir_all(&snap_dir).ok();

        // Telemetry smoke: no bit changes, bounded overhead, dump
        // parse-back reconciliation.
        let (_, expected) = serial_oneshot(&w);
        let telem = telemetry_phase(&w, &expected);

        println!(
            "servebench smoke ok: {} requests, concurrency 4, largest batch {}, \
             {:.1} req/s (serial one-shot {:.1} req/s), bit_identical; \
             clone accounting: analytic fan-out {analytic_copies} deep copies, \
             execute fan-out {execute_copies} (outputs only); \
             chain smoke: {device_steps} device steps compiled once across two submissions; \
             snapshot smoke: corrupt rejected ({snapshot_rejected}), restored file \
             warm-started ({warm_start_hits} warm hits, 0 lowered); \
             telemetry smoke: enabled {:.4}s vs disabled {:.4}s ({:+.1}% overhead, \
             gate 5%), bits unchanged, dump parsed back and reconciled",
            w.requests.len(),
            row.largest_batch,
            w.requests.len() as f64 / row.wall_seconds,
            w.requests.len() as f64 / result.wall_serial_oneshot,
            telem.enabled_wall_seconds,
            telem.disabled_wall_seconds,
            telem.overhead * 100.0,
        );
        return;
    }

    let concurrencies = [1usize, 4, 8, 16];
    let workloads = [fig7_requests(24), coo_requests(24), pointcloud_requests(8)];
    let results: Vec<WorkloadResult> = workloads
        .iter()
        .map(|w| run_workload(w, &concurrencies, false))
        .collect();
    let fairness = fairness_phase();
    let restart = restart_phase();

    let table: Vec<Vec<String>> = results
        .iter()
        .flat_map(|r| {
            r.rows.iter().map(move |row| {
                vec![
                    r.name.to_string(),
                    row.concurrency.to_string(),
                    r.requests.to_string(),
                    format!("{:.1}", r.requests as f64 / r.wall_serial_oneshot),
                    format!("{:.1}", r.requests as f64 / row.wall_seconds),
                    x(r.wall_serial_oneshot / row.wall_seconds),
                    x(r.wall_serial_precompiled / row.wall_seconds),
                    format!("{}/{}", row.batches, row.largest_batch),
                    format!("{:.1}", row.wait_mean_seconds * 1e3),
                    format!("{:.1}", row.e2e.p99 * 1e3),
                    row.bit_identical.to_string(),
                ]
            })
        })
        .collect();
    print_table(
        &format!("serving throughput (host threads: {max_threads})"),
        &[
            "workload",
            "conc",
            "reqs",
            "serial r/s",
            "engine r/s",
            "vs oneshot",
            "vs precomp",
            "batches/max",
            "wait ms",
            "e2e p99 ms",
            "bit_id",
        ],
        &table,
    );

    // Acceptance gate: fig7 SpMM at concurrency 8 must serve at least
    // 3x the one-shot request throughput, bit-identically.
    let fig7 = &results[0];
    let row8 = fig7
        .rows
        .iter()
        .find(|r| r.concurrency == 8)
        .expect("concurrency-8 row present");
    let speedup = fig7.wall_serial_oneshot / row8.wall_seconds;
    assert!(
        row8.bit_identical && speedup >= 3.0,
        "fig7 SpMM at concurrency 8: need >= 3x one-shot throughput \
         bit-identically, got {speedup:.2}x"
    );
    println!(
        "\nheadline: fig7 SpMM at concurrency 8 serves {speedup:.2}x the one-shot \
         request throughput (bit-identical)"
    );
    println!(
        "fairness: greedy flood held to {:.2}x fair-tenant slowdown \
         ({} greedy served, {} budget-rejected)",
        fairness.wall_mixed_fair / fairness.wall_solo,
        fairness.greedy_completed,
        fairness.greedy_budget_rejected,
    );
    println!(
        "restart: warm boot served first response in {:.3}s vs {:.3}s cold \
         ({} programs lowered warm vs {} cold, {} warm-start hits, \
         snapshot {} bytes)",
        restart.warm_first_response_seconds,
        restart.cold_first_response_seconds,
        restart.warm_programs_compiled,
        restart.cold_programs_compiled,
        restart.warm_start_hits,
        restart.snapshot_bytes,
    );

    // Machine-readable trajectory record.
    let mut json = String::from("{\n");
    json.push_str("  \"benchmark\": \"servebench\",\n");
    json.push_str("  \"device_model\": \"rtx3090-sim\",\n");
    json.push_str(&format!("  \"host_threads_max\": {max_threads},\n"));
    json.push_str(&format!(
        "  \"fairness\": {{\"fair_tenants\": {}, \"requests_per_fair_tenant\": {}, \
         \"greedy_requests\": {}, \"probe_cost_units\": {}, \
         \"wall_seconds_fair_solo\": {:.6}, \"wall_seconds_fair_mixed\": {:.6}, \
         \"fair_slowdown_under_flood\": {:.3}, \"fair_completed_min\": {}, \
         \"fair_completed_max\": {}, \"greedy_completed\": {}, \
         \"greedy_budget_rejected\": {}}},\n",
        FAIR_TENANTS,
        fairness.requests_per_fair_tenant,
        fairness.greedy_requests,
        fairness.probe_cost_units,
        fairness.wall_solo,
        fairness.wall_mixed_fair,
        fairness.wall_mixed_fair / fairness.wall_solo,
        fairness.fair_completed_min,
        fairness.fair_completed_max,
        fairness.greedy_completed,
        fairness.greedy_budget_rejected,
    ));
    json.push_str(&format!(
        "  \"restart\": {{\"workload\": \"spmm_block_group_fig7\", \"requests\": {}, \
         \"snapshot_bytes\": {}, \"snapshot_writes\": {}, \
         \"cold_first_response_seconds\": {:.6}, \"cold_wall_seconds\": {:.6}, \
         \"cold_programs_compiled\": {}, \
         \"warm_first_response_seconds\": {:.6}, \"warm_wall_seconds\": {:.6}, \
         \"warm_programs_compiled\": {}, \"warm_start_hits\": {}, \
         \"snapshot_rejected\": {}}},\n",
        restart.requests,
        restart.snapshot_bytes,
        restart.snapshot_writes,
        restart.cold_first_response_seconds,
        restart.cold_wall_seconds,
        restart.cold_programs_compiled,
        restart.warm_first_response_seconds,
        restart.warm_wall_seconds,
        restart.warm_programs_compiled,
        restart.warm_start_hits,
        restart.snapshot_rejected,
    ));
    json.push_str("  \"workloads\": [\n");
    for (wi, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"requests\": {}, \"options\": \"{}\",\n",
            r.name, r.requests, r.options_label
        ));
        json.push_str(&format!(
            "     \"wall_seconds_serial_oneshot\": {:.6}, \
             \"wall_seconds_serial_precompiled\": {:.6}, \
             \"submit_overhead_ns_mean\": {:.1},\n",
            r.wall_serial_oneshot, r.wall_serial_precompiled, r.submit_overhead_ns_mean
        ));
        json.push_str("     \"rows\": [\n");
        for (i, row) in r.rows.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"concurrency\": {}, \"wall_seconds_engine\": {:.6}, \
                 \"requests_per_sec_engine\": {:.2}, \"requests_per_sec_serial\": {:.2}, \
                 \"throughput_vs_serial\": {:.3}, \"throughput_vs_precompiled\": {:.3}, \
                 \"cold_start_seconds\": {:.6}, \"batches\": {}, \"largest_batch\": {}, \
                 \"registry_hits\": {}, \"registry_misses\": {}, \
                 \"queue_wait_mean_seconds\": {:.6}, \"queue_wait_max_seconds\": {:.6}, \
                 \"queue_wait_seconds\": {}, \"e2e_seconds\": {}, \
                 \"compile_seconds\": {}, \
                 \"bit_identical\": {}}}{}\n",
                row.concurrency,
                row.wall_seconds,
                r.requests as f64 / row.wall_seconds,
                r.requests as f64 / r.wall_serial_oneshot,
                r.wall_serial_oneshot / row.wall_seconds,
                r.wall_serial_precompiled / row.wall_seconds,
                row.cold_start_seconds,
                row.batches,
                row.largest_batch,
                row.registry_hits,
                row.registry_misses,
                row.wait_mean_seconds,
                row.wait_max_seconds,
                row.queue_wait.json(),
                row.e2e.json(),
                row.compile.json(),
                row.bit_identical,
                if i + 1 < r.rows.len() { "," } else { "" },
            ));
        }
        json.push_str("     ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
