//! Synthetic indoor point clouds, voxelization, and kernel maps for
//! sparse convolution (paper §6.4, Fig. 12).
//!
//! The paper uses seven S3DIS Area-6 rooms. Each synthetic room is a box
//! whose floor, ceiling and walls are sampled on a grid, plus a number of
//! furniture boxes; surface sampling reproduces the thin-shell occupancy
//! profile of real indoor scans, which is what determines voxel counts
//! and kernel-map offset occupancy.

use insum_tensor::Tensor;
use rand::Rng;
use std::collections::HashMap;

/// Description of one synthetic room (dimensions in meters).
#[derive(Debug, Clone, PartialEq)]
pub struct RoomSpec {
    /// Scene name as it appears in paper Fig. 12.
    pub name: &'static str,
    /// Room width (m).
    pub w: f64,
    /// Room depth (m).
    pub d: f64,
    /// Room height (m).
    pub h: f64,
    /// Number of furniture boxes.
    pub furniture: usize,
}

/// The seven scenes of paper Fig. 12.
pub fn rooms() -> Vec<RoomSpec> {
    vec![
        RoomSpec {
            name: "conferenceRoom",
            w: 8.0,
            d: 6.0,
            h: 3.0,
            furniture: 10,
        },
        RoomSpec {
            name: "copyRoom",
            w: 4.0,
            d: 3.5,
            h: 3.0,
            furniture: 4,
        },
        RoomSpec {
            name: "hallway",
            w: 12.0,
            d: 2.5,
            h: 3.0,
            furniture: 2,
        },
        RoomSpec {
            name: "lounge",
            w: 7.0,
            d: 7.0,
            h: 3.0,
            furniture: 8,
        },
        RoomSpec {
            name: "office",
            w: 5.0,
            d: 4.5,
            h: 3.0,
            furniture: 6,
        },
        RoomSpec {
            name: "openspace",
            w: 10.0,
            d: 9.0,
            h: 3.0,
            furniture: 12,
        },
        RoomSpec {
            name: "pantry",
            w: 3.5,
            d: 3.0,
            h: 3.0,
            furniture: 5,
        },
    ]
}

/// A voxelized scene: the set of occupied voxel coordinates.
#[derive(Debug, Clone)]
pub struct VoxelScene {
    /// Occupied voxel coordinates (deduplicated, sorted).
    pub voxels: Vec<[i32; 3]>,
    /// Voxel edge length used for quantization (m).
    pub voxel_size: f64,
}

impl VoxelScene {
    /// Number of occupied voxels.
    pub fn len(&self) -> usize {
        self.voxels.len()
    }

    /// True if the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.voxels.is_empty()
    }
}

fn sample_plane(
    points: &mut Vec<[f64; 3]>,
    origin: [f64; 3],
    u: [f64; 3],
    v: [f64; 3],
    step: f64,
    jitter: f64,
    rng: &mut impl Rng,
) {
    let ulen = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt();
    let vlen = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    let nu = (ulen / step).ceil() as usize;
    let nv = (vlen / step).ceil() as usize;
    for i in 0..nu {
        for j in 0..nv {
            let fu = i as f64 / nu as f64;
            let fv = j as f64 / nv as f64;
            let mut p = [
                origin[0] + fu * u[0] + fv * v[0],
                origin[1] + fu * u[1] + fv * v[1],
                origin[2] + fu * u[2] + fv * v[2],
            ];
            for c in &mut p {
                *c += rng.gen_range(-jitter..jitter);
            }
            points.push(p);
        }
    }
}

/// Generate the raw point cloud of a room: walls, floor, ceiling, and
/// furniture boxes, sampled at roughly `sample_step` meters with jitter.
pub fn generate_points(spec: &RoomSpec, sample_step: f64, rng: &mut impl Rng) -> Vec<[f64; 3]> {
    let mut pts = Vec::new();
    let (w, d, h) = (spec.w, spec.d, spec.h);
    let jitter = sample_step * 0.3;
    // Floor and ceiling.
    sample_plane(
        &mut pts,
        [0.0, 0.0, 0.0],
        [w, 0.0, 0.0],
        [0.0, d, 0.0],
        sample_step,
        jitter,
        rng,
    );
    sample_plane(
        &mut pts,
        [0.0, 0.0, h],
        [w, 0.0, 0.0],
        [0.0, d, 0.0],
        sample_step,
        jitter,
        rng,
    );
    // Four walls.
    sample_plane(
        &mut pts,
        [0.0, 0.0, 0.0],
        [w, 0.0, 0.0],
        [0.0, 0.0, h],
        sample_step,
        jitter,
        rng,
    );
    sample_plane(
        &mut pts,
        [0.0, d, 0.0],
        [w, 0.0, 0.0],
        [0.0, 0.0, h],
        sample_step,
        jitter,
        rng,
    );
    sample_plane(
        &mut pts,
        [0.0, 0.0, 0.0],
        [0.0, d, 0.0],
        [0.0, 0.0, h],
        sample_step,
        jitter,
        rng,
    );
    sample_plane(
        &mut pts,
        [w, 0.0, 0.0],
        [0.0, d, 0.0],
        [0.0, 0.0, h],
        sample_step,
        jitter,
        rng,
    );
    // Furniture boxes (tables/shelves): top surface plus sides.
    for _ in 0..spec.furniture {
        let bw = rng.gen_range(0.5..1.8);
        let bd = rng.gen_range(0.4..1.2);
        let bh = rng.gen_range(0.4..1.1);
        let x0 = rng.gen_range(0.2..(w - bw - 0.2).max(0.3));
        let y0 = rng.gen_range(0.2..(d - bd - 0.2).max(0.3));
        sample_plane(
            &mut pts,
            [x0, y0, bh],
            [bw, 0.0, 0.0],
            [0.0, bd, 0.0],
            sample_step,
            jitter,
            rng,
        );
        sample_plane(
            &mut pts,
            [x0, y0, 0.0],
            [bw, 0.0, 0.0],
            [0.0, 0.0, bh],
            sample_step,
            jitter,
            rng,
        );
        sample_plane(
            &mut pts,
            [x0, y0, 0.0],
            [0.0, bd, 0.0],
            [0.0, 0.0, bh],
            sample_step,
            jitter,
            rng,
        );
    }
    pts
}

/// Quantize points to a voxel grid (the paper uses 5 cm voxels).
pub fn voxelize(points: &[[f64; 3]], voxel_size: f64) -> VoxelScene {
    let mut set: Vec<[i32; 3]> = points
        .iter()
        .map(|p| {
            [
                (p[0] / voxel_size).floor() as i32,
                (p[1] / voxel_size).floor() as i32,
                (p[2] / voxel_size).floor() as i32,
            ]
        })
        .collect();
    set.sort_unstable();
    set.dedup();
    VoxelScene {
        voxels: set,
        voxel_size,
    }
}

/// A submanifold 3×3×3 kernel map grouped by weight offset, in the layout
/// the paper's grouped indirect Einsum consumes:
/// `Out[MAPX[p,q],m] += MAPV[p,q] * In[MAPY[p,q],c] * Weight[MAPZ[p],c,m]`.
#[derive(Debug, Clone)]
pub struct KernelMap {
    /// Output voxel index per (group, slot) (`[groups, g]`, I32).
    pub mapx: Tensor,
    /// Input voxel index per (group, slot) (`[groups, g]`, I32).
    pub mapy: Tensor,
    /// Weight offset id per group (`[groups]`, I32).
    pub mapz: Tensor,
    /// Pair validity per (group, slot): 1.0 real, 0.0 padding
    /// (`[groups, g]`).
    pub mapv: Tensor,
    /// Total real (unpadded) pairs.
    pub pairs: usize,
    /// Number of voxels in the scene.
    pub voxels: usize,
    /// Group size used.
    pub group_size: usize,
}

impl KernelMap {
    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.mapz.len()
    }
}

/// Build the submanifold kernel map: for every voxel and every 3×3×3
/// offset, emit a pair when the neighbour voxel exists. Pairs are grouped
/// by offset (the paper's "grouping by MAPZ") with `group_size` slots per
/// group, padded with inert entries.
pub fn kernel_map(scene: &VoxelScene, group_size: usize) -> KernelMap {
    let index: HashMap<[i32; 3], usize> = scene
        .voxels
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    // pairs_by_offset[z] = list of (out_voxel, in_voxel).
    let mut pairs_by_offset: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 27];
    for (out_idx, &v) in scene.voxels.iter().enumerate() {
        let mut z = 0usize;
        for dz in -1i32..=1 {
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let n = [v[0] + dx, v[1] + dy, v[2] + dz];
                    if let Some(&in_idx) = index.get(&n) {
                        pairs_by_offset[z].push((out_idx, in_idx));
                    }
                    z += 1;
                }
            }
        }
    }
    let g = group_size.max(1);
    let mut mapx = Vec::new();
    let mut mapy = Vec::new();
    let mut mapz = Vec::new();
    let mut mapv = Vec::new();
    let mut pairs = 0usize;
    for (z, list) in pairs_by_offset.iter().enumerate() {
        pairs += list.len();
        for chunk in list.chunks(g) {
            mapz.push(z as i64);
            for slot in 0..g {
                match chunk.get(slot) {
                    Some(&(o, i)) => {
                        mapx.push(o as i64);
                        mapy.push(i as i64);
                        mapv.push(1.0f32);
                    }
                    None => {
                        mapx.push(0);
                        mapy.push(0);
                        mapv.push(0.0);
                    }
                }
            }
        }
    }
    let groups = mapz.len();
    KernelMap {
        mapx: Tensor::from_indices(vec![groups, g], mapx).expect("length matches"),
        mapy: Tensor::from_indices(vec![groups, g], mapy).expect("length matches"),
        mapz: Tensor::from_indices(vec![groups], mapz).expect("length matches"),
        mapv: Tensor::from_vec(vec![groups, g], mapv).expect("length matches"),
        pairs,
        voxels: scene.voxels.len(),
        group_size: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_scene() -> VoxelScene {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = RoomSpec {
            name: "test",
            w: 2.0,
            d: 2.0,
            h: 2.0,
            furniture: 1,
        };
        let pts = generate_points(&spec, 0.25, &mut rng);
        voxelize(&pts, 0.25)
    }

    #[test]
    fn seven_rooms() {
        assert_eq!(rooms().len(), 7);
    }

    #[test]
    fn voxelize_dedups() {
        let scene = voxelize(
            &[[0.01, 0.01, 0.01], [0.02, 0.02, 0.02], [0.9, 0.0, 0.0]],
            0.1,
        );
        assert_eq!(scene.len(), 2);
    }

    #[test]
    fn scene_is_shell_like() {
        let scene = small_scene();
        // A 2m cube at 25cm voxels has 9^3 = 729 cells; a shell occupies
        // far fewer than the volume but more than one face.
        assert!(scene.len() > 64, "{}", scene.len());
        assert!(scene.len() < 729, "{}", scene.len());
    }

    #[test]
    fn center_offset_is_identity() {
        let scene = small_scene();
        let km = kernel_map(&scene, 16);
        // Offset 13 (dx=dy=dz=0) pairs every voxel with itself.
        let mut self_pairs = 0;
        for p in 0..km.groups() {
            if km.mapz.at_i64(&[p]) == 13 {
                for q in 0..km.group_size {
                    if km.mapv.at(&[p, q]) != 0.0 {
                        assert_eq!(km.mapx.at_i64(&[p, q]), km.mapy.at_i64(&[p, q]));
                        self_pairs += 1;
                    }
                }
            }
        }
        assert_eq!(self_pairs, scene.len());
    }

    #[test]
    fn pairs_are_symmetric_across_mirror_offsets() {
        let scene = small_scene();
        let km = kernel_map(&scene, 8);
        // Offset z and 26 - z are mirror images: same pair count.
        let mut count = vec![0usize; 27];
        for p in 0..km.groups() {
            let z = km.mapz.at_i64(&[p]) as usize;
            for q in 0..km.group_size {
                if km.mapv.at(&[p, q]) != 0.0 {
                    count[z] += 1;
                }
            }
        }
        for z in 0..27 {
            assert_eq!(count[z], count[26 - z], "offset {z}");
        }
    }

    #[test]
    fn padding_is_marked_inert() {
        let scene = small_scene();
        let km = kernel_map(&scene, 7);
        let total_slots = km.groups() * km.group_size;
        let real: f32 = km.mapv.sum();
        assert_eq!(real as usize, km.pairs);
        assert!(total_slots >= km.pairs);
    }

    #[test]
    fn all_indices_in_range() {
        let scene = small_scene();
        let km = kernel_map(&scene, 4);
        for p in 0..km.groups() {
            assert!(km.mapz.at_i64(&[p]) < 27);
            for q in 0..km.group_size {
                assert!((km.mapx.at_i64(&[p, q]) as usize) < scene.len());
                assert!((km.mapy.at_i64(&[p, q]) as usize) < scene.len());
            }
        }
    }

    #[test]
    fn larger_rooms_have_more_voxels() {
        let mut rng = SmallRng::seed_from_u64(2);
        let all = rooms();
        let open = all.iter().find(|r| r.name == "openspace").expect("exists");
        let pantry = all.iter().find(|r| r.name == "pantry").expect("exists");
        let v_open = voxelize(&generate_points(open, 0.3, &mut rng), 0.3).len();
        let v_pantry = voxelize(&generate_points(pantry, 0.3, &mut rng), 0.3).len();
        assert!(
            v_open > 2 * v_pantry,
            "openspace {v_open} vs pantry {v_pantry}"
        );
    }
}
