//! Clebsch–Gordan coefficients and the equivariant tensor-product
//! workload (paper §6.5, Table 2).
//!
//! The paper's uvw-mode fully connected tensor product contracts a sparse
//! 4-D tensor of real Clebsch–Gordan (CG) coefficients with dense inputs:
//!
//! `Z[b,i,w] = CG[i,j,k,l] * X[b,j,u] * Y[b,k] * W[b,l,u,w]`
//!
//! where `i/j/k` are flattened `(ℓ, m)` indices over all irreps up to
//! `ℓmax` and `l` indexes the `(ℓ1, ℓ2, ℓ3)` coupling paths. CG values
//! are computed exactly with the Racah formula and validated against
//! orthogonality identities, so the sparsity structure and values match
//! e3nn's tensors.

use insum_tensor::Tensor;

/// Exact factorial as `f64` (inputs stay ≤ 15 for ℓ ≤ 3).
fn fact(n: i64) -> f64 {
    assert!(n >= 0, "factorial of negative number");
    (1..=n).map(|v| v as f64).product()
}

/// Clebsch–Gordan coefficient `⟨ℓ1 m1 ℓ2 m2 | ℓ3 m3⟩` for integer ℓ
/// (Racah's closed form, Condon–Shortley phase).
///
/// Returns 0 when selection rules fail (`m3 ≠ m1 + m2`, triangle
/// inequality, or out-of-range m).
pub fn clebsch_gordan(l1: i64, m1: i64, l2: i64, m2: i64, l3: i64, m3: i64) -> f64 {
    if m3 != m1 + m2
        || l3 < (l1 - l2).abs()
        || l3 > l1 + l2
        || m1.abs() > l1
        || m2.abs() > l2
        || m3.abs() > l3
    {
        return 0.0;
    }
    let delta =
        fact(l1 + l2 - l3) * fact(l1 - l2 + l3) * fact(-l1 + l2 + l3) / fact(l1 + l2 + l3 + 1);
    let f = fact(l3 + m3)
        * fact(l3 - m3)
        * fact(l1 - m1)
        * fact(l1 + m1)
        * fact(l2 - m2)
        * fact(l2 + m2);
    let prefactor = ((2 * l3 + 1) as f64 * delta * f).sqrt();
    let k_min = 0i64
        .max(l2 - l3 - m1) // j3 - j2 + m1 + k >= 0
        .max(l1 + m2 - l3); // j3 - j1 - m2 + k >= 0
    let k_max = (l1 + l2 - l3).min(l1 - m1).min(l2 + m2);
    let mut sum = 0.0;
    let mut k = k_min;
    while k <= k_max {
        let denom = fact(k)
            * fact(l1 + l2 - l3 - k)
            * fact(l1 - m1 - k)
            * fact(l2 + m2 - k)
            * fact(l3 - l2 + m1 + k)
            * fact(l3 - l1 - m2 + k);
        sum += if k % 2 == 0 { 1.0 } else { -1.0 } / denom;
        k += 1;
    }
    prefactor * sum
}

/// Flattened dimension of all irreps up to `lmax`: `(lmax+1)²`.
pub fn irrep_dim(lmax: usize) -> usize {
    (lmax + 1) * (lmax + 1)
}

/// Offset of irrep `ℓ` in the flattened `(ℓ, m)` index.
pub fn irrep_offset(l: usize) -> usize {
    l * l
}

/// One coupling path `(ℓ1, ℓ2, ℓ3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    /// ℓ of the first input irrep.
    pub l1: usize,
    /// ℓ of the second input irrep.
    pub l2: usize,
    /// ℓ of the output irrep.
    pub l3: usize,
}

/// All coupling paths with every ℓ ≤ `lmax` satisfying the triangle rule
/// (the uvw fully connected tensor product of e3nn).
pub fn paths(lmax: usize) -> Vec<Path> {
    let mut out = Vec::new();
    for l1 in 0..=lmax {
        for l2 in 0..=lmax {
            for l3 in l1.abs_diff(l2)..=(l1 + l2).min(lmax) {
                out.push(Path { l1, l2, l3 });
            }
        }
    }
    out
}

/// The sparse CG tensor in grouped-COO layout (grouped by path, the
/// paper's "grouping by CGL").
#[derive(Debug, Clone)]
pub struct CgTensor {
    /// Output `(ℓ3, m3)` index per (group, slot) (`[groups, g]`, I32).
    pub cgi: Tensor,
    /// First-input `(ℓ1, m1)` index (`[groups, g]`, I32).
    pub cgj: Tensor,
    /// Second-input `(ℓ2, m2)` index (`[groups, g]`, I32).
    pub cgk: Tensor,
    /// Path index per group (`[groups]`, I32).
    pub cgl: Tensor,
    /// CG values (`[groups, g]`; 0.0 padding).
    pub cgv: Tensor,
    /// The coupling paths, indexable by `cgl` values.
    pub paths: Vec<Path>,
    /// Flattened irrep dimension `(lmax+1)²`.
    pub dim: usize,
    /// Real (unpadded) nonzero count.
    pub nnz: usize,
    /// Group size used.
    pub group_size: usize,
}

impl CgTensor {
    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.cgl.len()
    }

    /// Nonzeros of one path, as `(i, j, k, value)` tuples (used by the
    /// per-path baselines).
    pub fn path_entries(&self, path_idx: usize) -> Vec<(usize, usize, usize, f32)> {
        let mut out = Vec::new();
        for p in 0..self.groups() {
            if self.cgl.at_i64(&[p]) as usize != path_idx {
                continue;
            }
            for q in 0..self.group_size {
                let v = self.cgv.at(&[p, q]);
                if v != 0.0 {
                    out.push((
                        self.cgi.at_i64(&[p, q]) as usize,
                        self.cgj.at_i64(&[p, q]) as usize,
                        self.cgk.at_i64(&[p, q]) as usize,
                        v,
                    ));
                }
            }
        }
        out
    }
}

/// Build the grouped sparse CG tensor for all paths up to `lmax`.
pub fn cg_tensor(lmax: usize, group_size: usize) -> CgTensor {
    let g = group_size.max(1);
    let all_paths = paths(lmax);
    let dim = irrep_dim(lmax);
    let mut cgi = Vec::new();
    let mut cgj = Vec::new();
    let mut cgk = Vec::new();
    let mut cgl = Vec::new();
    let mut cgv = Vec::new();
    let mut nnz = 0usize;
    for (pidx, path) in all_paths.iter().enumerate() {
        let (l1, l2, l3) = (path.l1 as i64, path.l2 as i64, path.l3 as i64);
        let mut entries = Vec::new();
        for m1 in -l1..=l1 {
            for m2 in -l2..=l2 {
                let m3 = m1 + m2;
                if m3.abs() > l3 {
                    continue;
                }
                let v = clebsch_gordan(l1, m1, l2, m2, l3, m3);
                if v.abs() > 1e-12 {
                    let i = irrep_offset(path.l3) + (m3 + l3) as usize;
                    let j = irrep_offset(path.l1) + (m1 + l1) as usize;
                    let k = irrep_offset(path.l2) + (m2 + l2) as usize;
                    entries.push((i, j, k, v as f32));
                }
            }
        }
        nnz += entries.len();
        for chunk in entries.chunks(g) {
            cgl.push(pidx as i64);
            for slot in 0..g {
                match chunk.get(slot) {
                    Some(&(i, j, k, v)) => {
                        cgi.push(i as i64);
                        cgj.push(j as i64);
                        cgk.push(k as i64);
                        cgv.push(v);
                    }
                    None => {
                        cgi.push(0);
                        cgj.push(0);
                        cgk.push(0);
                        cgv.push(0.0);
                    }
                }
            }
        }
    }
    let groups = cgl.len();
    CgTensor {
        cgi: Tensor::from_indices(vec![groups, g], cgi).expect("length matches"),
        cgj: Tensor::from_indices(vec![groups, g], cgj).expect("length matches"),
        cgk: Tensor::from_indices(vec![groups, g], cgk).expect("length matches"),
        cgl: Tensor::from_indices(vec![groups], cgl).expect("length matches"),
        cgv: Tensor::from_vec(vec![groups, g], cgv).expect("length matches"),
        paths: all_paths,
        dim,
        nnz,
        group_size: g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // <0 0 0 0 | 0 0> = 1.
        assert!((clebsch_gordan(0, 0, 0, 0, 0, 0) - 1.0).abs() < 1e-12);
        // <1 0 1 0 | 2 0> = sqrt(2/3).
        assert!((clebsch_gordan(1, 0, 1, 0, 2, 0) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // <1 1 1 -1 | 0 0> = 1/sqrt(3).
        assert!((clebsch_gordan(1, 1, 1, -1, 0, 0) - 1.0 / 3.0f64.sqrt()).abs() < 1e-12);
        // <1 0 1 0 | 1 0> = 0 (antisymmetric coupling kills m=0).
        assert!(clebsch_gordan(1, 0, 1, 0, 1, 0).abs() < 1e-12);
        // <1 1 1 0 | 1 1> = 1/sqrt(2).
        assert!((clebsch_gordan(1, 1, 1, 0, 1, 1) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn selection_rules() {
        assert_eq!(clebsch_gordan(1, 0, 1, 1, 2, 0), 0.0); // m3 != m1+m2
        assert_eq!(clebsch_gordan(1, 0, 1, 0, 3, 0), 0.0); // triangle
        assert_eq!(clebsch_gordan(1, 2, 1, -2, 0, 0), 0.0); // |m| > l
    }

    #[test]
    fn orthogonality() {
        // Sum over (m1, m2) of CG(...|l3 m3) CG(...|l3' m3') = delta.
        for l1 in 0..=2i64 {
            for l2 in 0..=2i64 {
                for l3 in (l1 - l2).abs()..=(l1 + l2) {
                    for l3p in (l1 - l2).abs()..=(l1 + l2) {
                        for m3 in -l3..=l3 {
                            for m3p in -l3p..=l3p {
                                let mut sum = 0.0;
                                for m1 in -l1..=l1 {
                                    for m2 in -l2..=l2 {
                                        sum += clebsch_gordan(l1, m1, l2, m2, l3, m3)
                                            * clebsch_gordan(l1, m1, l2, m2, l3p, m3p);
                                    }
                                }
                                let expect = if l3 == l3p && m3 == m3p { 1.0 } else { 0.0 };
                                assert!(
                                    (sum - expect).abs() < 1e-10,
                                    "l1={l1} l2={l2} l3={l3} m3={m3} l3'={l3p} m3'={m3p}: {sum}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn path_counts_grow_with_lmax() {
        assert_eq!(paths(0).len(), 1);
        // lmax=1: (0,0,0),(0,1,1),(1,0,1),(1,1,0),(1,1,1),(1,1,2->capped)
        // l3 <= lmax so (1,1,2) is excluded.
        assert_eq!(paths(1).len(), 5);
        assert!(paths(2).len() > paths(1).len());
        assert!(paths(3).len() > paths(2).len());
    }

    #[test]
    fn irrep_indexing() {
        assert_eq!(irrep_dim(3), 16);
        assert_eq!(irrep_offset(0), 0);
        assert_eq!(irrep_offset(1), 1);
        assert_eq!(irrep_offset(2), 4);
        assert_eq!(irrep_offset(3), 9);
    }

    #[test]
    fn cg_tensor_indices_in_range() {
        for lmax in 1..=3 {
            let t = cg_tensor(lmax, 8);
            assert!(t.nnz > 0);
            for p in 0..t.groups() {
                assert!((t.cgl.at_i64(&[p]) as usize) < t.paths.len());
                for q in 0..t.group_size {
                    assert!((t.cgi.at_i64(&[p, q]) as usize) < t.dim);
                    assert!((t.cgj.at_i64(&[p, q]) as usize) < t.dim);
                    assert!((t.cgk.at_i64(&[p, q]) as usize) < t.dim);
                }
            }
        }
    }

    #[test]
    fn groups_share_one_path() {
        let t = cg_tensor(2, 4);
        // Entries in one group must all belong to the group's path (or be
        // padding): verified via path_entries roundtrip.
        let total: usize = (0..t.paths.len()).map(|p| t.path_entries(p).len()).sum();
        assert_eq!(total, t.nnz);
    }

    #[test]
    fn nnz_grows_with_lmax() {
        let n1 = cg_tensor(1, 4).nnz;
        let n2 = cg_tensor(2, 4).nnz;
        let n3 = cg_tensor(3, 4).nnz;
        assert!(n1 < n2 && n2 < n3, "{n1} {n2} {n3}");
    }
}
