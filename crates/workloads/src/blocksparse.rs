//! Random block-sparse and unstructured sparse matrix generators.

use insum_formats::Coo;
use insum_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Generate a dense matrix with uniform *block* sparsity: each `bm × bk`
/// block is kept (dense, nonzero) with probability `1 - sparsity`.
///
/// Kept blocks are filled with uniform values in `[0.25, 1)` so no kept
/// element is accidentally zero. At least one block is always kept so
/// formats never degenerate to empty.
///
/// # Panics
///
/// Panics if `rows`/`cols` are not divisible by `bm`/`bk`.
pub fn block_sparse_dense(
    rows: usize,
    cols: usize,
    bm: usize,
    bk: usize,
    sparsity: f64,
    rng: &mut impl Rng,
) -> Tensor {
    assert_eq!(rows % bm, 0, "rows must divide by bm");
    assert_eq!(cols % bk, 0, "cols must divide by bk");
    let (brows, bcols) = (rows / bm, cols / bk);
    let mut keep = vec![false; brows * bcols];
    let mut any = false;
    for k in keep.iter_mut() {
        *k = rng.gen_bool(1.0 - sparsity);
        any |= *k;
    }
    if !any {
        let pick = rng.gen_range(0..keep.len());
        keep[pick] = true;
    }
    let mut t = Tensor::zeros(vec![rows, cols]);
    for br in 0..brows {
        for bc in 0..bcols {
            if !keep[br * bcols + bc] {
                continue;
            }
            for i in 0..bm {
                for j in 0..bk {
                    t.set(&[br * bm + i, bc * bk + j], rng.gen_range(0.25..1.0));
                }
            }
        }
    }
    t
}

/// Generate an unstructured sparse matrix in COO form with approximately
/// `density * rows * cols` nonzeros placed uniformly.
pub fn unstructured_coo(rows: usize, cols: usize, density: f64, rng: &mut impl Rng) -> Coo {
    let mut entries = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(density) {
                entries.push((r, c, rng.gen_range(0.25..1.0f32)));
            }
        }
    }
    if entries.is_empty() {
        entries.push((rng.gen_range(0..rows), rng.gen_range(0..cols), 1.0));
    }
    Coo::from_triplets(rows, cols, &entries).expect("coordinates are in bounds")
}

/// Generate a COO matrix from an explicit per-row degree sequence; each
/// row's columns are sampled without replacement.
pub fn coo_from_degrees(degrees: &[usize], cols: usize, rng: &mut impl Rng) -> Coo {
    let rows = degrees.len();
    let mut entries = Vec::new();
    let mut all_cols: Vec<usize> = (0..cols).collect();
    for (r, &deg) in degrees.iter().enumerate() {
        let deg = deg.min(cols);
        if deg == 0 {
            continue;
        }
        if deg * 4 >= cols {
            // Dense-ish row: shuffle and take a prefix.
            all_cols.shuffle(rng);
            for &c in all_cols.iter().take(deg) {
                entries.push((r, c, rng.gen_range(0.25..1.0f32)));
            }
        } else {
            // Sparse row: rejection-sample distinct columns.
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < deg {
                picked.insert(rng.gen_range(0..cols));
            }
            for &c in &picked {
                entries.push((r, c, rng.gen_range(0.25..1.0f32)));
            }
        }
    }
    Coo::from_triplets(rows, cols, &entries).expect("coordinates are in bounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn block_sparse_has_block_structure() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = block_sparse_dense(64, 64, 8, 8, 0.7, &mut rng);
        // Every 8x8 block is all-zero or all-nonzero.
        for br in 0..8 {
            for bc in 0..8 {
                let mut zeros = 0;
                for i in 0..8 {
                    for j in 0..8 {
                        if t.at(&[br * 8 + i, bc * 8 + j]) == 0.0 {
                            zeros += 1;
                        }
                    }
                }
                assert!(zeros == 0 || zeros == 64, "block ({br},{bc}) is mixed");
            }
        }
    }

    #[test]
    fn block_sparsity_tracks_target() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = block_sparse_dense(256, 256, 16, 16, 0.8, &mut rng);
        let nnz = t.data().iter().filter(|&&v| v != 0.0).count();
        let density = nnz as f64 / (256.0 * 256.0);
        assert!((density - 0.2).abs() < 0.08, "density {density}");
    }

    #[test]
    fn never_fully_empty() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = block_sparse_dense(32, 32, 16, 16, 1.0, &mut rng);
        assert!(t.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn unstructured_density() {
        let mut rng = SmallRng::seed_from_u64(4);
        let coo = unstructured_coo(128, 128, 0.05, &mut rng);
        let density = coo.nnz() as f64 / (128.0 * 128.0);
        assert!((density - 0.05).abs() < 0.02, "density {density}");
    }

    #[test]
    fn degrees_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let degrees = vec![3, 0, 10, 1];
        let coo = coo_from_degrees(&degrees, 64, &mut rng);
        assert_eq!(coo.occupancy(), degrees);
        assert_eq!(coo.nnz(), 14);
    }

    #[test]
    fn degrees_clamped_to_cols() {
        let mut rng = SmallRng::seed_from_u64(6);
        let coo = coo_from_degrees(&[100], 8, &mut rng);
        assert_eq!(coo.nnz(), 8);
    }
}
