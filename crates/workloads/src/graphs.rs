//! Models of the TC-GNN graph matrices used in paper Fig. 11.
//!
//! Each named dataset is replaced by a synthetic matrix matched on node
//! count, edge count, and degree-distribution family (see DESIGN.md). The
//! distribution family is what drives the Fig. 11 story: power-law
//! degrees (`artist`, `soc-BlogCatalog`) create the load imbalance that
//! Sputnik's row-swizzling wins on, while near-regular chemistry graphs
//! (`DD`, `Yeast*`, `OVCAR-8H`) do not.

use crate::blocksparse::coo_from_degrees;
use insum_formats::Coo;
use rand::Rng;

/// Degree-distribution family of a graph dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeFamily {
    /// Narrow distribution around the mean (molecular graphs).
    Regular,
    /// Log-normal-ish spread (citation/co-purchase networks).
    Moderate,
    /// Heavy power-law tail (social/affiliation networks).
    PowerLaw,
}

/// Catalog entry describing one TC-GNN dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// Dataset name as it appears in paper Fig. 11.
    pub name: &'static str,
    /// Node count of the real dataset.
    pub nodes: usize,
    /// Edge (nonzero) count of the real dataset.
    pub edges: usize,
    /// Degree-distribution family.
    pub family: DegreeFamily,
}

/// The 14 datasets of paper Fig. 11 with their published sizes.
pub fn catalog() -> Vec<GraphSpec> {
    use DegreeFamily::*;
    vec![
        GraphSpec {
            name: "amazon0505",
            nodes: 410_236,
            edges: 4_878_874,
            family: Moderate,
        },
        GraphSpec {
            name: "amazon0601",
            nodes: 403_394,
            edges: 5_478_357,
            family: Moderate,
        },
        GraphSpec {
            name: "artist",
            nodes: 50_515,
            edges: 1_638_396,
            family: PowerLaw,
        },
        GraphSpec {
            name: "citeseer",
            nodes: 3_327,
            edges: 9_104,
            family: Moderate,
        },
        GraphSpec {
            name: "com-amazon",
            nodes: 334_863,
            edges: 1_851_744,
            family: Moderate,
        },
        GraphSpec {
            name: "cora",
            nodes: 2_708,
            edges: 10_556,
            family: Moderate,
        },
        GraphSpec {
            name: "DD",
            nodes: 334_925,
            edges: 1_686_092,
            family: Regular,
        },
        GraphSpec {
            name: "OVCAR-8H",
            nodes: 1_889_542,
            edges: 3_946_402,
            family: Regular,
        },
        GraphSpec {
            name: "ppi",
            nodes: 56_944,
            edges: 818_716,
            family: PowerLaw,
        },
        GraphSpec {
            name: "PROTEINS_full",
            nodes: 43_471,
            edges: 162_088,
            family: Regular,
        },
        GraphSpec {
            name: "pubmed",
            nodes: 19_717,
            edges: 88_648,
            family: Moderate,
        },
        GraphSpec {
            name: "soc-BlogCatalog",
            nodes: 88_784,
            edges: 2_093_195,
            family: PowerLaw,
        },
        GraphSpec {
            name: "Yeast",
            nodes: 1_714_644,
            edges: 3_636_546,
            family: Regular,
        },
        GraphSpec {
            name: "YeastH",
            nodes: 3_139_988,
            edges: 6_487_230,
            family: Regular,
        },
    ]
}

/// Generate the adjacency matrix of a dataset model, scaled down by
/// `scale` (nodes and edges divided by `scale`; average degree is
/// preserved, as is the degree-distribution family).
pub fn generate(spec: &GraphSpec, scale: usize, rng: &mut impl Rng) -> Coo {
    let nodes = (spec.nodes / scale).max(16);
    let edges = (spec.edges / scale).max(nodes);
    let mean = edges as f64 / nodes as f64;
    let degrees = sample_degrees(nodes, edges, mean, spec.family, rng);
    coo_from_degrees(&degrees, nodes, rng)
}

fn sample_degrees(
    nodes: usize,
    edges: usize,
    mean: f64,
    family: DegreeFamily,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let mut degrees: Vec<usize> = (0..nodes)
        .map(|_| match family {
            DegreeFamily::Regular => {
                // Tight spread: mean +- 30%.
                let lo = (mean * 0.7).max(1.0);
                let hi = (mean * 1.3).max(lo + 1.0);
                rng.gen_range(lo..hi) as usize
            }
            DegreeFamily::Moderate => {
                // Log-normal-ish: exponentiate a uniform spread.
                let z: f64 = rng.gen_range(-1.0..1.0);
                (mean * (2.0f64).powf(z * 1.5)).max(1.0) as usize
            }
            DegreeFamily::PowerLaw => {
                // Pareto tail with alpha ~ 1.25 (Gini ~ 0.67): a few hub
                // rows hold a large share of the nonzeros.
                let u: f64 = rng.gen_range(1e-5..1.0);
                let m = mean * 0.2;
                (m / u.powf(0.8)).clamp(1.0, nodes as f64 * 0.5) as usize
            }
        })
        .collect();
    // Rescale to hit the target edge budget.
    let total: usize = degrees.iter().sum();
    if total > 0 {
        let ratio = edges as f64 / total as f64;
        for d in &mut degrees {
            *d = ((*d as f64 * ratio).round() as usize).max(1);
        }
    }
    degrees
}

/// Gini coefficient of a degree sequence — a skew measure used by tests
/// and the benchmark report (0 = perfectly even, → 1 = concentrated).
pub fn gini(degrees: &[usize]) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("degrees are finite"));
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn catalog_has_fourteen_datasets() {
        let c = catalog();
        assert_eq!(c.len(), 14);
        assert!(c
            .iter()
            .any(|s| s.name == "artist" && s.family == DegreeFamily::PowerLaw));
    }

    #[test]
    fn generated_size_matches_scaled_spec() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = &catalog()[3]; // citeseer
        let coo = generate(spec, 4, &mut rng);
        assert_eq!(coo.rows, spec.nodes / 4);
        let target = (spec.edges / 4) as f64;
        let got = coo.nnz() as f64;
        assert!(
            (got - target).abs() / target < 0.35,
            "edges {got} vs target {target}"
        );
    }

    #[test]
    fn power_law_is_more_skewed_than_regular() {
        let mut rng = SmallRng::seed_from_u64(2);
        let c = catalog();
        let artist = c.iter().find(|s| s.name == "artist").expect("in catalog");
        let dd = c.iter().find(|s| s.name == "DD").expect("in catalog");
        let g_artist = gini(&generate(artist, 64, &mut rng).occupancy());
        let g_dd = gini(&generate(dd, 256, &mut rng).occupancy());
        assert!(
            g_artist > g_dd + 0.2,
            "artist gini {g_artist} should far exceed DD gini {g_dd}"
        );
    }

    #[test]
    fn gini_sanity() {
        assert!(gini(&[5, 5, 5, 5]) < 0.01);
        assert!(gini(&[0, 0, 0, 100]) > 0.7);
        assert_eq!(gini(&[]), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = &catalog()[5];
        let a = generate(spec, 8, &mut SmallRng::seed_from_u64(7));
        let b = generate(spec, 8, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
