//! Synthetic workload generators for the paper's evaluation datasets.
//!
//! The reproduction cannot ship the paper's proprietary or large external
//! datasets, so each is replaced by a generator matched to the statistics
//! that drive the performance comparison (see DESIGN.md's substitution
//! table):
//!
//! * [`blocksparse`] — uniform block-sparse and unstructured matrices for
//!   the structured-SpMM sweeps (Figs. 7, 10, 13);
//! * [`graphs`] — models of the 14 TC-GNN matrices (Fig. 11), matched on
//!   row count, nonzero count, and degree-distribution family;
//! * [`pointcloud`] — synthetic indoor rooms, voxelization and
//!   kernel-map construction for sparse convolution (Fig. 12, Table 3);
//! * [`equivariant`] — exact Clebsch–Gordan coefficients (Racah formula)
//!   and the uvw-mode tensor-product operands (Table 2).
//!
//! All generators are deterministic given a seed.

pub mod blocksparse;
pub mod equivariant;
pub mod graphs;
pub mod pointcloud;
