//! End-to-end telemetry behavior on the injectable [`TestClock`]:
//! deterministic request spans, the flight recorder's dump-on-failure,
//! exactly-once latency accounting across every terminal outcome,
//! arrival-order-independent histograms, and the cadence dump's
//! parse-back reconciliation. Virtual time only moves when a test
//! advances it, so every trace timestamp below is exact, not
//! approximate.

use insum::Tensor;
use insum_serve::{
    Phase, ServeConfig, ServeEngine, ServeError, SubmitOptions, TestClock, TraceOutcome,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Serializes tests that arm the process-global targeted faults.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const EXPR: &str = "C[i] = A[i] * A[i]";
/// Deterministic compile error (`?=` is not an operator).
const BAD_EXPR: &str = "C[i] ?= A[i]";

fn request(fill: f32) -> BTreeMap<String, Tensor> {
    [
        ("C".to_string(), Tensor::zeros(vec![16])),
        (
            "A".to_string(),
            Tensor::from_vec(vec![16], vec![fill; 16]).unwrap(),
        ),
    ]
    .into_iter()
    .collect()
}

/// Poll `f` every millisecond until it returns `Some`, with a real-time
/// bound so a wedged engine fails the test instead of hanging it.
fn poll_until<T>(what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn completed_response_carries_a_deterministic_span() {
    let clock = TestClock::new();
    let engine = ServeEngine::with_clock(ServeConfig::default(), Arc::clone(&clock) as _).unwrap();
    engine.pause();
    let tensors = request(2.0);
    let handle = engine.session("span-t").submit(EXPR, &tensors).unwrap();

    // Admitted at t=0; the engine is paused, so every later phase
    // happens at exactly t=5s once we resume.
    clock.advance(Duration::from_secs(5));
    engine.resume();
    let response = handle.wait().unwrap();
    let trace = response.trace.expect("telemetry is on by default");

    assert_eq!(trace.tenant, "span-t");
    let at = |phase: Phase| trace.event(phase).expect("phase present").at;
    assert_eq!(at(Phase::Admitted), Duration::ZERO);
    assert_eq!(at(Phase::Scheduled), Duration::from_secs(5));
    assert_eq!(at(Phase::RegistryWait), Duration::from_secs(5));
    assert_eq!(at(Phase::Batched), Duration::from_secs(5));
    assert_eq!(at(Phase::Respond), Duration::from_secs(5));
    assert_eq!(trace.span(), Duration::from_secs(5));
    assert_eq!(
        trace.event(Phase::RegistryWait).unwrap().info,
        0,
        "first request is a registry miss"
    );
    assert_eq!(trace.event(Phase::Batched).unwrap().info, 1, "batch of 1");
    assert_eq!(trace.event(Phase::Respond).unwrap().info, 1, "one attempt");
    // Virtual time did not move during compile or launch, so the hook
    // costs fold in with zero duration — bit-deterministic spans.
    assert_eq!(trace.compile.nanos, 0);
    assert_eq!(trace.launch.nanos, 0);
    assert!(trace.launch.count >= 1, "the launch interval was recorded");

    // The same span landed in the flight recorder.
    let recorded = engine.traces();
    assert_eq!(recorded.len(), 1);
    assert_eq!(recorded[0].outcome, TraceOutcome::Completed);
    assert_eq!(recorded[0].trace, trace);
}

#[test]
fn failed_and_expired_spans_reach_the_failure_ring_with_exact_timestamps() {
    let clock = TestClock::new();
    let engine = ServeEngine::with_clock(ServeConfig::default(), Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.0);

    engine.pause();
    let expired = engine
        .session("late")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_deadline(Duration::from_secs(3)),
        )
        .unwrap();
    clock.advance(Duration::from_secs(3));
    assert!(matches!(
        expired.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    engine.resume();
    assert!(engine
        .session("broken")
        .submit(BAD_EXPR, &tensors)
        .unwrap()
        .wait()
        .is_err());
    poll_until("both failures recorded", || {
        (engine.failed_traces().len() == 2).then_some(())
    });

    let failures = engine.failed_traces();
    let expired_trace = failures
        .iter()
        .find(|r| r.outcome == TraceOutcome::Expired)
        .expect("expired span in the failure ring");
    assert_eq!(expired_trace.trace.tenant, "late");
    let at = |phase: Phase| expired_trace.trace.event(phase).unwrap().at;
    assert_eq!(at(Phase::Admitted), Duration::ZERO);
    assert_eq!(at(Phase::Scheduled), Duration::from_secs(3));
    assert_eq!(at(Phase::Expired), Duration::from_secs(3));

    let failed_trace = failures
        .iter()
        .find(|r| matches!(r.outcome, TraceOutcome::Failed(_)))
        .expect("compile-failed span in the failure ring");
    assert!(failed_trace.trace.has_phase(Phase::RegistryWait));
    assert!(failed_trace.trace.has_phase(Phase::Failed));

    // The human-readable dump names every phase the requests went
    // through — this is the artifact an operator reads after a crash.
    let dump = engine.dump_failed_traces();
    for needle in [
        "admitted",
        "scheduled",
        "expired",
        "failed",
        "late",
        "broken",
    ] {
        assert!(dump.contains(needle), "dump missing {needle:?}:\n{dump}");
    }

    // Success floods cannot evict the failure ring.
    for _ in 0..80 {
        engine
            .session("flood")
            .submit(EXPR, &tensors)
            .unwrap()
            .wait()
            .unwrap();
    }
    assert_eq!(engine.failed_traces().len(), 2);
}

#[test]
fn every_terminal_request_lands_in_exactly_one_queue_wait_histogram() {
    let _guard = fault_guard();
    let clock = TestClock::new();
    let config = ServeConfig::default()
        .with_retry_backoff(Duration::from_millis(10), Duration::from_millis(40))
        .with_budget(
            "greedy",
            insum_serve::CostBudget {
                capacity: 1,
                refill_per_second: 1,
            },
        );
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.0);

    // Completions.
    for _ in 0..3 {
        engine
            .session("steady")
            .submit(EXPR, &tensors)
            .unwrap()
            .wait()
            .unwrap();
    }
    // A cancellation straight out of the queue.
    engine.pause();
    let cancelled = engine.session("steady").submit(EXPR, &tensors).unwrap();
    assert!(cancelled.cancel());
    // A deadline expiry.
    let expired = engine
        .session("late")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_deadline(Duration::from_secs(1)),
        )
        .unwrap();
    clock.advance(Duration::from_secs(1));
    assert!(expired.wait().is_err());
    engine.resume();
    // A budget rejection (the first greedy request overdraws).
    engine
        .session("greedy")
        .submit(EXPR, &tensors)
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(
        engine
            .session("greedy")
            .submit(EXPR, &tensors)
            .unwrap()
            .wait(),
        Err(ServeError::BudgetExhausted { .. })
    ));
    // A deterministic compile failure.
    assert!(engine
        .session("steady")
        .submit(BAD_EXPR, &tensors)
        .unwrap()
        .wait()
        .is_err());
    // A retried request that fails terminally: it was admitted once and
    // must contribute exactly one queue-wait sample despite 3 attempts.
    insum_serve::faults::set_panic_tenant(Some("flaky"));
    let doomed = engine
        .session("flaky")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_max_retries(2),
        )
        .unwrap();
    let result = poll_until("terminal failure", || {
        clock.advance(Duration::from_millis(40));
        doomed.try_take()
    });
    insum_serve::faults::set_panic_tenant(None);
    assert!(matches!(result, Err(ServeError::Engine(_))));

    let m = engine.metrics();
    assert_eq!(m.queue_depth, 0);
    // Reconciliation: every terminal request appears in its tenant's
    // queue-wait histogram exactly once — completions, failures,
    // cancellations, expiries, and budget rejections alike.
    for (tenant, t) in &m.tenants {
        assert_eq!(
            t.queue_wait.count(),
            t.terminal(),
            "tenant {tenant} latency books reconcile: {t:?}"
        );
        assert_eq!(
            t.e2e.count(),
            t.completed,
            "e2e samples are completions only ({tenant})"
        );
        assert_eq!(
            t.cost.count(),
            t.completed,
            "cost samples are completions only ({tenant})"
        );
    }
    let merged = m.queue_wait();
    assert_eq!(
        merged.count(),
        m.completed
            + m.failed
            + m.cancelled
            + m.deadline_expired
            + m.budget_rejected
            + m.quarantined
    );
    // The expired request waited exactly 1 virtual second; the merged
    // histogram's max must see it.
    assert!(merged.max() >= 1_000_000_000);
    // The retried request was admitted once.
    assert_eq!(m.tenants["flaky"].queue_wait.count(), 1);
    assert_eq!(m.retries, 2);
}

#[test]
fn shuffled_arrival_orders_produce_bit_identical_histograms() {
    // Two tenants each submit one request at t=0, t=1s, t=2s while the
    // engine is paused; the intra-timestamp submission order differs
    // between runs. Queue waits are therefore the same multiset per
    // tenant, and the log-bucketed histograms must match bit for bit.
    let run = |interleave: bool| {
        let clock = TestClock::new();
        let engine =
            ServeEngine::with_clock(ServeConfig::default(), Arc::clone(&clock) as _).unwrap();
        engine.pause();
        let tensors = request(1.0);
        let mut handles = Vec::new();
        for step in 0..3u64 {
            let tenants = if interleave { ["a", "b"] } else { ["b", "a"] };
            for tenant in tenants {
                handles.push(engine.session(tenant).submit(EXPR, &tensors).unwrap());
            }
            clock.advance(Duration::from_secs(1));
            let _ = step;
        }
        engine.resume();
        for h in handles {
            h.wait().unwrap();
        }
        engine.metrics()
    };
    let forward = run(true);
    let shuffled = run(false);
    for tenant in ["a", "b"] {
        assert_eq!(
            forward.tenants[tenant].queue_wait, shuffled.tenants[tenant].queue_wait,
            "tenant {tenant} queue-wait histograms are bit-identical"
        );
        assert_eq!(forward.tenants[tenant].e2e, shuffled.tenants[tenant].e2e);
    }
    assert_eq!(forward.queue_wait(), shuffled.queue_wait());
    // Quantiles on the merged histogram are exact under virtual time:
    // waits are {1s, 2s, 3s} per tenant (resume happened at t=3s).
    let q = forward.queue_wait();
    assert_eq!(q.count(), 6);
    assert_eq!(q.max(), 3_000_000_000);
    assert!(q.quantile(0.5) >= 2_000_000_000);
}

#[test]
fn disabled_telemetry_serves_identically_with_no_spans() {
    let clock = TestClock::new();
    let config = ServeConfig::default().with_telemetry(false);
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(2.0);
    let r = engine
        .session("quiet")
        .submit(EXPR, &tensors)
        .unwrap()
        .wait()
        .unwrap();
    assert!(r.trace.is_none(), "no span when telemetry is off");
    assert!(engine.traces().is_empty());
    assert_eq!(engine.dump_failed_traces(), "");
    // Core latency accounting still works — histograms replace the old
    // wait counters and are not gated.
    let m = engine.metrics();
    assert_eq!(m.tenants["quiet"].queue_wait.count(), 1);
}

#[test]
fn telemetry_dump_parses_back_and_reconciles() {
    let dir = std::env::temp_dir().join(format!("insum-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.prom");
    let clock = TestClock::new();
    let config = ServeConfig::default()
        .with_telemetry_dump(&path)
        .with_telemetry_dump_interval(Duration::from_secs(3600));
    let mut engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.5);
    for _ in 0..4 {
        engine
            .session("dumper")
            .submit(EXPR, &tensors)
            .unwrap()
            .wait()
            .unwrap();
    }
    let m = engine.metrics();
    engine.shutdown(); // final dump happens as the scheduler exits

    // Prometheus text parses back and matches the in-memory counters.
    let prom = std::fs::read_to_string(&path).unwrap();
    let samples = insum_telemetry::expo::parse_prometheus(&prom);
    assert_eq!(samples["serve_completed_total"], m.completed as f64);
    assert_eq!(samples["serve_submitted_total"], m.submitted as f64);
    assert_eq!(
        samples["serve_queue_wait_seconds_count{tenant=\"dumper\"}"],
        m.tenants["dumper"].queue_wait.count() as f64
    );
    assert_eq!(
        samples["serve_tenant_requests_total{tenant=\"dumper\",outcome=\"completed\"}"],
        4.0
    );

    // The JSON sibling parses back and reconciles too.
    let json_text = std::fs::read_to_string(path.with_extension("json")).unwrap();
    let json = insum_telemetry::json::parse(&json_text).unwrap();
    assert_eq!(json.get("completed").and_then(|v| v.as_f64()), Some(4.0));
    let tenant = json
        .get("tenants")
        .and_then(|t| t.get("dumper"))
        .expect("per-tenant object");
    assert_eq!(
        tenant
            .get("queue_wait")
            .and_then(|h| h.get("count"))
            .and_then(|v| v.as_f64()),
        Some(4.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retry_spans_record_every_attempt() {
    let _guard = fault_guard();
    let clock = TestClock::new();
    let config =
        ServeConfig::default().with_retry_backoff(Duration::from_secs(1), Duration::from_secs(8));
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.5);

    insum_serve::faults::set_panic_tenant(Some("retry-t"));
    let handle = engine
        .session("retry-t")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_max_retries(3),
        )
        .unwrap();
    poll_until("first retry to be scheduled", || {
        (engine.metrics().retries == 1).then_some(())
    });
    insum_serve::faults::set_panic_tenant(None);
    clock.advance(Duration::from_secs(1));
    let r = handle.wait().unwrap();
    let trace = r.trace.expect("span present");

    // The span shows the failed attempt's retry and the successful
    // second pass: retry at t=0 (the panic was instant in virtual
    // time), re-scheduled after the 1s backoff.
    let retry = trace.event(Phase::Retry).expect("retry phase recorded");
    assert_eq!(retry.at, Duration::ZERO);
    assert_eq!(retry.info, 1, "first retry bumped the attempt counter");
    assert_eq!(trace.event(Phase::Respond).unwrap().info, 2, "two attempts");
    assert_eq!(
        trace
            .events
            .iter()
            .filter(|e| e.phase == Phase::Scheduled)
            .count(),
        2,
        "both attempts went through scheduling"
    );
    assert_eq!(trace.ended_at(), Some(Duration::from_secs(1)));
}
