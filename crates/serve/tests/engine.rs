//! End-to-end engine behavior: the determinism guarantee under shuffled
//! arrival orders and varying batch compositions, the backpressure
//! model, metrics accounting, and the async handle surface.

use insum::{insum_with, InsumOptions, Mode, Profile, Tensor};
use insum_serve::{block_on, AdmissionPolicy, ServeConfig, ServeEngine, ServeError, SubmitOptions};
use insum_tensor::{rand_uniform, randint};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const SPMM: &str = "C[AM[p],n] += AV[p] * B[AK[p],n]";
const MATMUL: &str = "C[y,x] = A[y,r] * B[r,x]";

fn spmm_request(seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nnz = 29;
    [
        ("C".to_string(), Tensor::zeros(vec![16, 32])),
        ("AM".to_string(), randint(vec![nnz], 16, &mut rng)),
        ("AK".to_string(), randint(vec![nnz], 24, &mut rng)),
        (
            "AV".to_string(),
            rand_uniform(vec![nnz], -1.0, 1.0, &mut rng),
        ),
        (
            "B".to_string(),
            rand_uniform(vec![24, 32], -1.0, 1.0, &mut rng),
        ),
    ]
    .into_iter()
    .collect()
}

fn matmul_request(seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    [
        ("C".to_string(), Tensor::zeros(vec![24, 20])),
        (
            "A".to_string(),
            rand_uniform(vec![24, 16], -1.0, 1.0, &mut rng),
        ),
        (
            "B".to_string(),
            rand_uniform(vec![16, 20], -1.0, 1.0, &mut rng),
        ),
    ]
    .into_iter()
    .collect()
}

/// One request plus its serially computed expected response bits.
struct Case {
    expr: &'static str,
    tensors: BTreeMap<String, Tensor>,
    mode: Mode,
    want_output: Tensor,
    want_profile: Profile,
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();
    let opts = InsumOptions::default();
    for seed in 0..5u64 {
        let tensors = spmm_request(seed);
        let op = insum_with(SPMM, &tensors, &opts).unwrap();
        let (out, profile) = op.run(&tensors).unwrap();
        cases.push(Case {
            expr: SPMM,
            tensors,
            mode: Mode::Execute,
            want_output: out,
            want_profile: profile,
        });
    }
    for seed in 0..3u64 {
        let tensors = matmul_request(seed);
        let op = insum_with(MATMUL, &tensors, &opts).unwrap();
        let (out, profile) = op.run(&tensors).unwrap();
        cases.push(Case {
            expr: MATMUL,
            tensors,
            mode: Mode::Execute,
            want_output: out,
            want_profile: profile,
        });
    }
    // Analytic requests: counters identical to execute, output binding
    // returned unmodified.
    for seed in [1u64, 3] {
        let tensors = spmm_request(seed);
        let op = insum_with(SPMM, &tensors, &opts).unwrap();
        let profile = op.time(&tensors).unwrap();
        cases.push(Case {
            expr: SPMM,
            tensors: tensors.clone(),
            mode: Mode::Analytic,
            want_output: tensors["C"].clone(),
            want_profile: profile,
        });
    }
    cases
}

/// The acceptance property: outputs and per-request profiles are
/// independent of arrival order, batch composition, thread budget, and
/// client concurrency.
#[test]
fn shuffled_arrival_order_never_changes_bits() {
    let cases = cases();
    let mut batched_somewhere = 0usize;
    for scenario in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(scenario * 101 + 7);
        let preload = rng.gen_bool(0.5);
        // A paused (preloading) engine never drains, so its queue must
        // hold every request or blocking admission would deadlock.
        let capacity = if preload {
            64
        } else {
            [4, 64][rng.gen_range(0..2usize)]
        };
        let config = ServeConfig::default()
            .with_max_batch([1, 2, 4, 8][rng.gen_range(0..4usize)])
            .with_queue_capacity(capacity)
            .with_sim_threads([None, Some(1), Some(3)][rng.gen_range(0..3usize)]);
        let clients = rng.gen_range(1..=3usize);
        let engine = ServeEngine::new(config).unwrap();

        let mut order: Vec<usize> = (0..cases.len()).collect();
        order.shuffle(&mut rng);

        if preload {
            // Queue everything before the scheduler may run: batches
            // form from the full shuffled window.
            engine.pause();
        }
        let handles: Vec<(usize, insum_serve::ResponseHandle)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let session = engine.session(&format!("tenant-{c}"));
                    let mine: Vec<usize> = order.iter().copied().skip(c).step_by(clients).collect();
                    let cases = &cases;
                    scope.spawn(move || {
                        mine.into_iter()
                            .map(|i| {
                                let case = &cases[i];
                                let opts = SubmitOptions::default().with_mode(case.mode);
                                let h = session
                                    .submit_with(case.expr, &case.tensors, &opts)
                                    .expect("admission succeeds");
                                (i, h)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect()
        });
        if preload {
            engine.resume();
        }

        for (i, handle) in handles {
            let response = handle.wait().expect("request succeeds");
            let case = &cases[i];
            assert_eq!(
                response.output.data(),
                case.want_output.data(),
                "scenario {scenario}: request {i} output bits changed"
            );
            assert_eq!(
                response.profile, case.want_profile,
                "scenario {scenario}: request {i} profile changed"
            );
        }
        let metrics = engine.metrics();
        assert_eq!(metrics.completed, cases.len() as u64);
        assert_eq!(metrics.failed, 0);
        batched_somewhere = batched_somewhere.max(metrics.largest_batch);
    }
    assert!(
        batched_somewhere > 1,
        "at least one scenario must actually form multi-request batches"
    );
}

#[test]
fn reject_policy_saturates_and_block_policy_waits() {
    let tensors = spmm_request(11);
    // Reject: pause the scheduler so the queue genuinely fills.
    let engine = ServeEngine::new(
        ServeConfig::default()
            .with_queue_capacity(2)
            .with_admission(AdmissionPolicy::Reject),
    )
    .unwrap();
    engine.pause();
    let session = engine.session("t");
    let h1 = session.submit(SPMM, &tensors).unwrap();
    let h2 = session.submit(SPMM, &tensors).unwrap();
    let err = session.submit(SPMM, &tensors).unwrap_err();
    assert_eq!(err, ServeError::Saturated { capacity: 2 });
    let metrics = engine.metrics();
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.queue_depth, 2);
    assert_eq!(metrics.tenants["t"].queue_depth, 2);
    engine.resume();
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());

    // Block: a third submission parks until the scheduler drains.
    let engine = ServeEngine::new(ServeConfig::default().with_queue_capacity(2)).unwrap();
    engine.pause();
    let session = engine.session("t");
    let mut handles = vec![
        session.submit(SPMM, &tensors).unwrap(),
        session.submit(SPMM, &tensors).unwrap(),
    ];
    std::thread::scope(|scope| {
        let blocked = scope.spawn(|| session.submit(SPMM, &tensors).unwrap());
        // The blocked submitter can only complete once the engine
        // resumes and drains; resume from here.
        std::thread::sleep(std::time::Duration::from_millis(20));
        engine.resume();
        handles.push(blocked.join().unwrap());
    });
    for h in handles {
        assert!(h.wait().is_ok());
    }
    assert_eq!(engine.metrics().rejected, 0);
}

#[test]
fn responses_are_awaitable_futures() {
    let engine = ServeEngine::with_defaults().unwrap();
    let session = engine.session("async");
    let tensors = spmm_request(13);
    let want = insum_with(SPMM, &tensors, &InsumOptions::default())
        .unwrap()
        .run(&tensors)
        .unwrap();
    let h1 = session.submit(SPMM, &tensors).unwrap();
    let h2 = session.submit(SPMM, &tensors).unwrap();
    let (r1, r2) = block_on(async move {
        let r1 = h1.await.expect("first request succeeds");
        let r2 = h2.await.expect("second request succeeds");
        (r1, r2)
    });
    assert_eq!(r1.output.data(), want.0.data());
    assert_eq!(r2.output.data(), want.0.data());
    assert_eq!(r1.profile, want.1);
    assert!(r1.id < r2.id);
}

#[test]
fn shutdown_closes_admission_but_serves_admitted_requests() {
    let tensors = spmm_request(17);
    let mut engine = ServeEngine::with_defaults().unwrap();
    engine.pause();
    let session = engine.session("t");
    let admitted = session.submit(SPMM, &tensors).unwrap();
    engine.shutdown(); // drains the queue even while paused
    assert!(admitted.wait().is_ok());
    assert_eq!(
        session.submit(SPMM, &tensors).unwrap_err(),
        ServeError::Closed
    );
}

#[test]
fn compile_errors_complete_the_ticket_and_count_as_failed() {
    let engine = ServeEngine::with_defaults().unwrap();
    let session = engine.session("t");
    let tensors = spmm_request(19);
    let h = session.submit("C[i] ?= A[i]", &tensors).unwrap();
    assert!(matches!(h.wait(), Err(ServeError::Insum(_))));
    // The same broken request again: served from the registry's cached
    // error, still a clean failure.
    let h = session.submit("C[i] ?= A[i]", &tensors).unwrap();
    assert!(matches!(h.wait(), Err(ServeError::Insum(_))));
    let metrics = engine.metrics();
    assert_eq!(metrics.failed, 2);
    assert_eq!(metrics.tenants["t"].failed, 2);
    assert_eq!(metrics.registry.misses, 1, "error compiled once");
}

#[test]
fn metrics_attribute_tenants_kernels_and_registry_sharing() {
    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(8)).unwrap();
    engine.pause();
    let tensors = spmm_request(23);
    let a = engine.session("alice");
    let b = engine.session("bob");
    let mut handles = Vec::new();
    for _ in 0..3 {
        handles.push(a.submit(SPMM, &tensors).unwrap());
    }
    for _ in 0..2 {
        handles.push(b.submit(SPMM, &tensors).unwrap());
    }
    engine.resume();
    let mut batch_sizes = Vec::new();
    for h in handles {
        let r = h.wait().unwrap();
        assert!(r.queue_seconds >= 0.0);
        batch_sizes.push(r.batch_size);
    }
    assert!(
        batch_sizes.iter().any(|&s| s > 1),
        "identical preloaded requests must batch (sizes: {batch_sizes:?})"
    );
    let m = engine.metrics();
    assert_eq!(m.submitted, 5);
    assert_eq!(m.completed, 5);
    assert_eq!(m.queue_depth, 0);
    assert!(m.queue_depth_max >= 5);
    assert_eq!(m.batched_requests, 5);
    assert!(m.largest_batch >= 2);
    assert_eq!(m.tenants["alice"].submitted, 3);
    assert_eq!(m.tenants["bob"].submitted, 2);
    assert_eq!(m.tenants["alice"].completed, 3);
    assert!(m.tenants["alice"].instances_simulated > 0);
    // One artifact compilation total; everyone else shared it.
    assert_eq!(m.registry.misses, 1);
    assert_eq!(m.registry.hits, 4);
    assert_eq!(m.registry.entries, 1);
    // Exactly one kernel identity served every request.
    assert_eq!(m.kernels.len(), 1);
    let km = m.kernels.values().next().unwrap();
    assert_eq!(km.requests, 5);
    assert!(km.largest_batch >= 2);
    assert!(km.instances_simulated > 0);
    assert!(km.simulated_seconds_total > 0.0);
}

#[test]
fn fast_path_artifacts_batch_and_key_by_pattern() {
    // Program-less fast-path artifacts are first-class in the grouping:
    // they share one `GroupKey::FastPath` batch (artifact identity plus
    // interpreter mode proves compatibility) and their kernel metrics
    // key on the recognized pattern. Each request builds its tensors
    // from scratch, so grouping here also exercises the content-identity
    // fallback — bit-identical arguments that share no storage.
    let fresh = || -> BTreeMap<String, Tensor> {
        [
            ("C".to_string(), Tensor::zeros(vec![4, 3])),
            (
                "A".to_string(),
                Tensor::from_vec(vec![3, 4], (0..12).map(|i| i as f32 - 5.5).collect()).unwrap(),
            ),
        ]
        .into_iter()
        .collect()
    };
    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(8)).unwrap();
    engine.pause();
    let session = engine.session("fast");
    let handles: Vec<_> = (0..3)
        .map(|_| session.submit("C[j,i] = A[i,j]", &fresh()).unwrap())
        .collect();
    engine.resume();
    for h in handles {
        let r = h.wait().unwrap();
        assert_eq!(r.batch_size, 3, "fast-path requests share one batch");
    }
    let m = engine.metrics();
    assert_eq!(m.registry.misses, 1, "one fast-path artifact, shared");
    assert_eq!(m.registry.hits, 2);
    assert!(
        m.kernels.contains_key("fastpath:transpose"),
        "kernel metrics key on the pattern (keys: {:?})",
        m.kernels.keys().collect::<Vec<_>>()
    );
}

#[test]
fn failing_request_does_not_poison_its_batch_mates() {
    // Three launch-compatible requests land in one batch; the middle one
    // scatters out of bounds at execution time. Its batch-mates must
    // still succeed with bit-identical results, and only it may fail.
    let good_a = spmm_request(31);
    let good_b = spmm_request(37);
    let mut poisoned = spmm_request(41);
    // Same shapes (same kernel + grid), but row indices far outside C.
    poisoned.insert(
        "AM".to_string(),
        Tensor::from_indices(vec![29], (0..29).map(|_| 1000).collect()).unwrap(),
    );
    let opts = InsumOptions::default();
    let want_a = insum_with(SPMM, &good_a, &opts)
        .unwrap()
        .run(&good_a)
        .unwrap();
    let want_b = insum_with(SPMM, &good_b, &opts)
        .unwrap()
        .run(&good_b)
        .unwrap();
    assert!(insum_with(SPMM, &poisoned, &opts)
        .unwrap()
        .run(&poisoned)
        .is_err());

    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(8)).unwrap();
    engine.pause();
    let session = engine.session("t");
    let ha = session.submit(SPMM, &good_a).unwrap();
    let hp = session.submit(SPMM, &poisoned).unwrap();
    let hb = session.submit(SPMM, &good_b).unwrap();
    engine.resume();

    let ra = ha.wait().expect("good request A succeeds");
    assert_eq!(ra.output.data(), want_a.0.data());
    assert_eq!(ra.profile, want_a.1);
    assert!(matches!(hp.wait(), Err(ServeError::Insum(_))));
    let rb = hb.wait().expect("good request B succeeds");
    assert_eq!(rb.output.data(), want_b.0.data());
    assert_eq!(rb.profile, want_b.1);

    let m = engine.metrics();
    assert_eq!(m.completed, 2);
    assert_eq!(m.failed, 1);
}

#[test]
fn per_request_options_and_unfused_pipeline_are_served() {
    let engine = ServeEngine::with_defaults().unwrap();
    let session = engine.session("t");
    let tensors = spmm_request(29);
    let unfused = InsumOptions::unfused();
    let want = insum_with(SPMM, &tensors, &unfused)
        .unwrap()
        .run(&tensors)
        .unwrap();
    let h = session
        .submit_with(
            SPMM,
            &tensors,
            &SubmitOptions::default().with_options(unfused),
        )
        .unwrap();
    let r = h.wait().unwrap();
    assert_eq!(r.output.data(), want.0.data());
    assert_eq!(r.profile, want.1);
    assert!(
        r.profile.launches() >= 3,
        "unfused pipeline launches per node"
    );

    // Invalid per-request options are rejected at admission.
    let bad = InsumOptions {
        sim_threads: Some(0),
        ..Default::default()
    };
    assert!(matches!(
        session.submit_with(SPMM, &tensors, &SubmitOptions::default().with_options(bad)),
        Err(ServeError::Config(_))
    ));
}

#[test]
fn panicking_batch_member_fails_alone_and_engine_survives() {
    // Inject a panic for one tenant at the execution boundary (the
    // simulator-bug stand-in). The panic must be contained: batch-mates
    // still succeed bit-identically, the panicking request fails with
    // ServeError::Engine, and the engine keeps serving afterwards.
    insum_serve::faults::set_panic_tenant(Some("evil"));
    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(8)).unwrap();
    engine.pause();
    let tensors = spmm_request(41);
    let good: Vec<_> = (0..3)
        .map(|i| {
            engine
                .session(&format!("good-{i}"))
                .submit(SPMM, &tensors)
                .unwrap()
        })
        .collect();
    let evil = engine.session("evil").submit(SPMM, &tensors).unwrap();
    engine.resume();

    let want = insum_with(SPMM, &tensors, &InsumOptions::default())
        .unwrap()
        .run(&tensors)
        .unwrap();
    for handle in good {
        let response = handle
            .wait()
            .expect("batch-mates of a panicking request succeed");
        assert_eq!(response.output.data(), want.0.data());
        assert_eq!(response.profile, want.1);
    }
    match evil.wait() {
        Err(ServeError::Engine(msg)) => assert!(msg.contains("injected fault")),
        other => panic!("expected ServeError::Engine, got {other:?}"),
    }
    insum_serve::faults::set_panic_tenant(None);

    // Unrelated tenants (and the formerly panicking one) are still served.
    let after = engine
        .session("evil")
        .submit(SPMM, &tensors)
        .unwrap()
        .wait()
        .expect("engine survives a contained panic");
    assert_eq!(after.output.data(), want.0.data());
    let m = engine.metrics();
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed, 4);
}

#[test]
fn ptr_identical_requests_group_without_metadata_extraction() {
    // Fan-out: many tenants submit the *same* tensor map (shared
    // copy-on-write handles). The ptr_eq first pass must put them in one
    // batch, and results stay bit-identical to serial runs.
    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(16)).unwrap();
    let tensors = spmm_request(57);
    let want = insum_with(SPMM, &tensors, &InsumOptions::default())
        .unwrap()
        .run(&tensors)
        .unwrap();
    engine.pause();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            engine
                .session(&format!("fan-{i}"))
                .submit(SPMM, &tensors)
                .unwrap()
        })
        .collect();
    engine.resume();
    for handle in handles {
        let response = handle.wait().unwrap();
        assert_eq!(response.output.data(), want.0.data());
        assert_eq!(response.profile, want.1);
        assert!(response.batch_size > 1, "fan-out must batch");
    }
    let m = engine.metrics();
    assert_eq!(m.completed, 6);
}

#[test]
fn panicking_compilation_is_contained_and_transient() {
    // A compiler panic must fill the registry slot (so no waiter or
    // future same-key request can block forever), complete the ticket
    // with ServeError::Engine, and leave the engine serving.
    let expr = "C[i] = A[i] * A[i]";
    insum_serve::faults::set_panic_compile_expr(Some(expr));
    let engine = ServeEngine::with_defaults().unwrap();
    let tensors: BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![8])),
        ("A".to_string(), Tensor::ones(vec![8])),
    ]
    .into_iter()
    .collect();
    let session = engine.session("compile-panic");
    match session.submit(expr, &tensors).unwrap().wait() {
        Err(ServeError::Engine(msg)) => assert!(msg.contains("compilation panicked")),
        other => panic!("expected ServeError::Engine, got {other:?}"),
    }
    // Unlike deterministic compile errors, a panic is *transient*: its
    // registry entry is evicted, so once the fault clears a resubmit
    // recompiles and succeeds instead of replaying a cached panic.
    insum_serve::faults::set_panic_compile_expr(None);
    let recovered = session
        .submit(expr, &tensors)
        .unwrap()
        .wait()
        .expect("recompilation succeeds after the fault clears");
    assert!(recovered.output.data().iter().all(|&v| v == 1.0));
    // Unrelated keys still compile and serve.
    let ok = session
        .submit("C[i] = A[i]", &tensors)
        .unwrap()
        .wait()
        .expect("engine survives a contained compile panic");
    assert!(ok.output.data().iter().all(|&v| v == 1.0));
    let m = engine.metrics();
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed, 2);
}

const CHAIN4: &str = "O[i,m] = A[i,j] * B[j,k] * C[k,l] * D[l,m]";

/// Integer-valued chain operands (values in {-2..2}) so every
/// contraction order is bit-exact; see the planner crate docs.
fn chain_request(seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut int = |shape: Vec<usize>| rand_uniform(shape, -2.49, 2.49, &mut rng).map(f32::round);
    [
        ("A".to_string(), int(vec![24, 16])),
        ("B".to_string(), int(vec![16, 3])),
        ("C".to_string(), int(vec![3, 16])),
        ("D".to_string(), int(vec![16, 20])),
    ]
    .into_iter()
    .collect()
}

#[test]
fn chain_requests_share_one_planned_artifact_and_batch_per_step() {
    // Two tenants submit the same 4-operand chain: the registry compiles
    // the plan (every pairwise step) exactly once, the scheduler batches
    // the requests through each step, and both responses are
    // bit-identical to a serial `CompiledChain::run` and the naive
    // left-to-right reference.
    let tensors = chain_request(61);
    let opts = InsumOptions::default();
    let chain = insum::plan(CHAIN4, &tensors, &opts).unwrap();
    let (want_out, want_profile) = chain.run(&tensors).unwrap();
    let reference = insum::chain_reference(CHAIN4, &tensors).unwrap();
    assert_eq!(want_out.data(), reference.data(), "planned == naive bits");

    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(8)).unwrap();
    engine.pause();
    let ha = engine.session("alice").submit(CHAIN4, &tensors).unwrap();
    let hb = engine.session("bob").submit(CHAIN4, &tensors).unwrap();
    engine.resume();
    let ra = ha.wait().unwrap();
    let rb = hb.wait().unwrap();
    for r in [&ra, &rb] {
        assert_eq!(r.output.data(), want_out.data());
        assert_eq!(r.profile, want_profile);
        assert_eq!(r.batch_size, 2, "chain requests batch per step");
    }
    assert!(!ra.registry_hit || !rb.registry_hit);
    assert!(ra.registry_hit || rb.registry_hit);

    let m = engine.metrics();
    assert_eq!(m.completed, 2);
    assert_eq!(m.registry.misses, 1, "the plan compiled once");
    assert_eq!(m.registry.hits, 1);
    // The chain is one kernel identity in the metrics.
    assert_eq!(m.kernels.len(), 1);
    let (key, km) = m.kernels.iter().next().unwrap();
    assert!(key.starts_with("chain["), "chain kernel key: {key}");
    assert_eq!(km.requests, 2);
}

#[test]
fn chain_analytic_mode_skips_values_but_keeps_the_profile() {
    let tensors = chain_request(67);
    let opts = InsumOptions::default();
    let chain = insum::plan(CHAIN4, &tensors, &opts).unwrap();
    let (_, want_profile) = chain.run(&tensors).unwrap();

    let engine = ServeEngine::with_defaults().unwrap();
    let session = engine.session("t");
    let r = session
        .submit_with(
            CHAIN4,
            &tensors,
            &SubmitOptions::default().with_mode(Mode::Analytic),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(r.profile, want_profile, "analytic profile matches execute");
}

#[test]
fn chain_spec_form_and_statement_form_are_distinct_artifacts() {
    // Spec form binds positional names; statement form binds user names.
    // Different expressions → different registry keys, both served.
    let tensors = chain_request(71);
    let spec_tensors: BTreeMap<String, Tensor> = [
        ("op0".to_string(), tensors["A"].clone()),
        ("op1".to_string(), tensors["B"].clone()),
        ("op2".to_string(), tensors["C"].clone()),
        ("op3".to_string(), tensors["D"].clone()),
    ]
    .into_iter()
    .collect();
    let engine = ServeEngine::with_defaults().unwrap();
    let session = engine.session("t");
    let r1 = session.submit(CHAIN4, &tensors).unwrap().wait().unwrap();
    let r2 = session
        .submit("ij,jk,kl,lm->im", &spec_tensors)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(r1.output.data(), r2.output.data());
    assert_eq!(engine.metrics().registry.misses, 2);
}
