//! Deterministic lifecycle behavior on the injectable [`TestClock`]:
//! deadlines, cancellation, retries with backoff, cost budgets, the
//! circuit breaker, and metrics reconciliation. Virtual time only moves
//! when a test advances it, so every timed path runs instantly and
//! without flakiness.

use insum::{insum_with, InsumOptions, Tensor};
use insum_serve::{
    AdmissionPolicy, CostBudget, ServeConfig, ServeEngine, ServeError, SubmitOptions, TestClock,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Serializes tests that arm the process-global targeted faults
/// (`set_panic_tenant` is a single slot; concurrent arming would
/// clobber).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const EXPR: &str = "C[i] = A[i] * A[i]";

fn request(fill: f32) -> BTreeMap<String, Tensor> {
    [
        ("C".to_string(), Tensor::zeros(vec![16])),
        (
            "A".to_string(),
            Tensor::from_vec(vec![16], vec![fill; 16]).unwrap(),
        ),
    ]
    .into_iter()
    .collect()
}

fn oracle(expr: &str, tensors: &BTreeMap<String, Tensor>) -> Tensor {
    insum_with(expr, tensors, &InsumOptions::default())
        .unwrap()
        .run(tensors)
        .unwrap()
        .0
}

/// Poll `f` every millisecond until it returns `Some`, with a real-time
/// bound so a wedged engine fails the test instead of hanging it.
fn poll_until<T>(what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn deadlines_expire_on_the_test_clock_even_while_paused() {
    let clock = TestClock::new();
    let engine = ServeEngine::with_clock(ServeConfig::default(), Arc::clone(&clock) as _).unwrap();
    engine.pause();
    let tensors = request(2.0);
    let session = engine.session("deadline-t");
    let dl = session
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_deadline(Duration::from_secs(5)),
        )
        .unwrap();
    let ok = session.submit(EXPR, &tensors).unwrap();

    // Virtual time reaches the deadline while the engine is paused: the
    // scheduler must expire the request anyway — expiry never waits for
    // resume — while the deadline-less request stays queued.
    clock.advance(Duration::from_secs(5));
    match dl.wait() {
        Err(ServeError::DeadlineExceeded { deadline }) => {
            assert_eq!(deadline, Duration::from_secs(5));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let m = poll_until("expiry metrics", || {
        let m = engine.metrics();
        (m.deadline_expired == 1).then_some(m)
    });
    assert_eq!(m.tenants["deadline-t"].deadline_expired, 1);
    assert_eq!(m.completed, 0);
    assert_eq!(
        m.failed, 0,
        "expiry is its own terminal state, not a failure"
    );

    engine.resume();
    let r = ok.wait().expect("deadline-less request survives the pause");
    assert_eq!(r.output.data(), oracle(EXPR, &tensors).data());
}

#[test]
fn cancel_frees_queue_capacity_and_always_resolves() {
    let clock = TestClock::new();
    let config = ServeConfig::default()
        .with_queue_capacity(2)
        .with_admission(AdmissionPolicy::Reject);
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    engine.pause();
    let tensors = request(3.0);
    let session = engine.session("cancel-t");
    let h1 = session.submit(EXPR, &tensors).unwrap();
    let h2 = session.submit(EXPR, &tensors).unwrap();
    match session.submit(EXPR, &tensors) {
        Err(ServeError::Saturated { capacity: 2 }) => {}
        other => panic!("expected Saturated, got {other:?}"),
    }

    // Cancelling a queued request frees its admission slot immediately
    // (no scheduler involvement — the engine is paused throughout).
    assert!(h1.cancel(), "first cancel wins");
    assert!(!h1.cancel(), "second cancel is a no-op");
    let h3 = session
        .submit(EXPR, &tensors)
        .expect("cancellation freed the slot");
    match h1.wait() {
        Err(ServeError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }

    engine.resume();
    let r2 = h2.wait().expect("uncancelled request completes");
    assert_eq!(r2.output.data(), oracle(EXPR, &tensors).data());

    // Cancel after completion: the delivered result stands.
    let _ = poll_until("h3 completion", || h3.try_take());
    assert!(!h3.cancel(), "completed request cannot be cancelled");

    let m = engine.metrics();
    assert_eq!(m.cancelled, 1);
    assert_eq!(m.tenants["cancel-t"].cancelled, 1);
    assert_eq!(m.completed, 2);
    assert_eq!(m.submitted, 3, "the rejected submit was never admitted");
    assert_eq!(m.rejected, 1);
}

#[test]
fn transient_panics_retry_with_backoff_and_never_change_bits() {
    let _guard = fault_guard();
    let clock = TestClock::new();
    let config =
        ServeConfig::default().with_retry_backoff(Duration::from_secs(1), Duration::from_secs(8));
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.5);
    let want = oracle(EXPR, &tensors);

    insum_serve::faults::set_panic_tenant(Some("retry-t"));
    let handle = engine
        .session("retry-t")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_max_retries(3),
        )
        .unwrap();

    // Attempt #1 panics and requeues with a 1s (virtual) backoff. The
    // retry cannot run until the clock advances, so disarming here is
    // race-free: attempt #2 deterministically succeeds.
    poll_until("first retry to be scheduled", || {
        (engine.metrics().retries == 1).then_some(())
    });
    insum_serve::faults::set_panic_tenant(None);
    assert!(handle.try_take().is_none(), "handle pends through backoff");
    clock.advance(Duration::from_secs(1));

    let r = handle
        .wait()
        .expect("retry succeeds after the fault clears");
    assert_eq!(r.attempts, 2, "second attempt delivered");
    assert_eq!(r.output.data(), want.data(), "retries never change bits");
    let m = engine.metrics();
    assert_eq!(m.retries, 1);
    assert_eq!(m.tenants["retry-t"].retries, 1);
    assert_eq!((m.completed, m.failed), (1, 0));
}

#[test]
fn exhausted_retries_fail_terminally() {
    let _guard = fault_guard();
    let clock = TestClock::new();
    let config = ServeConfig::default()
        .with_retry_backoff(Duration::from_millis(10), Duration::from_millis(40));
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.0);

    insum_serve::faults::set_panic_tenant(Some("doomed-t"));
    let handle = engine
        .session("doomed-t")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_max_retries(2),
        )
        .unwrap();
    // Drive all three attempts (initial + 2 retries) through their
    // backoff gates; 40ms strides cover the capped exponential backoff.
    let result = poll_until("terminal failure", || {
        clock.advance(Duration::from_millis(40));
        handle.try_take()
    });
    insum_serve::faults::set_panic_tenant(None);
    match result {
        Err(ServeError::Engine(msg)) => assert!(msg.contains("injected fault")),
        other => panic!("expected Engine error, got {other:?}"),
    }
    let m = engine.metrics();
    assert_eq!(m.retries, 2, "both allowed retries were spent");
    assert_eq!((m.completed, m.failed), (0, 1));
}

#[test]
fn budgets_reject_when_exhausted_and_recover_on_refill() {
    let clock = TestClock::new();
    let config = ServeConfig::default().with_budget(
        "greedy",
        CostBudget {
            capacity: 1,
            refill_per_second: 1,
        },
    );
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(2.5);
    let session = engine.session("greedy");

    // The first request is in budget (full bucket) and executes; its
    // deterministic cost overdraws the 1-unit bucket far past a full
    // capacity, so the next request is rejected outright.
    let r1 = session.submit(EXPR, &tensors).unwrap().wait().unwrap();
    assert_eq!(r1.output.data(), oracle(EXPR, &tensors).data());
    let units = engine.metrics().tenants["greedy"].cost_units;
    assert!(units > 1, "a real launch costs more than the bucket holds");

    match session.submit(EXPR, &tensors).unwrap().wait() {
        Err(ServeError::BudgetExhausted { tenant }) => assert_eq!(tenant, "greedy"),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }

    // An unbudgeted tenant is untouched by the greedy tenant's debt.
    let r = engine
        .session("free")
        .submit(EXPR, &tensors)
        .unwrap()
        .wait();
    assert!(r.is_ok());

    // Refill at 1 unit/s: after `units` virtual seconds the balance is
    // back at zero and the tenant serves again.
    clock.advance(Duration::from_secs(units + 1));
    let r3 = session.submit(EXPR, &tensors).unwrap().wait();
    assert!(r3.is_ok(), "budget refilled: {r3:?}");

    let m = engine.metrics();
    assert_eq!(m.budget_rejected, 1);
    assert_eq!(m.tenants["greedy"].budget_rejected, 1);
    assert_eq!(m.tenants["greedy"].completed, 2);
    assert_eq!(m.tenants["greedy"].cost_units, 2 * units);
}

#[test]
fn circuit_breaker_quarantines_and_recovers_through_a_probe() {
    let _guard = fault_guard();
    let clock = TestClock::new();
    let config = ServeConfig::default().with_breaker(2, Duration::from_secs(10));
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(4.0);
    let session = engine.session("flaky");

    insum_serve::faults::set_panic_tenant(Some("flaky"));
    for _ in 0..2 {
        match session.submit(EXPR, &tensors).unwrap().wait() {
            Err(ServeError::Engine(_)) => {}
            other => panic!("expected Engine failure, got {other:?}"),
        }
    }
    // Two consecutive failures tripped the breaker: quarantined.
    match session.submit(EXPR, &tensors).unwrap().wait() {
        Err(ServeError::Quarantined { tenant }) => assert_eq!(tenant, "flaky"),
        other => panic!("expected Quarantined, got {other:?}"),
    }
    // Healthy tenants are unaffected by the quarantine.
    assert!(engine
        .session("healthy")
        .submit(EXPR, &tensors)
        .unwrap()
        .wait()
        .is_ok());

    // Cooldown elapses; the fault is fixed; the half-open probe succeeds
    // and closes the breaker.
    insum_serve::faults::set_panic_tenant(None);
    clock.advance(Duration::from_secs(10));
    let probe = session.submit(EXPR, &tensors).unwrap().wait();
    assert!(probe.is_ok(), "half-open probe recovers: {probe:?}");
    assert!(session.submit(EXPR, &tensors).unwrap().wait().is_ok());

    let m = engine.metrics();
    assert_eq!(m.quarantined, 1);
    assert_eq!(m.tenants["flaky"].quarantined, 1);
    assert_eq!(m.tenants["flaky"].breaker_open_transitions, 1);
    assert_eq!(m.tenants["flaky"].failed, 2);
    assert_eq!(m.tenants["flaky"].completed, 2);
}

#[test]
fn chain_step_fault_does_not_poison_batch_mates() {
    // A mid-plan fault: the `fault-injection` hook inside the batched
    // runner panics any launch binding the marked tensor, so the *chain
    // step* shared by two batched requests faults — not serve's outer
    // execute boundary. Isolation must still hold: the clean tenant's
    // chain completes bit-identical, only the marked tenant fails.
    const CHAIN: &str = "O[i,m] = A[i,j] * B[j,k] * C[k,l] * D[l,m]";
    let mk = |seed: u64| -> BTreeMap<String, Tensor> {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut int = |shape: Vec<usize>| {
            insum_tensor::rand_uniform(shape, -2.49, 2.49, &mut rng).map(f32::round)
        };
        [
            ("A".to_string(), int(vec![24, 16])),
            ("B".to_string(), int(vec![16, 3])),
            ("C".to_string(), int(vec![3, 16])),
            ("D".to_string(), int(vec![16, 20])),
        ]
        .into_iter()
        .collect()
    };
    let good = mk(81);
    let evil = mk(82);
    let opts = InsumOptions::default();
    let (want_good, want_good_profile) = insum::plan(CHAIN, &good, &opts)
        .unwrap()
        .run(&good)
        .unwrap();

    // Mark the evil tenant's step-1 operand: the batched step launch
    // that binds it panics mid-plan.
    insum_inductor::faults::set_panic_binding(Some(&evil["A"]));
    let engine = ServeEngine::with_defaults().unwrap();
    engine.pause();
    let hg = engine.session("clean").submit(CHAIN, &good).unwrap();
    let he = engine.session("marked").submit(CHAIN, &evil).unwrap();
    engine.resume();

    let rg = hg.wait().expect("clean tenant survives the step fault");
    assert_eq!(rg.output.data(), want_good.data());
    assert_eq!(rg.profile, want_good_profile);
    assert_eq!(rg.batch_size, 1, "isolation re-ran the clean chain alone");
    match he.wait() {
        Err(ServeError::Engine(msg)) => assert!(msg.contains("injected batch fault")),
        other => panic!("expected Engine error, got {other:?}"),
    }

    // Disarm: the marked tenant's chain now completes normally.
    insum_inductor::faults::set_panic_binding(None);
    let (want_evil, _) = insum::plan(CHAIN, &evil, &opts)
        .unwrap()
        .run(&evil)
        .unwrap();
    let re = engine
        .session("marked")
        .submit(CHAIN, &evil)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(re.output.data(), want_evil.data());
}

#[test]
fn metrics_reconcile_at_quiescence() {
    let clock = TestClock::new();
    let config = ServeConfig::default().with_budget(
        "greedy",
        CostBudget {
            capacity: 1,
            refill_per_second: 1,
        },
    );
    let engine = ServeEngine::with_clock(config, Arc::clone(&clock) as _).unwrap();
    let tensors = request(1.0);

    // A mix of terminal outcomes: completions, a cancellation, a
    // deadline expiry, a budget rejection, and a deterministic failure.
    for _ in 0..3 {
        engine
            .session("steady")
            .submit(EXPR, &tensors)
            .unwrap()
            .wait()
            .unwrap();
    }
    engine.pause();
    let cancelled = engine.session("steady").submit(EXPR, &tensors).unwrap();
    assert!(cancelled.cancel());
    let expired = engine
        .session("late")
        .submit_with(
            EXPR,
            &tensors,
            &SubmitOptions::default().with_deadline(Duration::from_secs(1)),
        )
        .unwrap();
    clock.advance(Duration::from_secs(1));
    assert!(matches!(
        expired.wait(),
        Err(ServeError::DeadlineExceeded { .. })
    ));
    engine.resume();
    engine
        .session("greedy")
        .submit(EXPR, &tensors)
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(
        engine
            .session("greedy")
            .submit(EXPR, &tensors)
            .unwrap()
            .wait(),
        Err(ServeError::BudgetExhausted { .. })
    ));
    assert!(engine
        .session("steady")
        .submit("C[i] ?= A[i]", &tensors)
        .unwrap()
        .wait()
        .is_err());

    // Every admitted request landed in exactly one terminal counter.
    let m = engine.metrics();
    assert_eq!(m.queue_depth, 0);
    assert_eq!(
        m.submitted,
        m.completed
            + m.failed
            + m.cancelled
            + m.deadline_expired
            + m.budget_rejected
            + m.quarantined,
        "global books reconcile: {m:?}"
    );
    for (tenant, t) in &m.tenants {
        assert_eq!(
            t.submitted,
            t.completed
                + t.failed
                + t.cancelled
                + t.deadline_expired
                + t.budget_rejected
                + t.quarantined,
            "tenant {tenant} books reconcile: {t:?}"
        );
    }
    // And the tenant breakdown sums to the global counters.
    let sum =
        |f: fn(&insum_serve::TenantMetrics) -> u64| -> u64 { m.tenants.values().map(f).sum() };
    assert_eq!(m.submitted, sum(|t| t.submitted));
    assert_eq!(m.completed, sum(|t| t.completed));
    assert_eq!(m.failed, sum(|t| t.failed));
    assert_eq!(m.cancelled, sum(|t| t.cancelled));
    assert_eq!(m.deadline_expired, sum(|t| t.deadline_expired));
    assert_eq!(m.budget_rejected, sum(|t| t.budget_rejected));
}
