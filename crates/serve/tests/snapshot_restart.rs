//! Warm-restart integration: a cold engine persists its compiled
//! programs through [`ServeConfig::with_snapshot`]; a rebooted engine
//! warm-starts from the file and serves the same replay bit-identically
//! with zero programs lowered.
//!
//! Both tests reboot through the process-wide
//! [`ProgramCache::global`]/[`AutotuneCache::global`], so they serialize
//! on one lock (this integration binary is its own process, so no other
//! test can observe the cleared globals).

use insum_inductor::{AutotuneCache, ProgramCache};
use insum_serve::{ServeConfig, ServeEngine, TestClock};
use insum_tensor::Tensor;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

static GLOBAL_CACHES: Mutex<()> = Mutex::new(());

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("insum_serve_restart_{tag}_{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic two-expression replay: a matvec and an indirect
/// (gather-scatter) einsum, so the snapshot carries more than one
/// program. (Both classify `General` — fast-path artifacts lower no
/// programs and would leave nothing to persist.)
fn workload() -> Vec<(&'static str, BTreeMap<String, Tensor>)> {
    let matvec: BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![8])),
        (
            "A".to_string(),
            Tensor::from_vec(vec![8, 8], (0..64).map(|i| i as f32 * 0.31 - 7.0).collect()).unwrap(),
        ),
        (
            "V".to_string(),
            Tensor::from_vec(vec![8], (0..8).map(|i| i as f32 * 0.5 - 1.3).collect()).unwrap(),
        ),
    ]
    .into_iter()
    .collect();
    let nnz = 12;
    let spmm: BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![16, 8])),
        (
            "AM".to_string(),
            Tensor::from_vec(vec![nnz], (0..nnz).map(|p| ((p * 5) % 16) as f32).collect()).unwrap(),
        ),
        (
            "AK".to_string(),
            Tensor::from_vec(vec![nnz], (0..nnz).map(|p| ((p * 3) % 8) as f32).collect()).unwrap(),
        ),
        (
            "AV".to_string(),
            Tensor::from_vec(vec![nnz], (0..nnz).map(|p| p as f32 * 0.17 - 0.9).collect()).unwrap(),
        ),
        (
            "B".to_string(),
            Tensor::from_vec(vec![8, 8], (0..64).map(|i| (i as f32).sin()).collect()).unwrap(),
        ),
    ]
    .into_iter()
    .collect();
    vec![
        ("C[i] = A[i,j] * V[j]", matvec),
        ("C[AM[p],n] += AV[p] * B[AK[p],n]", spmm),
    ]
}

/// Submit the whole workload and return each response's output bits.
fn replay(engine: &ServeEngine) -> Vec<Vec<u32>> {
    let session = engine.session("restart-tenant");
    workload()
        .iter()
        .map(|(expr, tensors)| {
            let response = session.submit(expr, tensors).unwrap().wait().unwrap();
            response.output.data().iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

#[test]
fn warm_restart_is_bit_identical_with_zero_programs_lowered() {
    let _guard = GLOBAL_CACHES.lock().unwrap();
    let dir = tmp_dir("roundtrip");
    let path = dir.join("serve.snap");
    let config = ServeConfig::default().with_snapshot(&path);

    // Cold boot: the snapshot file doesn't exist yet, so this is a plain
    // cold start that compiles everything and persists it at shutdown.
    ProgramCache::global().clear();
    AutotuneCache::global().clear();
    let mut cold_engine = ServeEngine::new(config.clone()).unwrap();
    let cold = replay(&cold_engine);
    let cold_stats = ProgramCache::global().stats();
    assert!(cold_stats.compiles >= 2, "cold boot lowers the workload");
    assert_eq!(cold_stats.snapshot_seeded, 0);
    cold_engine.shutdown();
    let m = cold_engine.metrics();
    assert!(m.snapshot_writes >= 1, "drain/shutdown write happened");
    assert_eq!(m.warm_start_hits, 0, "nothing to warm-hit on a cold boot");
    assert_eq!(
        m.registry.warm_misses, 0,
        "cold misses lowered programs, so none classify warm"
    );
    assert!(path.exists());
    drop(cold_engine);

    // Reboot: clear the process-wide caches (this test binary owns the
    // process) and warm-start from the file.
    ProgramCache::global().clear();
    AutotuneCache::global().clear();
    let mut warm_engine = ServeEngine::new(config).unwrap();
    let boot_stats = ProgramCache::global().stats();
    assert!(
        boot_stats.snapshot_seeded >= 2,
        "warm boot seeds the workload's programs"
    );
    assert_eq!(boot_stats.snapshot_rejected, 0, "pristine file, no damage");
    let warm = replay(&warm_engine);
    assert_eq!(warm, cold, "warm responses are bit-identical");
    let warm_stats = ProgramCache::global().stats();
    assert_eq!(
        warm_stats.compiles, boot_stats.compiles,
        "zero programs lowered on the warm replay"
    );
    assert!(
        warm_stats.warm_hits >= 2,
        "seeded entries served the replay"
    );
    let m = warm_engine.metrics();
    assert!(m.warm_start_hits >= 2);
    assert_eq!(m.snapshot_rejected, 0);
    assert!(m.registry.misses >= 2, "artifacts still compile per boot");
    assert_eq!(
        m.registry.warm_misses, m.registry.misses,
        "every registry miss was served from snapshot-seeded programs"
    );
    warm_engine.shutdown();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn cadence_writes_follow_the_engine_clock() {
    let _guard = GLOBAL_CACHES.lock().unwrap();
    let dir = tmp_dir("cadence");
    let path = dir.join("serve.snap");
    ProgramCache::global().clear();
    AutotuneCache::global().clear();
    let clock = TestClock::new();
    let config = ServeConfig::default()
        .with_snapshot(&path)
        .with_snapshot_interval(Duration::from_secs(1));
    let mut engine = ServeEngine::with_clock(config, clock.clone()).unwrap();
    let session = engine.session("cadence-tenant");
    let (expr, tensors) = &workload()[0];

    // At clock time 0 the interval hasn't elapsed: no cadence write.
    session.submit(expr, tensors).unwrap().wait().unwrap();
    assert_eq!(engine.metrics().snapshot_writes, 0);

    // Past the interval, the next drained window flushes a snapshot.
    clock.advance(Duration::from_secs(2));
    session.submit(expr, tensors).unwrap().wait().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while engine.metrics().snapshot_writes == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        engine.metrics().snapshot_writes >= 1,
        "cadence write before shutdown"
    );
    assert!(path.exists());

    engine.shutdown();
    assert!(
        engine.metrics().snapshot_writes >= 2,
        "drain/shutdown adds a final write"
    );
    fs::remove_dir_all(&dir).ok();
}
