//! Chaos harness: a seeded [`insum_serve::faults::FaultPlan`] injects
//! compile panics, execute panics, latency, and budget spikes across a
//! randomized request mix while the properties that define the engine
//! hold: every handle resolves, every survivor is bit-identical to its
//! serial oracle, every failure is from the allowed set, and the books
//! reconcile.

use insum::{insum_with, InsumOptions, Tensor};
use insum_serve::faults::FaultPlan;
use insum_serve::{ServeConfig, ServeEngine, ServeError, SubmitOptions};
use insum_tensor::{rand_uniform, randint};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The fault plan is process-global (`set_plan` governs every engine in
/// the process), so chaos tests in this binary must not overlap.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

fn plan_guard() -> MutexGuard<'static, ()> {
    PLAN_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const SPMM: &str = "C[AM[p],n] += AV[p] * B[AK[p],n]";
const MATMUL: &str = "C[y,x] = A[y,r] * B[r,x]";

fn spmm_request(seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nnz = 29;
    [
        ("C".to_string(), Tensor::zeros(vec![16, 32])),
        ("AM".to_string(), randint(vec![nnz], 16, &mut rng)),
        ("AK".to_string(), randint(vec![nnz], 24, &mut rng)),
        (
            "AV".to_string(),
            rand_uniform(vec![nnz], -1.0, 1.0, &mut rng),
        ),
        (
            "B".to_string(),
            rand_uniform(vec![24, 32], -1.0, 1.0, &mut rng),
        ),
    ]
    .into_iter()
    .collect()
}

fn matmul_request(seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    [
        ("C".to_string(), Tensor::zeros(vec![24, 20])),
        (
            "A".to_string(),
            rand_uniform(vec![24, 12], -1.0, 1.0, &mut rng),
        ),
        (
            "B".to_string(),
            rand_uniform(vec![12, 20], -1.0, 1.0, &mut rng),
        ),
    ]
    .into_iter()
    .collect()
}

struct Expected {
    expr: &'static str,
    tensors: BTreeMap<String, Tensor>,
    output: Tensor,
    deadline: Option<Duration>,
    cancelled_by_us: bool,
}

/// Poll every handle to resolution with a generous real-time bound: a
/// handle that never resolves is a wedged engine, the worst chaos
/// outcome, and must fail loudly rather than hang the suite.
fn drain(
    handles: Vec<(insum_serve::ResponseHandle, Expected)>,
) -> Vec<(Result<insum_serve::Response, ServeError>, Expected)> {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut pending: Vec<_> = handles.into_iter().map(|(h, e)| (h, e, None)).collect();
    loop {
        for (handle, _, slot) in &mut pending {
            if slot.is_none() {
                *slot = handle.try_take();
            }
        }
        if pending.iter().all(|(_, _, slot)| slot.is_some()) {
            return pending
                .into_iter()
                .map(|(_, e, slot)| (slot.unwrap(), e))
                .collect();
        }
        assert!(
            Instant::now() < deadline,
            "wedged handles: {} of {} never resolved",
            pending.iter().filter(|(_, _, s)| s.is_none()).count(),
            pending.len()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn seeded_chaos_preserves_bit_identity_and_resolves_every_handle() {
    let _guard = plan_guard();
    for seed in [7, 1234] {
        insum_serve::faults::set_plan(Some(FaultPlan {
            seed,
            exec_panic_per_mille: 150,
            compile_panic_per_mille: 100,
            latency_per_mille: 100,
            latency: Duration::from_millis(1),
            budget_spike_per_mille: 50,
            budget_spike_units: 1_000,
        }));
        let config = ServeConfig::default()
            .with_retry_backoff(Duration::from_millis(1), Duration::from_millis(20))
            .with_breaker(5, Duration::from_millis(50));
        let engine = ServeEngine::new(config).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ffee);

        let mut handles = Vec::new();
        for i in 0..32u64 {
            let (expr, tensors) = if rng.gen_bool(0.5) {
                (SPMM, spmm_request(seed * 100 + i))
            } else {
                (MATMUL, matmul_request(seed * 100 + i))
            };
            // The oracle is the whole point of chaos: whatever faults,
            // retries, and reordering happen, a delivered response must
            // be bit-identical to this serial run.
            let (output, _) = insum_with(expr, &tensors, &InsumOptions::default())
                .unwrap()
                .run(&tensors)
                .unwrap();
            let deadline = match rng.gen_range(0..4) {
                0 => Some(Duration::ZERO),
                1 => Some(Duration::from_secs(60)),
                _ => None,
            };
            let mut opts = SubmitOptions::default()
                .with_max_retries(rng.gen_range(0..=3))
                .with_priority(rng.gen_range(-1..=1));
            if let Some(d) = deadline {
                opts = opts.with_deadline(d);
            }
            let tenant = format!("tenant-{}", i % 4);
            let handle = engine
                .session(&tenant)
                .submit_with(expr, &tensors, &opts)
                .unwrap();
            let cancelled_by_us = rng.gen_range(0..8) == 0 && handle.cancel();
            handles.push((
                handle,
                Expected {
                    expr,
                    tensors,
                    output,
                    deadline,
                    cancelled_by_us,
                },
            ));
        }

        let mut completed = 0usize;
        for (result, expected) in drain(handles) {
            match result {
                Ok(response) => {
                    assert!(
                        !expected.cancelled_by_us,
                        "a won cancel cannot also deliver"
                    );
                    assert_eq!(
                        response.output.data(),
                        expected.output.data(),
                        "survivor of {} diverged from its serial oracle",
                        expected.expr
                    );
                    let (_, want_profile) =
                        insum_with(expected.expr, &expected.tensors, &InsumOptions::default())
                            .unwrap()
                            .run(&expected.tensors)
                            .unwrap();
                    assert_eq!(response.profile, want_profile);
                    completed += 1;
                }
                Err(ServeError::Cancelled) => {
                    assert!(expected.cancelled_by_us, "only our cancels may cancel");
                }
                Err(ServeError::DeadlineExceeded { .. }) => {
                    assert!(expected.deadline.is_some(), "expiry needs a deadline");
                }
                Err(ServeError::Engine(_)) | Err(ServeError::Quarantined { .. }) => {
                    // Injected panics past their retry budget, or a
                    // tenant the breaker quarantined after repeated
                    // injected failures. Both are allowed under chaos.
                }
                Err(other) => panic!("forbidden failure under chaos: {other:?}"),
            }
        }
        assert!(completed > 0, "chaos must not starve every request");

        // Quiescent books reconcile even under injected faults.
        let m = engine.metrics();
        assert_eq!(m.queue_depth, 0);
        assert_eq!(
            m.submitted,
            m.completed
                + m.failed
                + m.cancelled
                + m.deadline_expired
                + m.budget_rejected
                + m.quarantined,
            "chaos books reconcile: {m:?}"
        );
        drop(engine);
    }
    insum_serve::faults::set_plan(None);
}

#[test]
fn zero_rate_plan_is_a_no_op() {
    let _guard = plan_guard();
    insum_serve::faults::set_plan(Some(FaultPlan {
        seed: 99,
        ..FaultPlan::default()
    }));
    let engine = ServeEngine::with_defaults().unwrap();
    let mut handles = Vec::new();
    for i in 0..8u64 {
        let tensors = spmm_request(9000 + i);
        let (want, _) = insum_with(SPMM, &tensors, &InsumOptions::default())
            .unwrap()
            .run(&tensors)
            .unwrap();
        let handle = engine.session("calm").submit(SPMM, &tensors).unwrap();
        handles.push((handle, want));
    }
    for (handle, want) in handles {
        let response = handle.wait().expect("zero-rate plan injects nothing");
        assert_eq!(response.output.data(), want.data());
        assert_eq!(response.attempts, 1);
    }
    insum_serve::faults::set_plan(None);
}
