//! The serving engine: admission, lifecycle, and observability.

use crate::clock::{Clock, SystemClock};
use crate::config::{AdmissionPolicy, ServeConfig, SubmitOptions};
use crate::error::ServeError;
use crate::metrics::{MetricsInner, MetricsSnapshot};
use crate::registry::ArtifactRegistry;
use crate::scheduler;
use crate::session::{RequestId, ResponseHandle, Session, TicketInner};
use insum::{InsumOptions, Mode, Tensor};
use insum_inductor::ProgramCache;
use insum_telemetry::{FlightRecorder, Phase, RecordedTrace, Trace, TraceOutcome};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Acquire a lock, recovering the guard if a previous holder panicked.
///
/// Every engine panic site is isolated (`scheduler::execute_batch`
/// catches unwinds at the execution boundary), and the guarded state —
/// queues and counters — is kept consistent at every point a panic can
/// unwind through, so a poisoned guard is safe to reuse. Recovering here
/// means one panicking request can never take down unrelated tenants via
/// cascading `PoisonError` panics in `submit`/`metrics`/`shutdown`.
pub(crate) fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`relock`].
pub(crate) fn rewait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`] with the same poison recovery as
/// [`relock`] (the timeout flag is dropped: callers re-check their
/// predicates either way).
pub(crate) fn rewait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> MutexGuard<'a, T> {
    cv.wait_timeout(guard, dur)
        .map(|(g, _)| g)
        .unwrap_or_else(|e| e.into_inner().0)
}

/// One admitted, not-yet-executed request.
pub(crate) struct Pending {
    pub(crate) id: u64,
    pub(crate) tenant: Arc<str>,
    pub(crate) expr: String,
    pub(crate) tensors: BTreeMap<String, Tensor>,
    pub(crate) options: InsumOptions,
    pub(crate) mode: Mode,
    /// Admission stamp on the engine clock.
    pub(crate) submitted_at: Duration,
    /// Absolute expiry on the engine clock (admission + the relative
    /// deadline from [`SubmitOptions::deadline`]); `None` never expires.
    pub(crate) deadline: Option<Duration>,
    pub(crate) max_retries: u32,
    pub(crate) priority: i32,
    /// Zero-based attempt counter; incremented each time a transient
    /// failure requeues the request.
    pub(crate) attempt: u32,
    /// Backoff gate: the scheduler leaves the request queued until this
    /// clock stamp (ignored when the engine is draining for shutdown).
    pub(crate) not_before: Option<Duration>,
    pub(crate) ticket: Arc<TicketInner>,
    /// The request's span (empty when telemetry is disabled). Owned by
    /// whoever owns the `Pending`; finalized exactly once at the
    /// terminal decision by [`finalize_terminal`].
    pub(crate) trace: Trace,
}

/// Safety net for the ticket contract: every admitted request's handle
/// must resolve. If a `Pending` is ever dropped without its ticket
/// having been completed — e.g. an unforeseen panic unwinding through
/// the scheduler's drained window into the last-resort catch — the
/// waiter gets an [`ServeError::Engine`] instead of blocking forever.
/// (`TicketInner::complete` is first-wins, so the normal completion
/// paths are unaffected.)
impl Drop for Pending {
    fn drop(&mut self) {
        // Normal completions take only this relaxed-cost flag check; the
        // error is built solely on the abnormal path.
        if !self.ticket.is_complete() {
            self.ticket.complete(Err(ServeError::Engine(
                "request dropped by the engine without a response (internal \
                 panic while it was in flight)"
                    .to_string(),
            )));
        }
    }
}

pub(crate) struct QueueState {
    pub(crate) queue: VecDeque<Pending>,
    pub(crate) closed: bool,
    pub(crate) paused: bool,
}

/// State shared between sessions, the engine handle, and the scheduler
/// thread.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) state: Mutex<QueueState>,
    pub(crate) not_empty: Condvar,
    pub(crate) not_full: Condvar,
    pub(crate) registry: ArtifactRegistry,
    pub(crate) metrics: Mutex<MetricsInner>,
    pub(crate) recorder: FlightRecorder,
    next_id: AtomicU64,
}

/// The async multi-tenant serving engine. See the crate docs for the
/// execution model, the determinism guarantee, and the backpressure
/// contract.
pub struct ServeEngine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Start an engine (spawns the scheduler thread).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid configuration.
    pub fn new(config: ServeConfig) -> Result<ServeEngine, ServeError> {
        ServeEngine::with_clock(config, Arc::new(SystemClock::new()))
    }

    /// Start an engine on an explicit [`Clock`] (deterministic tests
    /// inject a [`crate::TestClock`]; production uses
    /// [`ServeEngine::new`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid configuration.
    pub fn with_clock(
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<ServeEngine, ServeError> {
        config.validate()?;
        // Warm start: seed the process-wide program cache (and autotune
        // winners) from the configured snapshot before the scheduler can
        // see its first request. Infallible by design — a missing,
        // truncated, or corrupt snapshot degrades to a cold start, with
        // the damage visible in `snapshot_rejected`.
        if let Some(path) = &config.snapshot_path {
            ProgramCache::global().load_snapshot(path);
        }
        let registry = ArtifactRegistry::with_capacity(config.registry_capacity);
        let recorder = FlightRecorder::new(if config.telemetry {
            config.flight_recorder_capacity
        } else {
            0
        });
        let shared = Arc::new(Shared {
            config,
            clock,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            registry,
            metrics: Mutex::new(MetricsInner::default()),
            recorder,
            next_id: AtomicU64::new(0),
        });
        // Clock jumps (a TestClock advance) must re-check every timed
        // scheduler wait; weak so the subscription never keeps a dropped
        // engine alive.
        let waker = Arc::downgrade(&shared);
        shared.clock.subscribe(Box::new(move || {
            if let Some(shared) = waker.upgrade() {
                shared.not_empty.notify_all();
            }
        }));
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("insum-serve-scheduler".to_string())
                .spawn(move || scheduler::run(&shared))
                .expect("spawn scheduler thread")
        };
        Ok(ServeEngine {
            shared,
            worker: Some(worker),
        })
    }

    /// An engine with the default configuration.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the default configuration is valid);
    /// kept fallible for signature symmetry with [`ServeEngine::new`].
    pub fn with_defaults() -> Result<ServeEngine, ServeError> {
        ServeEngine::new(ServeConfig::default())
    }

    /// Open a session for `tenant` (sessions namespace the per-tenant
    /// metrics; any number may exist concurrently).
    pub fn session(&self, tenant: &str) -> Session {
        Session {
            tenant: Arc::from(tenant),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop scheduling new batches; admitted requests stay queued (and
    /// admission keeps filling the queue up to capacity, exercising the
    /// backpressure path). Used for drain control and deterministic
    /// tests.
    pub fn pause(&self) {
        relock(&self.shared.state).paused = true;
        self.shared.not_empty.notify_all();
    }

    /// Resume scheduling after [`ServeEngine::pause`].
    pub fn resume(&self) {
        relock(&self.shared.state).paused = false;
        self.shared.not_empty.notify_all();
    }

    /// A point-in-time snapshot of the engine's counters (queue depths
    /// are read live; the program-cache section reflects the
    /// process-wide [`ProgramCache::global`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        snapshot_of(&self.shared)
    }

    /// The flight recorder's recent terminal request spans, oldest
    /// first. Empty when telemetry is disabled.
    pub fn traces(&self) -> Vec<RecordedTrace> {
        self.shared.recorder.recent()
    }

    /// The flight recorder's failure ring: spans of requests that
    /// failed, expired, were cancelled, or were rejected — kept
    /// separately so success floods cannot evict them. Oldest first.
    pub fn failed_traces(&self) -> Vec<RecordedTrace> {
        self.shared.recorder.failures()
    }

    /// Render every failure span as an ASCII report (dump-on-failure).
    pub fn dump_failed_traces(&self) -> String {
        self.shared.recorder.dump_failures()
    }

    /// Shut down: admission closes immediately (blocked submitters fail
    /// with [`ServeError::Closed`]), already-admitted requests are still
    /// served, and the scheduler thread is joined. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        {
            relock(&self.shared.state).closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(worker) = self.worker.take() {
            // The scheduler contains panics at the execution boundary; if
            // one still escapes, a panicking join inside Drop would abort
            // the process — swallow it and finish the shutdown.
            let _ = worker.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Build a point-in-time [`MetricsSnapshot`] from the shared engine
/// state. Factored out of [`ServeEngine::metrics`] so the scheduler's
/// telemetry-dump path renders the identical view.
pub(crate) fn snapshot_of(shared: &Shared) -> MetricsSnapshot {
    // Lock order state → metrics, matching admission: every queued
    // request's submission (and tenant entry) is visible in the
    // counters, so a snapshot never shows completed > submitted or
    // misses a queued tenant's depth.
    let state = relock(&shared.state);
    let inner = relock(&shared.metrics);
    let program_cache = ProgramCache::global().stats();
    let mut snap = MetricsSnapshot {
        submitted: inner.submitted,
        completed: inner.completed,
        failed: inner.failed,
        rejected: inner.rejected,
        retries: inner.retries,
        deadline_expired: inner.deadline_expired,
        cancelled: inner.cancelled,
        budget_rejected: inner.budget_rejected,
        quarantined: inner.quarantined,
        queue_depth: state.queue.len(),
        queue_depth_max: inner.queue_depth_max,
        batches: inner.batches,
        batched_requests: inner.batched_requests,
        largest_batch: inner.largest_batch,
        registry: shared.registry.stats(),
        snapshot_writes: inner.snapshot_writes,
        telemetry_dumps: inner.telemetry_dumps,
        warm_start_hits: program_cache.warm_hits,
        snapshot_rejected: program_cache.snapshot_rejected,
        program_cache,
        tenants: inner.tenants.clone(),
        kernels: inner.kernels.clone(),
    };
    drop(inner);
    for t in snap.tenants.values_mut() {
        t.queue_depth = 0;
    }
    for p in &state.queue {
        if let Some(t) = snap.tenants.get_mut(p.tenant.as_ref()) {
            t.queue_depth += 1;
        }
    }
    snap
}

/// Finalize a terminal request exactly once: record its queue wait into
/// the tenant's latency histogram and, when telemetry is on, stamp the
/// terminal phase onto its trace and hand the span to the flight
/// recorder.
///
/// The caller owns the `Pending` (it is about to be dropped) and holds
/// the metrics lock. Exactly one call happens per admitted request —
/// whoever removes the request from engine ownership makes it: the
/// cancel path for queue removals, the scheduler for everything it
/// drained. `wait` is the queue wait to record (admission → terminal
/// decision, or admission → execution start for executed requests);
/// `at` timestamps the terminal trace event on the engine clock.
///
/// Returns the finalized span for `Completed` outcomes (so the caller
/// can attach it to the [`crate::Response`]); `None` otherwise or when
/// telemetry is disabled.
pub(crate) fn finalize_terminal(
    shared: &Shared,
    pending: &mut Pending,
    outcome: TraceOutcome,
    metrics: &mut MetricsInner,
    wait: Duration,
    at: Duration,
) -> Option<Trace> {
    metrics
        .tenant(&pending.tenant)
        .queue_wait
        .record_duration(wait);
    if !shared.config.telemetry {
        return None;
    }
    let (phase, info) = match &outcome {
        TraceOutcome::Completed => (Phase::Respond, u64::from(pending.attempt) + 1),
        TraceOutcome::Failed(_) => (Phase::Failed, u64::from(pending.attempt) + 1),
        TraceOutcome::Cancelled => (Phase::Cancelled, 0),
        TraceOutcome::Expired => (Phase::Expired, 0),
        TraceOutcome::BudgetRejected => (Phase::BudgetRejected, 0),
        TraceOutcome::Quarantined => (Phase::Quarantined, 0),
    };
    pending.trace.push(phase, at, info);
    let trace = std::mem::take(&mut pending.trace);
    if matches!(outcome, TraceOutcome::Completed) {
        shared.recorder.record(trace.clone(), outcome);
        Some(trace)
    } else {
        shared.recorder.record(trace, outcome);
        None
    }
}

/// Admission: validate, apply backpressure, enqueue, hand out a ticket.
pub(crate) fn submit(
    session: &Session,
    expression: &str,
    tensors: &BTreeMap<String, Tensor>,
    submit_options: &SubmitOptions,
) -> Result<ResponseHandle, ServeError> {
    let shared = &session.shared;
    let options = submit_options
        .options
        .clone()
        .unwrap_or_else(|| shared.config.options.clone());
    options.validate()?;
    let mode = submit_options.mode.unwrap_or(Mode::Execute);

    let mut state = relock(&shared.state);
    loop {
        if state.closed {
            drop(state);
            note_rejection(shared, &session.tenant);
            return Err(ServeError::Closed);
        }
        if state.queue.len() < shared.config.queue_capacity {
            break;
        }
        match shared.config.admission {
            AdmissionPolicy::Reject => {
                drop(state);
                note_rejection(shared, &session.tenant);
                return Err(ServeError::Saturated {
                    capacity: shared.config.queue_capacity,
                });
            }
            AdmissionPolicy::Block => {
                state = rewait(&shared.not_full, state);
            }
        }
    }

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let ticket = Arc::new(TicketInner::default());
    let now = shared.clock.now();
    let trace = if shared.config.telemetry {
        let mut t = Trace::new(id, &session.tenant);
        t.push(Phase::Admitted, now, 0);
        t
    } else {
        Trace::default()
    };
    state.queue.push_back(Pending {
        id,
        tenant: Arc::clone(&session.tenant),
        expr: expression.to_string(),
        tensors: tensors.clone(),
        options,
        mode,
        submitted_at: now,
        deadline: submit_options.deadline.map(|d| now + d),
        max_retries: submit_options.max_retries,
        priority: submit_options.priority,
        attempt: 0,
        not_before: None,
        ticket: Arc::clone(&ticket),
        trace,
    });
    let depth = state.queue.len();
    // Record the submission while still holding the queue lock (lock
    // order: state → metrics, matching [`ServeEngine::metrics`]) so a
    // snapshot can never observe a completed request before its
    // submission was counted.
    {
        let mut metrics = relock(&shared.metrics);
        metrics.submitted += 1;
        metrics.queue_depth_max = metrics.queue_depth_max.max(depth);
        metrics.tenant(&session.tenant).submitted += 1;
    }
    drop(state);
    shared.not_empty.notify_all();

    Ok(ResponseHandle {
        id: RequestId(id),
        tenant: Arc::clone(&session.tenant),
        ticket,
        shared: Arc::downgrade(shared),
    })
}

fn note_rejection(shared: &Shared, tenant: &str) {
    let mut metrics = relock(&shared.metrics);
    metrics.rejected += 1;
    metrics.tenant(tenant).rejected += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::Tensor as T;

    fn tensors() -> BTreeMap<String, Tensor> {
        [
            ("C".to_string(), T::zeros(vec![8])),
            ("A".to_string(), T::ones(vec![8])),
        ]
        .into_iter()
        .collect()
    }

    /// A panic while holding the engine locks must not cascade: after a
    /// deliberate poisoning, `submit`, `metrics`, `pause`/`resume`, and
    /// `shutdown` all recover the guards and keep serving.
    #[test]
    fn poisoned_engine_locks_are_recovered() {
        let mut engine = ServeEngine::with_defaults().unwrap();
        for lock in [true, false] {
            let shared = Arc::clone(&engine.shared);
            let _ = std::thread::spawn(move || {
                if lock {
                    let _guard = shared.state.lock().unwrap();
                    panic!("deliberate state poisoning");
                } else {
                    let _guard = shared.metrics.lock().unwrap();
                    panic!("deliberate metrics poisoning");
                }
            })
            .join();
        }
        assert!(engine.shared.state.is_poisoned());
        assert!(engine.shared.metrics.is_poisoned());

        engine.pause();
        engine.resume();
        let response = engine
            .session("tenant-after-poison")
            .submit("C[i] = A[i]", &tensors())
            .expect("admission recovers the poisoned lock")
            .wait()
            .expect("execution succeeds");
        assert!(response.output.data().iter().all(|&v| v == 1.0));
        let m = engine.metrics();
        assert_eq!(m.submitted, 1);
        assert_eq!(m.completed, 1);
        engine.shutdown();
    }
}
