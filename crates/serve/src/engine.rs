//! The serving engine: admission, lifecycle, and observability.

use crate::config::{AdmissionPolicy, ServeConfig, SubmitOptions};
use crate::error::ServeError;
use crate::metrics::{MetricsInner, MetricsSnapshot};
use crate::registry::ArtifactRegistry;
use crate::scheduler;
use crate::session::{RequestId, ResponseHandle, Session, TicketInner};
use insum::{InsumOptions, Mode, Tensor};
use insum_inductor::ProgramCache;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One admitted, not-yet-executed request.
pub(crate) struct Pending {
    pub(crate) id: u64,
    pub(crate) tenant: Arc<str>,
    pub(crate) expr: String,
    pub(crate) tensors: BTreeMap<String, Tensor>,
    pub(crate) options: InsumOptions,
    pub(crate) mode: Mode,
    pub(crate) submitted_at: Instant,
    pub(crate) ticket: Arc<TicketInner>,
}

pub(crate) struct QueueState {
    pub(crate) queue: VecDeque<Pending>,
    pub(crate) closed: bool,
    pub(crate) paused: bool,
}

/// State shared between sessions, the engine handle, and the scheduler
/// thread.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    pub(crate) state: Mutex<QueueState>,
    pub(crate) not_empty: Condvar,
    pub(crate) not_full: Condvar,
    pub(crate) registry: ArtifactRegistry,
    pub(crate) metrics: Mutex<MetricsInner>,
    next_id: AtomicU64,
}

/// The async multi-tenant serving engine. See the crate docs for the
/// execution model, the determinism guarantee, and the backpressure
/// contract.
pub struct ServeEngine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Start an engine (spawns the scheduler thread).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid configuration.
    pub fn new(config: ServeConfig) -> Result<ServeEngine, ServeError> {
        config.validate()?;
        let registry = ArtifactRegistry::with_capacity(config.registry_capacity);
        let shared = Arc::new(Shared {
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            registry,
            metrics: Mutex::new(MetricsInner::default()),
            next_id: AtomicU64::new(0),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("insum-serve-scheduler".to_string())
                .spawn(move || scheduler::run(&shared))
                .expect("spawn scheduler thread")
        };
        Ok(ServeEngine {
            shared,
            worker: Some(worker),
        })
    }

    /// An engine with the default configuration.
    ///
    /// # Errors
    ///
    /// Never fails in practice (the default configuration is valid);
    /// kept fallible for signature symmetry with [`ServeEngine::new`].
    pub fn with_defaults() -> Result<ServeEngine, ServeError> {
        ServeEngine::new(ServeConfig::default())
    }

    /// Open a session for `tenant` (sessions namespace the per-tenant
    /// metrics; any number may exist concurrently).
    pub fn session(&self, tenant: &str) -> Session {
        Session {
            tenant: Arc::from(tenant),
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop scheduling new batches; admitted requests stay queued (and
    /// admission keeps filling the queue up to capacity, exercising the
    /// backpressure path). Used for drain control and deterministic
    /// tests.
    pub fn pause(&self) {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .paused = true;
        self.shared.not_empty.notify_all();
    }

    /// Resume scheduling after [`ServeEngine::pause`].
    pub fn resume(&self) {
        self.shared
            .state
            .lock()
            .expect("engine state poisoned")
            .paused = false;
        self.shared.not_empty.notify_all();
    }

    /// A point-in-time snapshot of the engine's counters (queue depths
    /// are read live; the program-cache section reflects the
    /// process-wide [`ProgramCache::global`]).
    pub fn metrics(&self) -> MetricsSnapshot {
        // Lock order state → metrics, matching admission: every queued
        // request's submission (and tenant entry) is visible in the
        // counters, so a snapshot never shows completed > submitted or
        // misses a queued tenant's depth.
        let state = self.shared.state.lock().expect("engine state poisoned");
        let inner = self.shared.metrics.lock().expect("metrics poisoned");
        let mut snap = MetricsSnapshot {
            submitted: inner.submitted,
            completed: inner.completed,
            failed: inner.failed,
            rejected: inner.rejected,
            queue_depth: state.queue.len(),
            queue_depth_max: inner.queue_depth_max,
            batches: inner.batches,
            batched_requests: inner.batched_requests,
            largest_batch: inner.largest_batch,
            registry: self.shared.registry.stats(),
            program_cache: ProgramCache::global().stats(),
            tenants: inner.tenants.clone(),
            kernels: inner.kernels.clone(),
        };
        drop(inner);
        for t in snap.tenants.values_mut() {
            t.queue_depth = 0;
        }
        for p in &state.queue {
            if let Some(t) = snap.tenants.get_mut(p.tenant.as_ref()) {
                t.queue_depth += 1;
            }
        }
        snap
    }

    /// Shut down: admission closes immediately (blocked submitters fail
    /// with [`ServeError::Closed`]), already-admitted requests are still
    /// served, and the scheduler thread is joined. Idempotent; also runs
    /// on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("engine state poisoned");
            state.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("scheduler thread panicked");
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Admission: validate, apply backpressure, enqueue, hand out a ticket.
pub(crate) fn submit(
    session: &Session,
    expression: &str,
    tensors: &BTreeMap<String, Tensor>,
    submit_options: &SubmitOptions,
) -> Result<ResponseHandle, ServeError> {
    let shared = &session.shared;
    let options = submit_options
        .options
        .clone()
        .unwrap_or_else(|| shared.config.options.clone());
    options.validate()?;
    let mode = submit_options.mode.unwrap_or(Mode::Execute);

    let mut state = shared.state.lock().expect("engine state poisoned");
    loop {
        if state.closed {
            drop(state);
            note_rejection(shared, &session.tenant);
            return Err(ServeError::Closed);
        }
        if state.queue.len() < shared.config.queue_capacity {
            break;
        }
        match shared.config.admission {
            AdmissionPolicy::Reject => {
                drop(state);
                note_rejection(shared, &session.tenant);
                return Err(ServeError::Saturated {
                    capacity: shared.config.queue_capacity,
                });
            }
            AdmissionPolicy::Block => {
                state = shared.not_full.wait(state).expect("engine state poisoned");
            }
        }
    }

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let ticket = Arc::new(TicketInner::default());
    state.queue.push_back(Pending {
        id,
        tenant: Arc::clone(&session.tenant),
        expr: expression.to_string(),
        tensors: tensors.clone(),
        options,
        mode,
        submitted_at: Instant::now(),
        ticket: Arc::clone(&ticket),
    });
    let depth = state.queue.len();
    // Record the submission while still holding the queue lock (lock
    // order: state → metrics, matching [`ServeEngine::metrics`]) so a
    // snapshot can never observe a completed request before its
    // submission was counted.
    {
        let mut metrics = shared.metrics.lock().expect("metrics poisoned");
        metrics.submitted += 1;
        metrics.queue_depth_max = metrics.queue_depth_max.max(depth);
        metrics.tenant(&session.tenant).submitted += 1;
    }
    drop(state);
    shared.not_empty.notify_all();

    Ok(ResponseHandle {
        id: RequestId(id),
        ticket,
    })
}

fn note_rejection(shared: &Shared, tenant: &str) {
    let mut metrics = shared.metrics.lock().expect("metrics poisoned");
    metrics.rejected += 1;
    metrics.tenant(tenant).rejected += 1;
}
