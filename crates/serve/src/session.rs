//! Tenant session handles and awaitable responses.

use crate::config::SubmitOptions;
use crate::engine::{self, Shared};
use crate::engine::{relock, rewait};
use crate::error::ServeError;
use insum::{Profile, Tensor};
use std::collections::BTreeMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Waker};

/// Identifier of an admitted request (unique per engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// A completed request: the output tensor and execution profile are
/// bit-identical to a serial [`insum::Compiled::run`] of the same
/// request, regardless of how the engine queued or batched it.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request this response answers.
    pub id: RequestId,
    /// The submitting tenant.
    pub tenant: String,
    /// The output tensor (the unmodified output binding for analytic
    /// requests).
    pub output: Tensor,
    /// Simulated launch reports.
    pub profile: Profile,
    /// Wall-clock the request waited from admission to execution start,
    /// seconds (includes any artifact compilation it had to wait on).
    pub queue_seconds: f64,
    /// Size of the batched launch this request executed in (1 when it
    /// ran alone).
    pub batch_size: usize,
    /// Whether the compiled artifact was served from the registry.
    pub registry_hit: bool,
    /// Execution attempts this response took (`1` when the first attempt
    /// succeeded; retries after transient failures increment it).
    /// Retries never change bits: the output and profile are identical
    /// no matter which attempt finally succeeded.
    pub attempts: u32,
    /// The request's full span: timestamped phase transitions (admitted
    /// → scheduled → batched → registry/compile → respond, plus any
    /// retries) on the engine clock, with aggregated
    /// compile/autotune/launch hook timings. `None` when the engine was
    /// built with [`crate::ServeConfig::with_telemetry`] disabled.
    /// Deterministic under a [`crate::TestClock`].
    pub trace: Option<insum_telemetry::Trace>,
}

#[derive(Default)]
struct TicketState {
    result: Option<Result<Response, ServeError>>,
    waker: Option<Waker>,
}

/// Completion cell shared between the engine and one [`ResponseHandle`].
#[derive(Default)]
pub(crate) struct TicketInner {
    state: Mutex<TicketState>,
    done: Condvar,
    /// First-wins completion latch, independent of whether a waiter has
    /// already taken the result (so a late safety-net completion — see
    /// `Pending`'s `Drop` — can never overwrite a delivered response).
    completed: AtomicBool,
}

impl TicketInner {
    /// True once a completion has been latched (cheap; used by the
    /// `Pending` drop safety net to skip building an error that would
    /// only be discarded).
    pub(crate) fn is_complete(&self) -> bool {
        self.completed.load(Ordering::Acquire)
    }

    /// Latch `result` into the ticket. Returns `true` when this call won
    /// the first-wins race (so callers can count the outcome exactly
    /// once — e.g. cancellation racing normal completion).
    pub(crate) fn complete(&self, result: Result<Response, ServeError>) -> bool {
        if self.completed.swap(true, Ordering::AcqRel) {
            return false;
        }
        let mut state = relock(&self.state);
        state.result = Some(result);
        let waker = state.waker.take();
        drop(state);
        self.done.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
        true
    }
}

/// An in-flight request. Await it (it implements [`Future`]; see
/// [`crate::block_on`] for a dependency-free executor) or block with
/// [`ResponseHandle::wait`].
pub struct ResponseHandle {
    pub(crate) id: RequestId,
    pub(crate) tenant: Arc<str>,
    pub(crate) ticket: Arc<TicketInner>,
    /// Weak so an abandoned handle never keeps a shut-down engine alive.
    pub(crate) shared: Weak<Shared>,
}

impl fmt::Debug for ResponseHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResponseHandle")
            .field("id", &self.id)
            .finish()
    }
}

impl ResponseHandle {
    /// The admitted request's identifier.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Block the calling thread until the response is ready.
    ///
    /// # Errors
    ///
    /// Whatever error the engine completed the request with
    /// (compilation, execution, or shutdown).
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = relock(&self.ticket.state);
        loop {
            if let Some(result) = state.result.take() {
                return result;
            }
            state = rewait(&self.ticket.done, state);
        }
    }

    /// Non-blocking poll: `Some` once the response is ready (taking it),
    /// `None` while the request is still in flight.
    pub fn try_take(&self) -> Option<Result<Response, ServeError>> {
        relock(&self.ticket.state).result.take()
    }

    /// Cancel the request: the handle resolves with
    /// [`ServeError::Cancelled`] and, if the request was still queued,
    /// its slot is freed immediately (unblocking a waiting submitter).
    /// A request already mid-execution is marked abandoned — the
    /// scheduler discards its result instead of delivering it — but its
    /// in-flight launch is not interrupted.
    ///
    /// Returns `true` if this call cancelled the request, `false` if it
    /// had already completed (the existing result stands).
    pub fn cancel(&self) -> bool {
        if !self.ticket.complete(Err(ServeError::Cancelled)) {
            return false;
        }
        if let Some(shared) = self.shared.upgrade() {
            // Lock order state → metrics, matching admission and
            // `ServeEngine::metrics`.
            let mut state = relock(&shared.state);
            let removed = state
                .queue
                .iter()
                .position(|p| p.id == self.id.0)
                .and_then(|i| state.queue.remove(i));
            if removed.is_some() {
                shared.not_full.notify_all();
            }
            {
                let mut metrics = relock(&shared.metrics);
                metrics.cancelled += 1;
                metrics.tenant(&self.tenant).cancelled += 1;
                // A request cancelled straight out of the queue is
                // finalized here (queue wait + trace); one cancelled
                // mid-flight is finalized by the scheduler when its
                // completion loses the first-wins race.
                if let Some(mut pending) = removed {
                    let now = shared.clock.now();
                    let wait = now.saturating_sub(pending.submitted_at);
                    engine::finalize_terminal(
                        &shared,
                        &mut pending,
                        insum_telemetry::TraceOutcome::Cancelled,
                        &mut metrics,
                        wait,
                        now,
                    );
                }
            }
            drop(state);
        }
        true
    }
}

impl Future for ResponseHandle {
    type Output = Result<Response, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut state = relock(&self.ticket.state);
        if let Some(result) = state.result.take() {
            Poll::Ready(result)
        } else {
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A tenant's handle onto the engine. Sessions are cheap to clone and
/// may submit from any thread; the tenant name namespaces the engine's
/// per-tenant metrics.
#[derive(Clone)]
pub struct Session {
    pub(crate) tenant: Arc<str>,
    pub(crate) shared: Arc<Shared>,
}

impl Session {
    /// The tenant this session submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submit an indirect-Einsum request with the engine's default
    /// options in [`insum::Mode::Execute`]. Returns as soon as the
    /// request is admitted; the returned handle resolves when the
    /// scheduler has executed it.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Saturated`] under the reject admission policy
    ///   when the queue is full (the blocking policy waits instead).
    /// * [`ServeError::Closed`] if the engine is shut down.
    /// * [`ServeError::Config`] for invalid per-request options.
    pub fn submit(
        &self,
        expression: &str,
        tensors: &BTreeMap<String, Tensor>,
    ) -> Result<ResponseHandle, ServeError> {
        self.submit_with(expression, tensors, &SubmitOptions::default())
    }

    /// [`Session::submit`] with per-request overrides.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::submit`].
    pub fn submit_with(
        &self,
        expression: &str,
        tensors: &BTreeMap<String, Tensor>,
        options: &SubmitOptions,
    ) -> Result<ResponseHandle, ServeError> {
        engine::submit(self, expression, tensors, options)
    }
}
