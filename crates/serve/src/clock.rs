//! Injectable time source for the engine's lifecycle machinery.
//!
//! Everything in the engine that reads or waits on time — admission
//! stamps, deadline expiry, retry backoff, budget refill, circuit-breaker
//! cooldowns, injected chaos latency — goes through a [`Clock`] instead
//! of touching [`std::time::Instant`] directly. Production engines run on
//! the monotonic [`SystemClock`]; tests inject a [`TestClock`] whose time
//! only moves when the test calls [`TestClock::advance`], so
//! deadline/backoff/breaker behavior is exercised deterministically and
//! instantly instead of by sleeping.

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::relock;

/// A monotonic time source. Time is reported as the [`Duration`] since
/// the clock's epoch (whatever that is for the implementation); the
/// engine only ever compares and subtracts these stamps.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Monotonic time since the clock's epoch.
    fn now(&self) -> Duration;

    /// How long a waiter may park in real time before re-checking a
    /// timed obligation due at `until` (clock time). `None` means "park
    /// indefinitely": the clock promises to fire the subscribed wakers
    /// whenever its time jumps (the [`TestClock`] contract, where
    /// virtual durations say nothing about real ones).
    fn wait_budget(&self, until: Duration) -> Option<Duration>;

    /// Pause the calling thread for `d` of this clock's time. Used by
    /// the chaos harness's latency faults: the system clock sleeps, the
    /// test clock advances itself.
    fn delay(&self, d: Duration);

    /// Register a waker invoked whenever the clock's time jumps
    /// discontinuously. The [`SystemClock`] never jumps and ignores
    /// this; the [`TestClock`] calls every waker from
    /// [`TestClock::advance`] so engine threads parked on timed waits
    /// re-check their obligations.
    fn subscribe(&self, wake: Box<dyn Fn() + Send + Sync>);
}

/// The production clock: a process-monotonic [`Instant`] epoch.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn wait_budget(&self, until: Duration) -> Option<Duration> {
        Some(until.saturating_sub(self.now()))
    }

    fn delay(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn subscribe(&self, _wake: Box<dyn Fn() + Send + Sync>) {}
}

#[derive(Default)]
struct TestClockInner {
    now: Duration,
    wakers: Vec<Box<dyn Fn() + Send + Sync>>,
}

/// A deterministic clock for tests: time stands still until the test
/// advances it. Engine threads waiting on deadlines, backoff, or
/// breaker cooldowns park indefinitely (`wait_budget` returns `None`)
/// and are woken by [`TestClock::advance`] through the subscription
/// mechanism, so timed behavior runs at test speed with no sleeps and
/// no flakiness.
#[derive(Default)]
pub struct TestClock {
    inner: Mutex<TestClockInner>,
}

impl fmt::Debug for TestClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TestClock")
            .field("now", &relock(&self.inner).now)
            .finish()
    }
}

impl TestClock {
    /// A clock at time zero, ready to share with an engine
    /// ([`crate::ServeEngine::with_clock`]).
    pub fn new() -> Arc<TestClock> {
        Arc::new(TestClock::default())
    }

    /// Jump time forward by `d` and wake every subscribed waiter.
    pub fn advance(&self, d: Duration) {
        let mut inner = relock(&self.inner);
        inner.now += d;
        // Wake with the lock held: wakers only notify condvars, and a
        // waiter that races the advance re-reads `now` after waking.
        for wake in &inner.wakers {
            wake();
        }
    }
}

impl Clock for TestClock {
    fn now(&self) -> Duration {
        relock(&self.inner).now
    }

    fn wait_budget(&self, _until: Duration) -> Option<Duration> {
        None
    }

    fn delay(&self, d: Duration) {
        self.advance(d);
    }

    fn subscribe(&self, wake: Box<dyn Fn() + Send + Sync>) {
        relock(&self.inner).wakers.push(wake);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(c.wait_budget(b + Duration::from_millis(5)).is_some());
    }

    #[test]
    fn test_clock_advances_and_wakes() {
        let c = TestClock::new();
        let woken = Arc::new(AtomicUsize::new(0));
        let w = Arc::clone(&woken);
        c.subscribe(Box::new(move || {
            w.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(3));
        c.delay(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(4));
        assert_eq!(woken.load(Ordering::SeqCst), 2);
        assert_eq!(c.wait_budget(Duration::from_secs(10)), None);
    }
}
