//! Serving-layer errors.

use insum::InsumError;
use std::error::Error;
use std::fmt;

/// Any error the serving engine can hand back to a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission queue is full and the engine is configured to
    /// reject rather than block ([`crate::AdmissionPolicy::Reject`]).
    Saturated {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The engine is shut down (or shut down while the request waited
    /// for admission).
    Closed,
    /// Compilation or execution failed; carries the pipeline error.
    Insum(InsumError),
    /// The engine or submit configuration is invalid.
    Config(String),
    /// Execution of the request panicked inside the engine (a simulator
    /// or scheduler bug). The panic is contained: the scheduler thread
    /// survives and unrelated tenants keep being served.
    Engine(String),
    /// The request's deadline elapsed before it finished executing; the
    /// scheduler expired it instead of spending a batch slot on it.
    DeadlineExceeded {
        /// The relative deadline the request was submitted with.
        deadline: std::time::Duration,
    },
    /// The request was cancelled through [`crate::ResponseHandle::cancel`]
    /// before it completed.
    Cancelled,
    /// The tenant's cost budget is exhausted (overdrawn past a full
    /// bucket); the request was rejected at scheduling time. Resubmit
    /// after the budget refills.
    BudgetExhausted {
        /// The over-budget tenant.
        tenant: String,
    },
    /// The tenant is quarantined by its circuit breaker after repeated
    /// panics or deadline expiries; requests are rejected until the
    /// cooldown elapses and a probe succeeds.
    Quarantined {
        /// The quarantined tenant.
        tenant: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated { capacity } => {
                write!(f, "admission queue saturated ({capacity} requests)")
            }
            ServeError::Closed => write!(f, "serving engine is shut down"),
            ServeError::Insum(e) => write!(f, "{e}"),
            ServeError::Config(msg) => write!(f, "invalid serving configuration: {msg}"),
            ServeError::Engine(msg) => write!(f, "engine execution panicked: {msg}"),
            ServeError::DeadlineExceeded { deadline } => {
                write!(f, "request deadline exceeded ({deadline:?})")
            }
            ServeError::Cancelled => write!(f, "request cancelled by the client"),
            ServeError::BudgetExhausted { tenant } => {
                write!(f, "cost budget exhausted for tenant {tenant:?}")
            }
            ServeError::Quarantined { tenant } => {
                write!(f, "tenant {tenant:?} is quarantined by its circuit breaker")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Insum(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InsumError> for ServeError {
    fn from(e: InsumError) -> Self {
        // A bad per-request option set is a configuration error at the
        // serving layer too, with a clearer category for clients.
        match e {
            InsumError::Config(msg) => ServeError::Config(msg),
            other => ServeError::Insum(other),
        }
    }
}
