//! The batching scheduler.
//!
//! The scheduler thread drains the admission queue, resolves every
//! request to a compiled artifact through the registry, groups
//! launch-compatible requests — same shared artifact with equal kernel
//! fingerprint, grid, parameter order, argument metadata, interpreter
//! mode, and device — and executes
//! each group as one batched launch over the shared simulator thread
//! pool ([`insum::Compiled::run_batch_mode`]). Grouping only ever
//! changes *scheduling*: each request inside a batch is executed with
//! exactly the per-request interpreter semantics, so its response is
//! bit-identical to a serial [`insum::Compiled::run`] no matter the
//! arrival order or batch composition.

use crate::engine::{Pending, Shared};
use crate::error::ServeError;
use crate::session::{RequestId, Response};
use insum::{Compiled, LaunchOptions, Mode, Tensor};
use insum_tensor::DType;
use std::sync::Arc;

/// Launch-compatibility key: requests with equal keys may share one
/// batched launch.
#[derive(Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Batched {
        /// Identity of the shared registry artifact
        /// (`Arc::as_ptr`-derived). The 64-bit fingerprint alone could
        /// collide across distinct kernels — `ProgramCache` guards the
        /// same case with full kernel equality — so batches only ever
        /// form within one compiled artifact, which the registry already
        /// dedups across tenants.
        artifact: usize,
        kernel_fingerprint: u64,
        grid: Vec<usize>,
        params: Vec<String>,
        lens: Vec<usize>,
        dtypes: Vec<DType>,
        analytic: bool,
        device: String,
    },
    /// Unbatchable (unfused pipeline or unresolvable binding): executes
    /// alone, keyed by request id.
    Single(u64),
}

struct Resolved {
    pending: Pending,
    artifact: Arc<Compiled>,
    registry_hit: bool,
}

/// Scheduler main loop: wait for work, drain, process; exit once the
/// engine is closed and the queue is empty.
pub(crate) fn run(shared: &Shared) {
    loop {
        let drained: Vec<Pending> = {
            let mut state = shared.state.lock().expect("engine state poisoned");
            loop {
                if state.closed && state.queue.is_empty() {
                    return;
                }
                // Paused engines hold work until resume (unless shutting
                // down, which always drains).
                if !state.queue.is_empty() && (!state.paused || state.closed) {
                    break;
                }
                state = shared.not_empty.wait(state).expect("engine state poisoned");
            }
            state.queue.drain(..).collect()
        };
        shared.not_full.notify_all();
        process(shared, drained);
    }
}

/// Resolve, group, and execute one drained window of requests.
fn process(shared: &Shared, drained: Vec<Pending>) {
    // Grouping preserves arrival order: groups are ordered by their
    // earliest request, and requests stay in arrival order inside each
    // group.
    let mut groups: Vec<(GroupKey, Vec<Resolved>)> = Vec::new();
    for pending in drained {
        let (result, registry_hit) =
            shared
                .registry
                .get_or_compile(&pending.expr, &pending.tensors, &pending.options);
        {
            let mut metrics = shared.metrics.lock().expect("metrics poisoned");
            let tenant = metrics.tenant(&pending.tenant);
            if registry_hit {
                tenant.registry_hits += 1;
            } else {
                tenant.registry_misses += 1;
            }
        }
        match result {
            Err(e) => {
                let mut metrics = shared.metrics.lock().expect("metrics poisoned");
                metrics.failed += 1;
                metrics.tenant(&pending.tenant).failed += 1;
                drop(metrics);
                pending.ticket.complete(Err(ServeError::from(e)));
            }
            Ok(artifact) => {
                let key = group_key(&artifact, &pending);
                let resolved = Resolved {
                    pending,
                    artifact,
                    registry_hit,
                };
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(resolved),
                    None => groups.push((key, vec![resolved])),
                }
            }
        }
    }
    for (_, mut members) in groups {
        while !members.is_empty() {
            let take = members.len().min(shared.config.max_batch);
            let batch: Vec<Resolved> = members.drain(..take).collect();
            execute_batch(shared, batch);
        }
    }
}

fn group_key(artifact: &Arc<Compiled>, pending: &Pending) -> GroupKey {
    let Some(sig) = artifact.launch_signature() else {
        return GroupKey::Single(pending.id);
    };
    let mut lens = Vec::with_capacity(sig.params.len());
    let mut dtypes = Vec::with_capacity(sig.params.len());
    for name in &sig.params {
        let Some(t) = pending.tensors.get(name) else {
            // Missing binding: let the execution path report it for this
            // request alone.
            return GroupKey::Single(pending.id);
        };
        lens.push(t.len());
        dtypes.push(t.dtype());
    }
    GroupKey::Batched {
        artifact: Arc::as_ptr(artifact) as usize,
        kernel_fingerprint: sig.kernel_fingerprint,
        grid: sig.grid,
        params: sig.params,
        lens,
        dtypes,
        analytic: pending.mode == Mode::Analytic,
        device: format!("{:?}", artifact.options().device),
    }
}

fn kernel_key(artifact: &Compiled) -> String {
    match artifact.launch_signature() {
        Some(sig) => format!("{:016x}@{:?}", sig.kernel_fingerprint, sig.grid),
        None => format!("unfused:{}", artifact.statement()),
    }
}

/// Execute one launch-compatible batch and complete its tickets.
fn execute_batch(shared: &Shared, batch: Vec<Resolved>) {
    let artifact = Arc::clone(&batch[0].artifact);
    let mode = batch[0].pending.mode;
    let launch = LaunchOptions {
        threads: shared.config.sim_threads,
        ..Default::default()
    };
    let batch_size = batch.len();
    let waits: Vec<f64> = batch
        .iter()
        .map(|r| r.pending.submitted_at.elapsed().as_secs_f64())
        .collect();
    let inputs: Vec<&std::collections::BTreeMap<String, Tensor>> =
        batch.iter().map(|r| &r.pending.tensors).collect();
    let result = artifact.run_batch_mode(&inputs, mode, &launch);
    let kkey = kernel_key(&artifact);

    match result {
        Ok(results) => {
            debug_assert_eq!(results.len(), batch_size);
            let mut metrics = shared.metrics.lock().expect("metrics poisoned");
            metrics.batches += 1;
            metrics.batched_requests += batch_size as u64;
            metrics.largest_batch = metrics.largest_batch.max(batch_size);
            {
                let km = metrics.kernel(&kkey);
                km.requests += batch_size as u64;
                km.batches += 1;
                km.largest_batch = km.largest_batch.max(batch_size);
            }
            for ((resolved, (output, profile)), wait) in batch.into_iter().zip(results).zip(waits) {
                let instances = profile.total_stats().instances;
                metrics.completed += 1;
                {
                    let km = metrics.kernel(&kkey);
                    km.instances_simulated += instances;
                    km.simulated_seconds_total += profile.total_time();
                    km.wait_seconds_total += wait;
                }
                {
                    let tm = metrics.tenant(&resolved.pending.tenant);
                    tm.completed += 1;
                    tm.wait_seconds_total += wait;
                    tm.wait_seconds_max = tm.wait_seconds_max.max(wait);
                    tm.instances_simulated += instances;
                }
                resolved.pending.ticket.complete(Ok(Response {
                    id: RequestId(resolved.pending.id),
                    tenant: resolved.pending.tenant.to_string(),
                    output,
                    profile,
                    queue_seconds: wait,
                    batch_size,
                    registry_hit: resolved.registry_hit,
                }));
            }
        }
        Err(_) if batch_size > 1 => {
            // Isolate the failure: the batched launch reports only the
            // first failing request, and the determinism guarantee is
            // per request — a bad tenant must not fail its batch-mates.
            // Re-run each request alone (single-request batches take
            // the arm below on error).
            for resolved in batch {
                execute_batch(shared, vec![resolved]);
            }
        }
        Err(e) => {
            let err = ServeError::from(e);
            let mut metrics = shared.metrics.lock().expect("metrics poisoned");
            metrics.failed += batch_size as u64;
            for resolved in &batch {
                metrics.tenant(&resolved.pending.tenant).failed += 1;
            }
            drop(metrics);
            for resolved in batch {
                resolved.pending.ticket.complete(Err(err.clone()));
            }
        }
    }
}
