//! The batching scheduler.
//!
//! The scheduler thread drains the admission queue, resolves every
//! request to a compiled artifact through the registry, groups
//! launch-compatible requests — same shared artifact with equal kernel
//! fingerprint, grid, parameter order, argument metadata, interpreter
//! mode, and device — and executes
//! each group as one batched launch over the shared simulator thread
//! pool ([`insum::Compiled::run_batch_mode`]). Grouping only ever
//! changes *scheduling*: each request inside a batch is executed with
//! exactly the per-request interpreter semantics, so its response is
//! bit-identical to a serial [`insum::Compiled::run`] no matter the
//! arrival order or batch composition.

use crate::engine::{relock, rewait, Pending, Shared};
use crate::error::ServeError;
use crate::registry::ServeArtifact;
use crate::session::{RequestId, Response};
use insum::{LaunchOptions, Mode, Tensor};
use insum_tensor::DType;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Test-only fault injection: panic a named tenant's batches at the
/// execution boundary, or a named expression inside the compile
/// boundary, simulating simulator/compiler bugs so the panic-isolation
/// and lock-recovery paths can be exercised end to end. Compiled only
/// under the `fault-injection` feature (enabled by this crate's own
/// tests through a self dev-dependency), so release builds carry
/// neither the hooks nor their per-batch check.
#[cfg(feature = "fault-injection")]
#[doc(hidden)]
pub mod faults {
    use crate::engine::relock;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PANIC_TENANT: Mutex<Option<String>> = Mutex::new(None);
    static PANIC_COMPILE_EXPR: Mutex<Option<String>> = Mutex::new(None);

    /// Arm (or with `None` disarm) the execution-boundary fault: any
    /// batch containing a request from this tenant panics.
    pub fn set_panic_tenant(tenant: Option<&str>) {
        *relock(&PANIC_TENANT) = tenant.map(str::to_string);
        rearm();
    }

    /// Arm (or with `None` disarm) the compile-boundary fault: compiling
    /// this exact expression panics.
    pub fn set_panic_compile_expr(expr: Option<&str>) {
        *relock(&PANIC_COMPILE_EXPR) = expr.map(str::to_string);
        rearm();
    }

    fn rearm() {
        let armed = relock(&PANIC_TENANT).is_some() || relock(&PANIC_COMPILE_EXPR).is_some();
        ACTIVE.store(armed, Ordering::Relaxed);
    }

    pub(crate) fn panic_tenant() -> Option<String> {
        if ACTIVE.load(Ordering::Relaxed) {
            relock(&PANIC_TENANT).clone()
        } else {
            None
        }
    }

    pub(crate) fn maybe_panic_compile(expr: &str) {
        if ACTIVE.load(Ordering::Relaxed) && relock(&PANIC_COMPILE_EXPR).as_deref() == Some(expr) {
            panic!("injected compile fault for expression {expr:?}");
        }
    }
}

/// Render a caught panic payload for [`ServeError::Engine`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Launch-compatibility key: requests with equal keys may share one
/// batched launch.
#[derive(Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Batched {
        /// Identity of the shared registry artifact
        /// (`Arc::as_ptr`-derived). The 64-bit fingerprint alone could
        /// collide across distinct kernels — `ProgramCache` guards the
        /// same case with full kernel equality — so batches only ever
        /// form within one compiled artifact, which the registry already
        /// dedups across tenants.
        artifact: usize,
        kernel_fingerprint: u64,
        grid: Vec<usize>,
        params: Vec<String>,
        lens: Vec<usize>,
        dtypes: Vec<DType>,
        analytic: bool,
        device: String,
    },
    /// A planned contraction chain. Two requests resolve to the same
    /// chain `Arc` only through the same registry key — equal
    /// expression, argument metadata (names, shapes, dtypes), and
    /// normalized options — so artifact identity plus interpreter mode
    /// already proves per-step launch compatibility; no per-step
    /// signature needs to appear in the key.
    Chain { artifact: usize, analytic: bool },
    /// Unbatchable (unfused pipeline or unresolvable binding): executes
    /// alone, keyed by request id.
    Single(u64),
}

struct Resolved {
    pending: Pending,
    artifact: ServeArtifact,
    registry_hit: bool,
}

/// Scheduler main loop: wait for work, drain, process; exit once the
/// engine is closed and the queue is empty.
pub(crate) fn run(shared: &Shared) {
    loop {
        let drained: Vec<Pending> = {
            let mut state = relock(&shared.state);
            loop {
                if state.closed && state.queue.is_empty() {
                    return;
                }
                // Paused engines hold work until resume (unless shutting
                // down, which always drains).
                if !state.queue.is_empty() && (!state.paused || state.closed) {
                    break;
                }
                state = rewait(&shared.not_empty, state);
            }
            state.queue.drain(..).collect()
        };
        shared.not_full.notify_all();
        // Last-resort containment: `process` isolates panics at the
        // compilation and execution boundaries itself, but if one ever
        // escapes, the scheduler thread must survive — a dead scheduler
        // strands every queued and future request of every tenant.
        let _ = catch_unwind(AssertUnwindSafe(|| process(shared, drained)));
    }
}

/// Resolve, group, and execute one drained window of requests.
fn process(shared: &Shared, drained: Vec<Pending>) {
    // Grouping preserves arrival order: groups are ordered by their
    // earliest request, and requests stay in arrival order inside each
    // group.
    let mut groups: Vec<(GroupKey, Vec<Resolved>)> = Vec::new();
    for pending in drained {
        let (result, registry_hit) =
            shared
                .registry
                .get_or_compile(&pending.expr, &pending.tensors, &pending.options);
        {
            let mut metrics = relock(&shared.metrics);
            let tenant = metrics.tenant(&pending.tenant);
            if registry_hit {
                tenant.registry_hits += 1;
            } else {
                tenant.registry_misses += 1;
            }
        }
        match result {
            Err(e) => {
                let mut metrics = relock(&shared.metrics);
                metrics.failed += 1;
                metrics.tenant(&pending.tenant).failed += 1;
                drop(metrics);
                pending.ticket.complete(Err(e));
            }
            Ok(artifact) => {
                let resolved = Resolved {
                    pending,
                    artifact,
                    registry_hit,
                };
                // Cheap first pass: if every tensor handle is pointer-
                // identical to a batched group representative's (same
                // shared artifact, same mode), launch compatibility is
                // proved without re-extracting argument metadata — the
                // common case for retry storms and fan-out, where
                // requests share copy-on-write storage. `ptr_eq` implies
                // equal lengths and dtypes, so the fast path can only
                // join groups the full key would also join.
                match groups.iter_mut().find(|(k, members)| {
                    !matches!(k, GroupKey::Single(_)) && ptr_identical(&resolved, &members[0])
                }) {
                    Some((_, members)) => members.push(resolved),
                    None => {
                        let key = group_key(&resolved.artifact, &resolved.pending);
                        match groups.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, members)) => members.push(resolved),
                            None => groups.push((key, vec![resolved])),
                        }
                    }
                }
            }
        }
    }
    for (_, mut members) in groups {
        while !members.is_empty() {
            let take = members.len().min(shared.config.max_batch);
            let batch: Vec<Resolved> = members.drain(..take).collect();
            execute_batch(shared, batch);
        }
    }
}

/// The `ptr_eq` first pass of launch-compatibility grouping: same
/// registry artifact, same interpreter mode, and pointer-identical
/// tensor bindings. This is the hook the content-identity response dedup
/// (ROADMAP) builds on: `ptr_eq` proves the arguments bit-identical
/// without reading them.
fn ptr_identical(candidate: &Resolved, rep: &Resolved) -> bool {
    candidate.artifact.ptr_eq(&rep.artifact)
        && candidate.pending.mode == rep.pending.mode
        && candidate.pending.tensors.len() == rep.pending.tensors.len()
        && candidate
            .pending
            .tensors
            .iter()
            .zip(rep.pending.tensors.iter())
            .all(|((an, at), (bn, bt))| an == bn && at.ptr_eq(bt))
}

fn group_key(artifact: &ServeArtifact, pending: &Pending) -> GroupKey {
    let artifact = match artifact {
        ServeArtifact::Single(compiled) => compiled,
        // See the variant docs: chain-artifact identity subsumes every
        // per-step compatibility condition.
        ServeArtifact::Chain(chain) => {
            return GroupKey::Chain {
                artifact: Arc::as_ptr(chain) as usize,
                analytic: pending.mode == Mode::Analytic,
            };
        }
    };
    let Some(sig) = artifact.launch_signature() else {
        return GroupKey::Single(pending.id);
    };
    let mut lens = Vec::with_capacity(sig.params.len());
    let mut dtypes = Vec::with_capacity(sig.params.len());
    for name in &sig.params {
        let Some(t) = pending.tensors.get(name) else {
            // Missing binding: let the execution path report it for this
            // request alone.
            return GroupKey::Single(pending.id);
        };
        lens.push(t.len());
        dtypes.push(t.dtype());
    }
    GroupKey::Batched {
        artifact: Arc::as_ptr(artifact) as usize,
        kernel_fingerprint: sig.kernel_fingerprint,
        grid: sig.grid,
        params: sig.params,
        lens,
        dtypes,
        analytic: pending.mode == Mode::Analytic,
        device: format!("{:?}", artifact.options().device),
    }
}

fn kernel_key(artifact: &ServeArtifact) -> String {
    match artifact {
        ServeArtifact::Single(compiled) => match compiled.launch_signature() {
            Some(sig) => format!("{:016x}@{:?}", sig.kernel_fingerprint, sig.grid),
            None => format!("unfused:{}", compiled.statement()),
        },
        ServeArtifact::Chain(chain) => {
            format!("chain[{} steps]:{}", chain.step_count(), chain.expression())
        }
    }
}

/// Execute one launch-compatible batch and complete its tickets.
fn execute_batch(shared: &Shared, batch: Vec<Resolved>) {
    let artifact = batch[0].artifact.clone();
    let mode = batch[0].pending.mode;
    let launch = LaunchOptions {
        threads: shared.config.sim_threads,
        ..Default::default()
    };
    let batch_size = batch.len();
    let waits: Vec<f64> = batch
        .iter()
        .map(|r| r.pending.submitted_at.elapsed().as_secs_f64())
        .collect();
    let inputs: Vec<&std::collections::BTreeMap<String, Tensor>> =
        batch.iter().map(|r| &r.pending.tensors).collect();
    // Contain panics at the execution boundary: a request that panics the
    // simulator must fail alone — completing its ticket with
    // [`ServeError::Engine`] — instead of killing the scheduler thread
    // (which would strand every other tenant) or poisoning the engine
    // locks. The engine state is consistent here: no engine lock is held
    // across this call.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-injection")]
        if let Some(t) = faults::panic_tenant() {
            if batch.iter().any(|r| r.pending.tenant.as_ref() == t) {
                panic!("injected fault for tenant {t:?}");
            }
        }
        match &artifact {
            ServeArtifact::Single(compiled) => compiled.run_batch_mode(&inputs, mode, &launch),
            // Chains batch per step: every request's instance of step k
            // shares one batched launch before any request advances.
            ServeArtifact::Chain(chain) => chain.run_batch_mode(&inputs, mode, &launch),
        }
    }));
    let kkey = kernel_key(&artifact);
    let result = match caught {
        Ok(result) => result,
        Err(payload) if batch_size > 1 => {
            // Same isolation as a batched error below: re-run each
            // request alone so one panicking tenant cannot fail (or
            // hang) its batch-mates.
            drop(payload);
            drop(inputs);
            for resolved in batch {
                execute_batch(shared, vec![resolved]);
            }
            return;
        }
        Err(payload) => {
            let err = ServeError::Engine(panic_message(payload));
            let mut metrics = relock(&shared.metrics);
            metrics.failed += 1;
            for resolved in &batch {
                metrics.tenant(&resolved.pending.tenant).failed += 1;
            }
            drop(metrics);
            drop(inputs);
            for resolved in batch {
                resolved.pending.ticket.complete(Err(err.clone()));
            }
            return;
        }
    };

    match result {
        Ok(results) => {
            debug_assert_eq!(results.len(), batch_size);
            let mut metrics = relock(&shared.metrics);
            metrics.batches += 1;
            metrics.batched_requests += batch_size as u64;
            metrics.largest_batch = metrics.largest_batch.max(batch_size);
            {
                let km = metrics.kernel(&kkey);
                km.requests += batch_size as u64;
                km.batches += 1;
                km.largest_batch = km.largest_batch.max(batch_size);
            }
            for ((resolved, (output, profile)), wait) in batch.into_iter().zip(results).zip(waits) {
                let instances = profile.total_stats().instances;
                metrics.completed += 1;
                {
                    let km = metrics.kernel(&kkey);
                    km.instances_simulated += instances;
                    km.simulated_seconds_total += profile.total_time();
                    km.wait_seconds_total += wait;
                }
                {
                    let tm = metrics.tenant(&resolved.pending.tenant);
                    tm.completed += 1;
                    tm.wait_seconds_total += wait;
                    tm.wait_seconds_max = tm.wait_seconds_max.max(wait);
                    tm.instances_simulated += instances;
                }
                resolved.pending.ticket.complete(Ok(Response {
                    id: RequestId(resolved.pending.id),
                    tenant: resolved.pending.tenant.to_string(),
                    output,
                    profile,
                    queue_seconds: wait,
                    batch_size,
                    registry_hit: resolved.registry_hit,
                }));
            }
        }
        Err(_) if batch_size > 1 => {
            // Isolate the failure: the batched launch reports only the
            // first failing request, and the determinism guarantee is
            // per request — a bad tenant must not fail its batch-mates.
            // Re-run each request alone (single-request batches take
            // the arm below on error).
            for resolved in batch {
                execute_batch(shared, vec![resolved]);
            }
        }
        Err(e) => {
            let err = ServeError::from(e);
            let mut metrics = relock(&shared.metrics);
            metrics.failed += batch_size as u64;
            for resolved in &batch {
                metrics.tenant(&resolved.pending.tenant).failed += 1;
            }
            drop(metrics);
            for resolved in batch {
                resolved.pending.ticket.complete(Err(err.clone()));
            }
        }
    }
}
