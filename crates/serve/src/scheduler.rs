//! The batching scheduler.
//!
//! The scheduler thread drains the admission queue, resolves every
//! request to a compiled artifact through the registry, groups
//! launch-compatible requests — same shared artifact with equal kernel
//! fingerprint, grid, parameter order, argument metadata, interpreter
//! mode, and device — and executes
//! each group as one batched launch over the shared simulator thread
//! pool ([`insum::Compiled::run_batch_mode`]). Grouping only ever
//! changes *scheduling*: each request inside a batch is executed with
//! exactly the per-request interpreter semantics, so its response is
//! bit-identical to a serial [`insum::Compiled::run`] no matter the
//! arrival order or batch composition.
//!
//! Layered on top is the request lifecycle (see the crate docs for the
//! full state machine): before executing anything from a drained
//! window the scheduler expires past-deadline requests, rejects
//! quarantined tenants (circuit breaker) and exhausted budgets, and
//! orders the surviving launch-compatible groups by deficit-weighted
//! fairness — tenants that have consumed the least simulated cost go
//! first, over-budget tenants go last — before chunking them into
//! batches. Transient failures (contained panics, injected faults)
//! requeue with bounded exponential backoff up to the request's
//! `max_retries`; retried attempts re-enter this same path.

use crate::engine::{
    finalize_terminal, relock, rewait, rewait_timeout, snapshot_of, Pending, Shared,
};
use crate::error::ServeError;
use crate::lifecycle::{BreakerDecision, BreakerPanel, BudgetStatus, CostMeter};
use crate::registry::ServeArtifact;
use crate::session::{RequestId, Response};
use insum::{LaunchOptions, Mode, Tensor};
use insum_telemetry::{hook, Phase, TraceOutcome};
use insum_tensor::DType;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Test-only fault injection, compiled only under the `fault-injection`
/// feature (enabled by this crate's own tests through a self
/// dev-dependency), so release builds carry neither the hooks nor their
/// per-batch checks.
///
/// Two layers coexist:
///
/// * **Targeted faults** — panic a named tenant's batches at the
///   execution boundary ([`set_panic_tenant`]) or a named expression
///   inside the compile boundary ([`set_panic_compile_expr`]),
///   simulating simulator/compiler bugs so the panic-isolation and
///   lock-recovery paths can be exercised end to end.
/// * **A seeded chaos plan** ([`FaultPlan`], installed with
///   [`set_plan`]) — deterministic pseudo-random execute panics,
///   compile panics, injected latency, and budget spikes. Execute-side
///   decisions are pure functions of `(seed, request id, attempt)`, so
///   a faulted attempt faults on every replay while its retry can
///   deterministically succeed; compile-side decisions key on a global
///   compile-attempt counter so a recompile after an evicted panic
///   entry rolls fresh.
#[cfg(feature = "fault-injection")]
#[doc(hidden)]
pub mod faults {
    use crate::engine::relock;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static PANIC_TENANT: Mutex<Option<String>> = Mutex::new(None);
    static PANIC_COMPILE_EXPR: Mutex<Option<String>> = Mutex::new(None);
    static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);
    static COMPILE_ATTEMPTS: AtomicU64 = AtomicU64::new(0);

    /// A seeded, deterministic chaos plan. Every rate is per-mille
    /// (`0..=1000`); a zeroed plan injects nothing.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct FaultPlan {
        /// Seed for every fault decision.
        pub seed: u64,
        /// Per-mille chance an execution attempt panics.
        pub exec_panic_per_mille: u16,
        /// Per-mille chance a compile attempt panics (keyed by a global
        /// compile-attempt counter, so retries recompile cleanly).
        pub compile_panic_per_mille: u16,
        /// Per-mille chance a request's launch sees injected latency.
        pub latency_per_mille: u16,
        /// The injected latency, in engine-clock time.
        pub latency: Duration,
        /// Per-mille chance a request's charged cost spikes.
        pub budget_spike_per_mille: u16,
        /// Extra cost units charged on a spike.
        pub budget_spike_units: u64,
    }

    /// Arm (or with `None` disarm) the execution-boundary fault: any
    /// batch containing a request from this tenant panics.
    pub fn set_panic_tenant(tenant: Option<&str>) {
        *relock(&PANIC_TENANT) = tenant.map(str::to_string);
        rearm();
    }

    /// Arm (or with `None` disarm) the compile-boundary fault: compiling
    /// this exact expression panics.
    pub fn set_panic_compile_expr(expr: Option<&str>) {
        *relock(&PANIC_COMPILE_EXPR) = expr.map(str::to_string);
        rearm();
    }

    /// Install (or with `None` clear) the chaos plan. Resets the
    /// compile-attempt counter so runs replay from a clean slate.
    pub fn set_plan(plan: Option<FaultPlan>) {
        *relock(&PLAN) = plan;
        COMPILE_ATTEMPTS.store(0, Ordering::Relaxed);
        rearm();
    }

    fn rearm() {
        let armed = relock(&PANIC_TENANT).is_some()
            || relock(&PANIC_COMPILE_EXPR).is_some()
            || relock(&PLAN).is_some();
        ACTIVE.store(armed, Ordering::Relaxed);
    }

    fn plan() -> Option<FaultPlan> {
        if ACTIVE.load(Ordering::Relaxed) {
            *relock(&PLAN)
        } else {
            None
        }
    }

    /// SplitMix64-style mix of the seed and decision coordinates.
    fn decision(seed: u64, a: u64, b: u64, salt: u64) -> u64 {
        let mut z = seed
            ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ salt.wrapping_mul(0x94D0_49BB_1331_11EB);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(plan: &FaultPlan, per_mille: u16, a: u64, b: u64, salt: u64) -> bool {
        per_mille > 0 && decision(plan.seed, a, b, salt) % 1000 < u64::from(per_mille)
    }

    pub(crate) fn panic_tenant() -> Option<String> {
        if ACTIVE.load(Ordering::Relaxed) {
            relock(&PANIC_TENANT).clone()
        } else {
            None
        }
    }

    pub(crate) fn exec_panic(id: u64, attempt: u32) -> bool {
        plan().is_some_and(|p| roll(&p, p.exec_panic_per_mille, id, u64::from(attempt), 1))
    }

    pub(crate) fn exec_latency(id: u64, attempt: u32) -> Option<Duration> {
        let p = plan()?;
        if roll(&p, p.latency_per_mille, id, u64::from(attempt), 2) {
            Some(p.latency)
        } else {
            None
        }
    }

    pub(crate) fn budget_spike(id: u64) -> u64 {
        plan().map_or(0, |p| {
            if roll(&p, p.budget_spike_per_mille, id, 0, 3) {
                p.budget_spike_units
            } else {
                0
            }
        })
    }

    pub(crate) fn maybe_panic_compile(expr: &str) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        if relock(&PANIC_COMPILE_EXPR).as_deref() == Some(expr) {
            panic!("injected compile fault for expression {expr:?}");
        }
        if let Some(p) = *relock(&PLAN) {
            let n = COMPILE_ATTEMPTS.fetch_add(1, Ordering::Relaxed);
            if roll(&p, p.compile_panic_per_mille, n, 0, 4) {
                panic!("injected chaos compile fault (compile attempt {n})");
            }
        }
    }
}

/// Render a caught panic payload for [`ServeError::Engine`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Launch-compatibility key: requests with equal keys may share one
/// batched launch.
#[derive(Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Batched {
        /// Identity of the shared registry artifact
        /// (`Arc::as_ptr`-derived). The 64-bit fingerprint alone could
        /// collide across distinct kernels — `ProgramCache` guards the
        /// same case with full kernel equality — so batches only ever
        /// form within one compiled artifact, which the registry already
        /// dedups across tenants.
        artifact: usize,
        kernel_fingerprint: u64,
        grid: Vec<usize>,
        params: Vec<String>,
        lens: Vec<usize>,
        dtypes: Vec<DType>,
        analytic: bool,
        device: String,
    },
    /// A planned contraction chain. Two requests resolve to the same
    /// chain `Arc` only through the same registry key — equal
    /// expression, argument metadata (names, shapes, dtypes), and
    /// normalized options — so artifact identity plus interpreter mode
    /// already proves per-step launch compatibility; no per-step
    /// signature needs to appear in the key.
    Chain { artifact: usize, analytic: bool },
    /// A fast-path artifact (microkernel or stride view): there is no
    /// simulator launch signature to compare, but two requests resolve
    /// to the same fast-path `Arc` only through the same registry key —
    /// equal expression, argument metadata, and normalized options — so
    /// artifact identity plus interpreter mode proves compatibility,
    /// exactly as for chains. Members execute back-to-back under one
    /// batched entry point (and one fault-injection check).
    FastPath { artifact: usize, analytic: bool },
    /// Unbatchable (unfused pipeline or unresolvable binding): executes
    /// alone, keyed by request id.
    Single(u64),
}

struct Resolved {
    pending: Pending,
    artifact: ServeArtifact,
    registry_hit: bool,
    /// Miss whose compile lowered no simulator program: warm/cold is
    /// decided at the artifact's first launch (lazy lowering).
    warm_pending: bool,
    /// Content fingerprints of the bound tensors in map order, computed
    /// lazily so the content-identity grouping fallback hashes each
    /// request's tensors at most once per drain window (and never when
    /// `ptr_eq` settles every comparison).
    fingerprints: std::cell::OnceCell<Vec<u64>>,
}

/// Scheduler main loop: wait for eligible work, drain, process; exit
/// once the engine is closed and the queue is empty. The cost meter and
/// circuit breaker live here — they are scheduler-thread-local, so every
/// budget and quarantine decision happens at a deterministic point in
/// the scheduling order, without locks.
pub(crate) fn run(shared: &Shared) {
    let mut meter = CostMeter::new(shared.config.budgets.clone(), shared.config.default_budget);
    let mut breaker = BreakerPanel::new(
        shared.config.breaker_threshold,
        shared.config.breaker_cooldown,
    );
    // Profiling hook: compilation, autotuning, and launches all execute
    // on this thread, so a thread-local collector sees exactly the work
    // done for the requests being processed. The engine clock is the
    // time source — under a virtual TestClock every hook duration is 0
    // and traces stay bit-deterministic.
    let _hook_guard = shared.config.telemetry.then(|| {
        let clock = Arc::clone(&shared.clock);
        hook::collect(Box::new(move || clock.now()))
    });
    let mut last_snapshot = shared.clock.now();
    let mut last_dump = last_snapshot;
    while let Some(drained) = wait_for_work(shared) {
        shared.not_full.notify_all();
        // Last-resort containment: `process` isolates panics at the
        // compilation and execution boundaries itself, but if one ever
        // escapes, the scheduler thread must survive — a dead scheduler
        // strands every queued and future request of every tenant.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            process(shared, drained, &mut meter, &mut breaker);
        }));
        maybe_snapshot(shared, &mut last_snapshot);
        maybe_dump(shared, &mut last_dump);
    }
    // Drain/shutdown write: whatever was compiled since the last cadence
    // write becomes durable before the scheduler thread exits.
    write_snapshot(shared);
    write_telemetry_dump(shared);
}

/// Cadence persistence: once [`ServeConfig::snapshot_interval`] has
/// elapsed since the last write, persist the program cache and autotune
/// winners. Runs between drained windows on the scheduler thread, so it
/// never blocks admission or an in-flight batch.
fn maybe_snapshot(shared: &Shared, last: &mut Duration) {
    if shared.config.snapshot_path.is_none() {
        return;
    }
    let now = shared.clock.now();
    if now.saturating_sub(*last) < shared.config.snapshot_interval {
        return;
    }
    if write_snapshot(shared) {
        *last = now;
    }
}

/// Cadence telemetry dump: once [`ServeConfig::telemetry_dump_interval`]
/// has elapsed since the last dump, atomically write the metrics
/// snapshot (Prometheus text + JSON sibling). Runs between drained
/// windows on the scheduler thread.
///
/// [`ServeConfig::telemetry_dump_interval`]: crate::ServeConfig::telemetry_dump_interval
fn maybe_dump(shared: &Shared, last: &mut Duration) {
    if shared.config.telemetry_dump_path.is_none() {
        return;
    }
    let now = shared.clock.now();
    if now.saturating_sub(*last) < shared.config.telemetry_dump_interval {
        return;
    }
    if write_telemetry_dump(shared) {
        *last = now;
    }
}

/// Atomically write the metrics snapshot to the configured telemetry
/// dump path: Prometheus text at the path itself, JSON at a `.json`
/// sibling — both via the snapshot crate's temp + fsync + rename write.
/// Failures are absorbed: an engine that cannot dump keeps serving.
fn write_telemetry_dump(shared: &Shared) -> bool {
    let Some(path) = &shared.config.telemetry_dump_path else {
        return false;
    };
    let snap = snapshot_of(shared);
    let prom = snap.render_prometheus();
    let json = snap.render_json();
    let ok = insum_snapshot::write_atomic(path, prom.as_bytes()).is_ok()
        && insum_snapshot::write_atomic(&path.with_extension("json"), json.as_bytes()).is_ok();
    if ok {
        relock(&shared.metrics).telemetry_dumps += 1;
    }
    ok
}

/// Atomically persist the process-wide program cache and autotune
/// winners to the configured snapshot path (temp + fsync + rename).
/// Returns whether a write happened; failures are absorbed — a server
/// that cannot persist keeps serving, it just restarts cold.
fn write_snapshot(shared: &Shared) -> bool {
    let Some(path) = &shared.config.snapshot_path else {
        return false;
    };
    match insum_inductor::ProgramCache::global().save_snapshot(path) {
        Ok(_) => {
            relock(&shared.metrics).snapshot_writes += 1;
            true
        }
        Err(_) => false,
    }
}

/// Block until at least one queued request is *eligible* and drain the
/// eligible subset (preserving arrival order among them; the rest stay
/// queued). Returns `None` once the engine is closed and empty.
///
/// Eligibility: a past-deadline request is always eligible (expiry is
/// enforced even while the engine is paused); otherwise the engine must
/// be runnable (not paused, or draining for shutdown) and the request's
/// retry-backoff gate must have passed (the gate is waived at shutdown
/// so draining never stalls). Cancelled requests are purged here, which
/// frees their admission slots.
fn wait_for_work(shared: &Shared) -> Option<Vec<Pending>> {
    let mut state = relock(&shared.state);
    loop {
        if state.closed && state.queue.is_empty() {
            return None;
        }
        // Purge cancelled requests (their cancel path counted them but —
        // if the scheduler got here first — could not remove them from
        // the queue). Whoever removes a request from the queue finalizes
        // it, so its queue wait lands in the histograms exactly once.
        if state.queue.iter().any(|p| p.ticket.is_complete()) {
            let purge_now = shared.clock.now();
            let mut metrics = relock(&shared.metrics);
            let mut kept = VecDeque::with_capacity(state.queue.len());
            for mut p in state.queue.drain(..) {
                if p.ticket.is_complete() {
                    let wait = purge_now.saturating_sub(p.submitted_at);
                    finalize_terminal(
                        shared,
                        &mut p,
                        TraceOutcome::Cancelled,
                        &mut metrics,
                        wait,
                        purge_now,
                    );
                } else {
                    kept.push_back(p);
                }
            }
            state.queue = kept;
            drop(metrics);
            shared.not_full.notify_all();
        }
        let now = shared.clock.now();
        let closed = state.closed;
        let runnable = !state.paused || closed;
        let is_eligible = |p: &Pending| {
            if p.deadline.is_some_and(|d| now >= d) {
                return true;
            }
            if !runnable {
                return false;
            }
            match p.not_before {
                None => true,
                Some(gate) => closed || now >= gate,
            }
        };
        if state.queue.iter().any(is_eligible) {
            let mut drained = Vec::new();
            let mut kept = VecDeque::new();
            for p in state.queue.drain(..) {
                if is_eligible(&p) {
                    drained.push(p);
                } else {
                    kept.push_back(p);
                }
            }
            state.queue = kept;
            return Some(drained);
        }
        if closed && state.queue.is_empty() {
            return None;
        }
        // Nothing eligible: park until notified (submit, cancel, pause
        // toggles, clock jumps) or until the earliest timed obligation —
        // a pending deadline, or a backoff gate if we could run it.
        let mut next_due: Option<Duration> = None;
        for p in &state.queue {
            let mut consider = |t: Duration| {
                next_due = Some(next_due.map_or(t, |d| d.min(t)));
            };
            if let Some(d) = p.deadline {
                if d > now {
                    consider(d);
                }
            }
            if runnable {
                if let Some(gate) = p.not_before {
                    if gate > now {
                        consider(gate);
                    }
                }
            }
        }
        state = match next_due.and_then(|due| shared.clock.wait_budget(due)) {
            // A virtual clock (`None` budget) or no timed obligation:
            // park until notified.
            None => rewait(&shared.not_empty, state),
            Some(budget) if budget.is_zero() => state, // due now: re-check
            Some(budget) => rewait_timeout(&shared.not_empty, state, budget),
        };
    }
}

/// Expire, admit, resolve, order, and execute one drained window.
fn process(
    shared: &Shared,
    drained: Vec<Pending>,
    meter: &mut CostMeter,
    breaker: &mut BreakerPanel,
) {
    let now = shared.clock.now();

    // Lifecycle gate: deadline expiry, circuit breaker, budget — in that
    // order, so an expired request never counts against its tenant's
    // budget and a quarantined tenant's requests don't drain its bucket.
    // Every terminal decision below finalizes the request (queue-wait
    // histogram + trace) exactly once; a completion that loses the
    // first-wins race lost to a cancel, so the finalize outcome flips to
    // `Cancelled` (the cancel path already counted it but the scheduler
    // owns the `Pending`).
    let telemetry = shared.config.telemetry;
    let mut survivors: Vec<Pending> = Vec::with_capacity(drained.len());
    for mut pending in drained {
        // Cancelled between drain and processing: the cancel path
        // counted it; the scheduler owns the span and the wait.
        if pending.ticket.is_complete() {
            let wait = now.saturating_sub(pending.submitted_at);
            let mut metrics = relock(&shared.metrics);
            finalize_terminal(
                shared,
                &mut pending,
                TraceOutcome::Cancelled,
                &mut metrics,
                wait,
                now,
            );
            continue;
        }
        if telemetry {
            pending.trace.push(Phase::Scheduled, now, 0);
        }
        let wait = now.saturating_sub(pending.submitted_at);
        if let Some(deadline) = pending.deadline {
            if now >= deadline {
                // Timeouts are breaker-relevant: a tenant whose requests
                // keep expiring is burning queue slots.
                let opened = breaker.record_failure(&pending.tenant, now);
                let mut metrics = relock(&shared.metrics);
                let outcome = if pending.ticket.complete(Err(ServeError::DeadlineExceeded {
                    deadline: deadline.saturating_sub(pending.submitted_at),
                })) {
                    metrics.deadline_expired += 1;
                    metrics.tenant(&pending.tenant).deadline_expired += 1;
                    TraceOutcome::Expired
                } else {
                    TraceOutcome::Cancelled
                };
                finalize_terminal(shared, &mut pending, outcome, &mut metrics, wait, now);
                if opened {
                    metrics.tenant(&pending.tenant).breaker_open_transitions += 1;
                }
                continue;
            }
        }
        if breaker.admit(&pending.tenant, now) == BreakerDecision::Reject {
            let mut metrics = relock(&shared.metrics);
            let outcome = if pending.ticket.complete(Err(ServeError::Quarantined {
                tenant: pending.tenant.to_string(),
            })) {
                metrics.quarantined += 1;
                metrics.tenant(&pending.tenant).quarantined += 1;
                TraceOutcome::Quarantined
            } else {
                TraceOutcome::Cancelled
            };
            finalize_terminal(shared, &mut pending, outcome, &mut metrics, wait, now);
            continue;
        }
        if meter.status(&pending.tenant, now) == BudgetStatus::Exhausted {
            reject_exhausted(shared, pending, now);
            continue;
        }
        survivors.push(pending);
    }

    // Grouping preserves arrival order: groups are ordered by their
    // earliest request, and requests stay in arrival order inside each
    // group (fair ordering below only reorders on unequal keys).
    let mut groups: Vec<(GroupKey, Vec<Resolved>)> = Vec::new();
    for mut pending in survivors {
        let resolve_start = shared.clock.now();
        let (result, registry_hit, compile_lowered) =
            shared
                .registry
                .get_or_compile(&pending.expr, &pending.tensors, &pending.options);
        let resolve_took = shared.clock.now().saturating_sub(resolve_start);
        if telemetry {
            pending
                .trace
                .push(Phase::RegistryWait, resolve_start, u64::from(registry_hit));
            // Compile/autotune hook intervals emitted while resolving
            // belong to this request alone — it is the one the registry
            // compiled for.
            for (phase, nanos) in hook::drain() {
                pending.trace.add_cost(phase.trace_phase(), nanos);
            }
        }
        {
            let mut metrics = relock(&shared.metrics);
            let tenant = metrics.tenant(&pending.tenant);
            if registry_hit {
                tenant.registry_hits += 1;
            } else {
                tenant.registry_misses += 1;
                tenant.compile.record_duration(resolve_took);
            }
        }
        match result {
            Err(e) => {
                // A compile *panic* (ServeError::Engine) is transient —
                // the registry evicts it, so a retry recompiles.
                // Deterministic compile errors would fail identically
                // and never retry.
                let transient = matches!(e, ServeError::Engine(_));
                if transient && pending.attempt < pending.max_retries {
                    schedule_retry(shared, pending, now);
                } else {
                    let opened = transient && breaker.record_failure(&pending.tenant, now);
                    let msg = e.to_string();
                    let mut metrics = relock(&shared.metrics);
                    let outcome = if pending.ticket.complete(Err(e)) {
                        metrics.failed += 1;
                        metrics.tenant(&pending.tenant).failed += 1;
                        TraceOutcome::Failed(msg)
                    } else {
                        TraceOutcome::Cancelled
                    };
                    let wait = now.saturating_sub(pending.submitted_at);
                    finalize_terminal(shared, &mut pending, outcome, &mut metrics, wait, now);
                    if opened {
                        metrics.tenant(&pending.tenant).breaker_open_transitions += 1;
                    }
                }
            }
            Ok(artifact) => {
                if !registry_hit {
                    relock(&shared.metrics)
                        .kernel(&kernel_key(&artifact))
                        .compile
                        .record_duration(resolve_took);
                }
                let resolved = Resolved {
                    pending,
                    artifact,
                    registry_hit,
                    warm_pending: !registry_hit && !compile_lowered,
                    fingerprints: std::cell::OnceCell::new(),
                };
                // Cheap first pass: if every tensor handle is pointer-
                // identical to a batched group representative's (same
                // shared artifact, same mode), launch compatibility is
                // proved without re-extracting argument metadata — the
                // common case for retry storms and fan-out, where
                // requests share copy-on-write storage. `ptr_eq` implies
                // equal lengths and dtypes, so the fast path can only
                // join groups the full key would also join.
                match groups.iter_mut().find(|(k, members)| {
                    !matches!(k, GroupKey::Single(_)) && ptr_identical(&resolved, &members[0])
                }) {
                    Some((_, members)) => members.push(resolved),
                    None => {
                        let key = group_key(&resolved.artifact, &resolved.pending);
                        match groups.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, members)) => members.push(resolved),
                            None => groups.push((key, vec![resolved])),
                        }
                    }
                }
            }
        }
    }

    // Deficit-weighted fair ordering. Each request's key is
    // (over-budget?, -priority, tenant's lifetime charged cost, id):
    // in-budget tenants run before deprioritized ones, higher priority
    // runs earlier, and among equals the tenant that has consumed the
    // least simulated cost goes first. The sorts are stable and the
    // final id component reproduces arrival order on full ties, so an
    // unbudgeted equal-priority workload is scheduled exactly as it
    // arrived — and the ordering never changes *what* executes, only
    // when, so responses stay bit-identical.
    let mut rank: BTreeMap<String, (bool, u64)> = BTreeMap::new();
    for (_, members) in &groups {
        for r in members {
            let tenant = r.pending.tenant.as_ref();
            if !rank.contains_key(tenant) {
                let deprioritized = meter.status(tenant, now) == BudgetStatus::Deprioritized;
                rank.insert(tenant.to_string(), (deprioritized, meter.charged(tenant)));
            }
        }
    }
    let key_of = |r: &Resolved| {
        let (deprioritized, charged) = rank
            .get(r.pending.tenant.as_ref())
            .copied()
            .unwrap_or((false, 0));
        (
            deprioritized,
            std::cmp::Reverse(r.pending.priority),
            charged,
            r.pending.id,
        )
    };
    for (_, members) in &mut groups {
        members.sort_by_key(&key_of);
    }
    groups.sort_by_key(|(_, members)| key_of(&members[0]));

    for (_, mut members) in groups {
        while !members.is_empty() {
            let take = members.len().min(shared.config.max_batch);
            // Re-gate budgets at launch time: charges land as earlier
            // batches of this window execute, so a tenant that floods a
            // single drain window cannot outrun its bucket — by the time
            // its later batches launch, the balance reflects what the
            // earlier ones actually cost.
            let launch_now = shared.clock.now();
            let mut batch: Vec<Resolved> = Vec::with_capacity(take);
            for r in members.drain(..take) {
                if meter.status(&r.pending.tenant, launch_now) == BudgetStatus::Exhausted {
                    reject_exhausted(shared, r.pending, launch_now);
                } else {
                    batch.push(r);
                }
            }
            if !batch.is_empty() {
                execute_batch(shared, batch, meter, breaker);
            }
        }
    }
}

/// Complete a request with [`ServeError::BudgetExhausted`], counting it
/// only if the completion won against a concurrent cancel, and finalize
/// its queue wait and trace either way.
fn reject_exhausted(shared: &Shared, mut pending: Pending, now: Duration) {
    let mut metrics = relock(&shared.metrics);
    let outcome = if pending.ticket.complete(Err(ServeError::BudgetExhausted {
        tenant: pending.tenant.to_string(),
    })) {
        metrics.budget_rejected += 1;
        metrics.tenant(&pending.tenant).budget_rejected += 1;
        TraceOutcome::BudgetRejected
    } else {
        TraceOutcome::Cancelled
    };
    let wait = now.saturating_sub(pending.submitted_at);
    finalize_terminal(shared, &mut pending, outcome, &mut metrics, wait, now);
}

/// Requeue a transiently failed request with bounded exponential
/// backoff (`retry_backoff × 2^(attempt-1)`, capped at
/// `retry_backoff_max`). Retries bypass the admission capacity check —
/// the request was already admitted once, and re-admission against a
/// full queue could deadlock the scheduler behind blocked submitters.
fn schedule_retry(shared: &Shared, mut pending: Pending, now: Duration) {
    pending.attempt += 1;
    if shared.config.telemetry {
        pending
            .trace
            .push(Phase::Retry, now, u64::from(pending.attempt));
    }
    let shift = (pending.attempt - 1).min(20);
    let backoff = shared
        .config
        .retry_backoff
        .saturating_mul(1u32 << shift)
        .min(shared.config.retry_backoff_max);
    pending.not_before = Some(now + backoff);
    let mut state = relock(&shared.state);
    {
        let mut metrics = relock(&shared.metrics);
        metrics.retries += 1;
        metrics.tenant(&pending.tenant).retries += 1;
    }
    state.queue.push_back(pending);
    drop(state);
    shared.not_empty.notify_all();
}

/// Terminal or retryable handling of a single request's transient
/// failure (a contained panic): requeue if attempts remain, otherwise
/// record the breaker failure and complete the ticket.
fn transient_failure(
    shared: &Shared,
    mut pending: Pending,
    err: ServeError,
    breaker: &mut BreakerPanel,
    now: Duration,
    wait: Duration,
) {
    if pending.attempt < pending.max_retries && !pending.ticket.is_complete() {
        schedule_retry(shared, pending, now);
        return;
    }
    let opened = breaker.record_failure(&pending.tenant, now);
    let msg = err.to_string();
    let mut metrics = relock(&shared.metrics);
    let outcome = if pending.ticket.complete(Err(err)) {
        metrics.failed += 1;
        metrics.tenant(&pending.tenant).failed += 1;
        TraceOutcome::Failed(msg)
    } else {
        TraceOutcome::Cancelled
    };
    finalize_terminal(shared, &mut pending, outcome, &mut metrics, wait, now);
    if opened {
        metrics.tenant(&pending.tenant).breaker_open_transitions += 1;
    }
}

/// The cheap first pass of launch-compatibility grouping: same registry
/// artifact, same interpreter mode, and identical tensor bindings —
/// pointer-identical ([`Tensor::ptr_eq`], free), or bit-identical by
/// content fingerprint (the ROADMAP's content-identity dedup first
/// step: bit-identical-but-not-*shared* arguments group together too).
/// Either proof implies equal lengths and dtypes, so this pass can only
/// join groups the full key would also join.
fn ptr_identical(candidate: &Resolved, rep: &Resolved) -> bool {
    candidate.artifact.ptr_eq(&rep.artifact)
        && candidate.pending.mode == rep.pending.mode
        && bindings_identical(
            &candidate.pending.tensors,
            &rep.pending.tensors,
            &candidate.fingerprints,
            &rep.fingerprints,
        )
}

/// True when both maps bind the same names to identical tensors.
/// `ptr_eq` settles a pair for free; pairs it cannot settle fall back to
/// equal shape + dtype (launch compatibility stays proven even under a
/// hash collision) plus equal [`Tensor::content_fingerprint`], memoized
/// in `memo_*` so each request's tensors are hashed at most once per
/// drain window.
fn bindings_identical(
    a: &BTreeMap<String, Tensor>,
    b: &BTreeMap<String, Tensor>,
    memo_a: &std::cell::OnceCell<Vec<u64>>,
    memo_b: &std::cell::OnceCell<Vec<u64>>,
) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut unsettled = Vec::new();
    for (i, ((an, at), (bn, bt))) in a.iter().zip(b.iter()).enumerate() {
        if an != bn || at.dtype() != bt.dtype() || at.shape() != bt.shape() {
            return false;
        }
        if !at.ptr_eq(bt) {
            unsettled.push(i);
        }
    }
    if unsettled.is_empty() {
        return true;
    }
    let fp = |map: &BTreeMap<String, Tensor>| -> Vec<u64> {
        map.values().map(Tensor::content_fingerprint).collect()
    };
    let fa = memo_a.get_or_init(|| fp(a));
    let fb = memo_b.get_or_init(|| fp(b));
    unsettled.into_iter().all(|i| fa[i] == fb[i])
}

fn group_key(artifact: &ServeArtifact, pending: &Pending) -> GroupKey {
    let artifact = match artifact {
        ServeArtifact::Single(compiled) => compiled,
        // See the variant docs: chain-artifact identity subsumes every
        // per-step compatibility condition.
        ServeArtifact::Chain(chain) => {
            return GroupKey::Chain {
                artifact: Arc::as_ptr(chain) as usize,
                analytic: pending.mode == Mode::Analytic,
            };
        }
    };
    if artifact.fast_path_pattern().is_some() {
        // Program-less fast-path artifact: see the variant docs —
        // artifact identity subsumes the launch-compatibility
        // conditions a kernel signature would encode.
        return GroupKey::FastPath {
            artifact: Arc::as_ptr(artifact) as usize,
            analytic: pending.mode == Mode::Analytic,
        };
    }
    let Some(sig) = artifact.launch_signature() else {
        return GroupKey::Single(pending.id);
    };
    let mut lens = Vec::with_capacity(sig.params.len());
    let mut dtypes = Vec::with_capacity(sig.params.len());
    for name in &sig.params {
        let Some(t) = pending.tensors.get(name) else {
            // Missing binding: let the execution path report it for this
            // request alone.
            return GroupKey::Single(pending.id);
        };
        lens.push(t.len());
        dtypes.push(t.dtype());
    }
    GroupKey::Batched {
        artifact: Arc::as_ptr(artifact) as usize,
        kernel_fingerprint: sig.kernel_fingerprint,
        grid: sig.grid,
        params: sig.params,
        lens,
        dtypes,
        analytic: pending.mode == Mode::Analytic,
        device: format!("{:?}", artifact.options().device),
    }
}

fn kernel_key(artifact: &ServeArtifact) -> String {
    match artifact {
        ServeArtifact::Single(compiled) => {
            match (compiled.fast_path_pattern(), compiled.launch_signature()) {
                (Some(pattern), _) => format!("fastpath:{}", pattern.name()),
                (None, Some(sig)) => format!("{:016x}@{:?}", sig.kernel_fingerprint, sig.grid),
                (None, None) => format!("unfused:{}", compiled.statement()),
            }
        }
        ServeArtifact::Chain(chain) => {
            format!("chain[{} steps]:{}", chain.step_count(), chain.expression())
        }
    }
}

/// Execute one launch-compatible batch and complete its tickets.
fn execute_batch(
    shared: &Shared,
    mut batch: Vec<Resolved>,
    meter: &mut CostMeter,
    breaker: &mut BreakerPanel,
) {
    let artifact = batch[0].artifact.clone();
    let mode = batch[0].pending.mode;
    let launch = LaunchOptions {
        threads: shared.config.sim_threads,
        ..Default::default()
    };
    let batch_size = batch.len();
    let start = shared.clock.now();
    let telemetry = shared.config.telemetry;
    if telemetry {
        for r in &mut batch {
            r.pending
                .trace
                .push(Phase::Batched, start, batch_size as u64);
        }
    }
    let waits: Vec<Duration> = batch
        .iter()
        .map(|r| start.saturating_sub(r.pending.submitted_at))
        .collect();
    let inputs: Vec<&std::collections::BTreeMap<String, Tensor>> =
        batch.iter().map(|r| &r.pending.tensors).collect();
    // A miss whose compile lowered nothing classifies here: if this
    // first launch lowers nothing either, every program was already
    // resident (snapshot-seeded) and the miss counts as warm.
    let compiles_before = batch
        .iter()
        .any(|r| r.warm_pending)
        .then(|| insum_inductor::ProgramCache::global().stats().compiles);
    // Contain panics at the execution boundary: a request that panics the
    // simulator must fail alone — retrying if attempts remain, else
    // completing its ticket with [`ServeError::Engine`] — instead of
    // killing the scheduler thread (which would strand every other
    // tenant) or poisoning the engine locks. The engine state is
    // consistent here: no engine lock is held across this call.
    let caught = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(t) = faults::panic_tenant() {
                if batch.iter().any(|r| r.pending.tenant.as_ref() == t) {
                    panic!("injected fault for tenant {t:?}");
                }
            }
            for r in &batch {
                if let Some(d) = faults::exec_latency(r.pending.id, r.pending.attempt) {
                    shared.clock.delay(d);
                }
            }
            if let Some(r) = batch
                .iter()
                .find(|r| faults::exec_panic(r.pending.id, r.pending.attempt))
            {
                panic!(
                    "injected chaos execution fault for request {} (attempt {})",
                    r.pending.id, r.pending.attempt
                );
            }
        }
        match &artifact {
            ServeArtifact::Single(compiled) => compiled.run_batch_mode(&inputs, mode, &launch),
            // Chains batch per step: every request's instance of step k
            // shares one batched launch before any request advances.
            ServeArtifact::Chain(chain) => chain.run_batch_mode(&inputs, mode, &launch),
        }
    }));
    let kkey = kernel_key(&artifact);
    drop(inputs);
    if telemetry {
        // Every batch member experienced the whole launch: the hook's
        // launch (and any lazy-lowering compile) intervals fold into
        // every member's span.
        let intervals = hook::drain();
        if !intervals.is_empty() {
            for r in &mut batch {
                for &(phase, nanos) in &intervals {
                    r.pending.trace.add_cost(phase.trace_phase(), nanos);
                }
            }
        }
    }
    let result = match caught {
        Ok(result) => result,
        Err(payload) if batch_size > 1 => {
            // Same isolation as a batched error below: re-run each
            // request alone so one panicking tenant cannot fail (or
            // hang) its batch-mates.
            drop(payload);
            for resolved in batch {
                execute_batch(shared, vec![resolved], meter, breaker);
            }
            return;
        }
        Err(payload) => {
            let err = ServeError::Engine(panic_message(payload));
            let now = shared.clock.now();
            for (resolved, wait) in batch.into_iter().zip(waits) {
                transient_failure(shared, resolved.pending, err.clone(), breaker, now, wait);
            }
            return;
        }
    };

    match result {
        Ok(results) => {
            debug_assert_eq!(results.len(), batch_size);
            if let Some(before) = compiles_before {
                if insum_inductor::ProgramCache::global().stats().compiles == before {
                    for _ in batch.iter().filter(|r| r.warm_pending) {
                        shared.registry.note_warm_miss();
                    }
                }
            }
            let end = shared.clock.now();
            let mut metrics = relock(&shared.metrics);
            metrics.batches += 1;
            metrics.batched_requests += batch_size as u64;
            metrics.largest_batch = metrics.largest_batch.max(batch_size);
            {
                let km = metrics.kernel(&kkey);
                km.requests += batch_size as u64;
                km.batches += 1;
                km.largest_batch = km.largest_batch.max(batch_size);
            }
            for ((mut resolved, (output, profile)), wait) in
                batch.into_iter().zip(results).zip(waits)
            {
                let instances = profile.total_stats().instances;
                #[cfg(feature = "fault-injection")]
                let spike = faults::budget_spike(resolved.pending.id);
                #[cfg(not(feature = "fault-injection"))]
                let spike = 0u64;
                let units = profile.total_cost_units().saturating_add(spike);
                let e2e = end.saturating_sub(resolved.pending.submitted_at);
                {
                    let km = metrics.kernel(&kkey);
                    km.instances_simulated += instances;
                    km.simulated_seconds_total += profile.total_time();
                    km.queue_wait.record_duration(wait);
                }
                // The work executed whether or not the client still
                // wants the result: charge the budget and credit the
                // breaker unconditionally.
                meter.charge(&resolved.pending.tenant, units, end);
                breaker.record_success(&resolved.pending.tenant);
                // Cancelled mid-flight: the result is discarded (the
                // cancel path counted it) but the scheduler still owns
                // the span and queue wait.
                if resolved.pending.ticket.is_complete() {
                    finalize_terminal(
                        shared,
                        &mut resolved.pending,
                        TraceOutcome::Cancelled,
                        &mut metrics,
                        wait,
                        end,
                    );
                    continue;
                }
                // Finalize before completing so the response can carry
                // the full span. A cancel that sneaks in between here
                // and `complete` keeps the counters consistent: the
                // queue wait was recorded exactly once, the cancel path
                // counted `cancelled`, and the `completed` counters
                // below are skipped because the completion lost.
                let trace = finalize_terminal(
                    shared,
                    &mut resolved.pending,
                    TraceOutcome::Completed,
                    &mut metrics,
                    wait,
                    end,
                );
                let response = Response {
                    id: RequestId(resolved.pending.id),
                    tenant: resolved.pending.tenant.to_string(),
                    output,
                    profile,
                    queue_seconds: wait.as_secs_f64(),
                    batch_size,
                    registry_hit: resolved.registry_hit,
                    attempts: resolved.pending.attempt + 1,
                    trace,
                };
                // First-wins against a racing cancel: count the outcome
                // only if this completion actually delivered (the
                // metrics lock is held across the completion, so a
                // waiter can never observe the response before its
                // counters).
                if resolved.pending.ticket.complete(Ok(response)) {
                    metrics.completed += 1;
                    metrics.kernel(&kkey).e2e.record_duration(e2e);
                    let tm = metrics.tenant(&resolved.pending.tenant);
                    tm.completed += 1;
                    tm.e2e.record_duration(e2e);
                    tm.instances_simulated += instances;
                    tm.cost_units += units;
                    tm.cost.record(units);
                }
            }
        }
        Err(_) if batch_size > 1 => {
            // Isolate the failure: the batched launch reports only the
            // first failing request, and the determinism guarantee is
            // per request — a bad tenant must not fail its batch-mates.
            // Re-run each request alone (single-request batches take
            // the arm below on error).
            for resolved in batch {
                execute_batch(shared, vec![resolved], meter, breaker);
            }
        }
        Err(e) => {
            // Deterministic execution error: retrying would fail
            // identically, so complete immediately (no breaker — this is
            // the request's own error, not an engine fault).
            let err = ServeError::from(e);
            let now = shared.clock.now();
            let mut metrics = relock(&shared.metrics);
            for (mut resolved, wait) in batch.into_iter().zip(waits) {
                let outcome = if resolved.pending.ticket.complete(Err(err.clone())) {
                    metrics.failed += 1;
                    metrics.tenant(&resolved.pending.tenant).failed += 1;
                    TraceOutcome::Failed(err.to_string())
                } else {
                    TraceOutcome::Cancelled
                };
                finalize_terminal(
                    shared,
                    &mut resolved.pending,
                    outcome,
                    &mut metrics,
                    wait,
                    now,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::OnceCell;

    fn map(pairs: &[(&str, Tensor)]) -> BTreeMap<String, Tensor> {
        pairs
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect()
    }

    #[test]
    fn ptr_eq_path_groups_shared_storage_without_hashing() {
        let a = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let left = map(&[("A", a.clone()), ("C", Tensor::zeros(vec![4]))]);
        // Tensor clones share storage, so every pair settles on ptr_eq.
        let right = left.clone();
        let (ma, mb) = (OnceCell::new(), OnceCell::new());
        assert!(bindings_identical(&left, &right, &ma, &mb));
        assert!(
            ma.get().is_none() && mb.get().is_none(),
            "the pointer path never pays for a content hash"
        );
    }

    #[test]
    fn content_path_groups_bit_identical_distinct_buffers() {
        let bits = |v: Vec<f32>| Tensor::from_vec(vec![4], v).unwrap();
        let left = map(&[("A", bits(vec![1.0, -0.0, f32::NAN, 4.0]))]);
        let right = map(&[("A", bits(vec![1.0, -0.0, f32::NAN, 4.0]))]);
        assert!(!left["A"].ptr_eq(&right["A"]), "distinct storage");
        let (ma, mb) = (OnceCell::new(), OnceCell::new());
        assert!(
            bindings_identical(&left, &right, &ma, &mb),
            "bit-identical-but-not-shared arguments group together"
        );
        assert!(
            ma.get().is_some() && mb.get().is_some(),
            "the fallback memoized both fingerprint vectors"
        );
        // The memo is reused: a third comparison against `left` must not
        // recompute its fingerprints (OnceCell can only be set once, so
        // reaching another successful compare proves reuse).
        assert!(bindings_identical(&left, &right, &ma, &mb));
    }

    #[test]
    fn content_path_rejects_differing_bits_shapes_and_names() {
        let t = |v: Vec<f32>| Tensor::from_vec(vec![2], v).unwrap();
        let base = map(&[("A", t(vec![1.0, 2.0]))]);
        let cells = || (OnceCell::new(), OnceCell::new());
        // Different value bits (including a sign-of-zero flip).
        for other in [
            map(&[("A", t(vec![1.0, 2.5]))]),
            map(&[("A", t([1.0, -0.0].iter().map(|&v| v * 2.0).collect()))]),
        ] {
            let (ma, mb) = cells();
            assert!(!bindings_identical(&base, &other, &ma, &mb));
        }
        // Different binding name, shape, or dtype short-circuit before
        // any hashing happens.
        for other in [
            map(&[("B", t(vec![1.0, 2.0]))]),
            map(&[("A", Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]).unwrap())]),
            map(&[("A", t(vec![1.0, 2.0]).cast(insum_tensor::DType::F16))]),
        ] {
            let (ma, mb) = cells();
            assert!(!bindings_identical(&base, &other, &ma, &mb));
            assert!(ma.get().is_none(), "structural mismatch never hashes");
        }
    }
}
