//! Process-wide compiled-artifact registry.
//!
//! The registry caches compiled artifacts — [`insum::Compiled`] handles
//! for pairwise expressions, [`insum::CompiledChain`] handles for
//! multi-operand contraction chains — keyed by (expression, argument
//! metadata, compilation options) and coalesces concurrent compilations
//! of the same key into one: the first caller compiles, every other
//! caller blocks on the slot and shares the resulting `Arc`. A chain
//! compiles each pairwise step through the same pipeline, so one chain
//! artifact shared across tenants compiles every step exactly once
//! process-wide. Layered under it, the process-wide
//! [`insum_inductor::ProgramCache`] dedups the simulator lowering (and
//! autotuning relaunches), so concurrent tenants never re-lower the same
//! program.
//!
//! Compilation is deterministic, so errors are cached alongside
//! successes: a second request with the same broken key fails fast
//! without re-running the pipeline. That containment extends to
//! *panics*: a compilation that panics is caught at this boundary and
//! the slot is filled with [`ServeError::Engine`] so concurrent waiters
//! wake instead of blocking on a forever-empty slot. Unlike
//! deterministic errors, though, a panic is treated as *transient* (an
//! injected fault or a compiler bug hit mid-flight): its entry is
//! evicted immediately after the slot fills, so a later attempt — in
//! particular a scheduler retry — recompiles instead of replaying the
//! cached panic forever.
//!
//! Like the [`insum_inductor::ProgramCache`] beneath it, the registry is
//! **bounded**: a long-lived server sees an open-ended stream of
//! distinct (expression, shapes, options) keys, so residency is capped
//! and the least-recently-used artifact is evicted on overflow.
//! Eviction only drops the registry's reference — in-flight requests
//! keep their `Arc<Compiled>` (or slot) alive — and a revisited key
//! simply recompiles.

use crate::engine::{relock, rewait};
use crate::error::ServeError;
use crate::metrics::RegistryStats;
use crate::scheduler::panic_message;
use insum::{insum_with, is_chain_expression, Compiled, CompiledChain, InsumOptions, Tensor};
use insum_tensor::DType;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Default maximum resident artifacts (compiled kernels + plans are a
/// few KB each; this covers many concurrent tenants' working sets).
const DEFAULT_CAPACITY: usize = 256;

/// A registry-resident compiled artifact: a single pairwise kernel, or a
/// planned multi-operand contraction chain (one compiled kernel per
/// device step). Multi-operand expressions — spec-form strings and
/// 3-plus-factor dense statements, per [`is_chain_expression`] — route
/// through the contraction planner; everything else takes the ordinary
/// fused pipeline.
#[derive(Clone)]
pub(crate) enum ServeArtifact {
    Single(Arc<Compiled>),
    Chain(Arc<CompiledChain>),
}

impl ServeArtifact {
    /// Identity comparison (variant plus `Arc` pointer).
    pub(crate) fn ptr_eq(&self, other: &ServeArtifact) -> bool {
        match (self, other) {
            (ServeArtifact::Single(a), ServeArtifact::Single(b)) => Arc::ptr_eq(a, b),
            (ServeArtifact::Chain(a), ServeArtifact::Chain(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ArtifactKey {
    expr: String,
    /// Name, shape, dtype of every bound tensor (shapes select the
    /// launch grid, so they are part of the artifact's identity).
    metas: Vec<(String, Vec<usize>, DType)>,
    /// Stable rendering of the compilation options, with host-side
    /// scheduling knobs normalized out (`sim_threads` never changes the
    /// compiled artifact).
    options: String,
}

impl ArtifactKey {
    fn new(expr: &str, tensors: &BTreeMap<String, Tensor>, options: &InsumOptions) -> ArtifactKey {
        let mut normalized = options.clone();
        normalized.sim_threads = None;
        ArtifactKey {
            expr: expr.to_string(),
            metas: tensors
                .iter()
                .map(|(n, t)| (n.clone(), t.shape().to_vec(), t.dtype()))
                .collect(),
            options: format!("{normalized:?}"),
        }
    }
}

/// One artifact slot: filled exactly once, waited on by every concurrent
/// caller of the same key.
#[derive(Default)]
struct Slot {
    state: Mutex<Option<Result<ServeArtifact, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn fill(&self, value: Result<ServeArtifact, ServeError>) {
        let mut state = relock(&self.state);
        *state = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ServeArtifact, ServeError> {
        let mut state = relock(&self.state);
        while state.is_none() {
            state = rewait(&self.ready, state);
        }
        state.as_ref().expect("slot filled").clone()
    }
}

struct Entry {
    slot: Arc<Slot>,
    /// Recency stamp for LRU eviction (monotone per-registry counter).
    last_used: u64,
}

#[derive(Default)]
struct MapInner {
    map: HashMap<ArtifactKey, Entry>,
    tick: u64,
}

/// The registry. See the module docs.
pub(crate) struct ArtifactRegistry {
    inner: Mutex<MapInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    warm_misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ArtifactRegistry {
    fn default() -> ArtifactRegistry {
        ArtifactRegistry::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ArtifactRegistry {
    /// An empty registry holding at most `capacity` artifacts (clamped
    /// to at least 1).
    pub(crate) fn with_capacity(capacity: usize) -> ArtifactRegistry {
        ArtifactRegistry {
            inner: Mutex::new(MapInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            warm_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch (or compile) the artifact for a request. The first returned
    /// flag is `true` on a registry hit — including a wait on a
    /// compilation already in flight — and `false` when this call
    /// compiled. The second flag is `true` when the compile lowered at
    /// least one new simulator program (autotuned options lower during
    /// the sweep); `false` leaves the miss's warm/cold classification to
    /// the artifact's first launch, where lazy lowering happens (see
    /// [`ArtifactRegistry::note_warm_miss`]).
    pub(crate) fn get_or_compile(
        &self,
        expr: &str,
        tensors: &BTreeMap<String, Tensor>,
        options: &InsumOptions,
    ) -> (Result<ServeArtifact, ServeError>, bool, bool) {
        let key = ArtifactKey::new(expr, tensors, options);
        let (slot, owner) = {
            let mut inner = relock(&self.inner);
            inner.tick += 1;
            let stamp = inner.tick;
            match inner.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = stamp;
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    // LRU bound: evict until the new entry fits.
                    // Evicted in-flight slots stay alive through their
                    // waiters' Arcs.
                    while inner.map.len() >= self.capacity {
                        let Some(oldest) = inner
                            .map
                            .iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, _)| k.clone())
                        else {
                            break;
                        };
                        inner.map.remove(&oldest);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    let slot = Arc::new(Slot::default());
                    inner.map.insert(
                        key.clone(),
                        Entry {
                            slot: Arc::clone(&slot),
                            last_used: stamp,
                        },
                    );
                    (slot, true)
                }
            }
        };
        if owner {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // Compile outside every lock; waiters block on the slot, not
            // the registry, so other keys proceed concurrently. A panic
            // inside the compiler must be contained *here*: letting it
            // unwind would leave the slot forever unfilled — the next
            // same-key request would block the scheduler thread in
            // `Slot::wait`, wedging the whole engine — and would strand
            // the tickets of every other request in the drained window.
            // Program-cache lowering count before/after brackets the
            // compile: a miss that lowered zero new programs was served
            // entirely from resident (e.g. snapshot-seeded) programs.
            let compiles_before = insum_inductor::ProgramCache::global().stats().compiles;
            let compiled = match catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                crate::faults::maybe_panic_compile(expr);
                if is_chain_expression(expr) {
                    insum::plan(expr, tensors, options)
                        .map(|chain| ServeArtifact::Chain(Arc::new(chain)))
                } else {
                    insum_with(expr, tensors, options)
                        .map(|compiled| ServeArtifact::Single(Arc::new(compiled)))
                }
            })) {
                Ok(result) => result.map_err(ServeError::from),
                Err(payload) => Err(ServeError::Engine(format!(
                    "compilation panicked: {}",
                    panic_message(payload)
                ))),
            };
            let compile_lowered =
                insum_inductor::ProgramCache::global().stats().compiles != compiles_before;
            slot.fill(compiled.clone());
            // A compile *panic* is transient: evict its entry (after the
            // fill, so every current waiter still wakes with the shared
            // error) and let the next attempt recompile. Deterministic
            // compile errors stay cached and keep failing fast.
            if matches!(compiled, Err(ServeError::Engine(_))) {
                relock(&self.inner).map.remove(&key);
            }
            (compiled, false, compile_lowered)
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            (slot.wait(), true, false)
        }
    }

    /// Record that a registry miss turned out warm: neither its compile
    /// nor its first launch lowered a new simulator program — every
    /// program was already resident in the process-wide
    /// [`insum_inductor::ProgramCache`] (e.g. snapshot-seeded). Called by
    /// the scheduler once the deferred classification resolves.
    pub(crate) fn note_warm_miss(&self) {
        self.warm_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_misses: self.warm_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: relock(&self.inner).map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insum_tensor::Tensor;

    fn tensors() -> BTreeMap<String, Tensor> {
        [
            ("C".to_string(), Tensor::zeros(vec![8])),
            ("A".to_string(), Tensor::ones(vec![8])),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn concurrent_lookups_share_one_compilation() {
        let registry = ArtifactRegistry::default();
        let t = tensors();
        let opts = InsumOptions::default();
        let artifacts: Vec<ServeArtifact> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let (registry, t, opts) = (&registry, &t, &opts);
                    scope.spawn(move || registry.get_or_compile("C[i] = A[i]", t, opts).0.unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for a in &artifacts[1..] {
            assert!(artifacts[0].ptr_eq(a), "all callers share the artifact");
        }
        let s = registry.stats();
        assert_eq!(s.misses, 1, "exactly one compilation");
        assert_eq!(s.hits, 7);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn sim_threads_does_not_split_artifacts() {
        let registry = ArtifactRegistry::default();
        let t = tensors();
        let a = registry
            .get_or_compile("C[i] = A[i]", &t, &InsumOptions::default())
            .0
            .unwrap();
        let opts = InsumOptions {
            sim_threads: Some(3),
            ..Default::default()
        };
        let b = registry.get_or_compile("C[i] = A[i]", &t, &opts).0.unwrap();
        assert!(a.ptr_eq(&b));
        assert_eq!(registry.stats().entries, 1);
    }

    #[test]
    fn chain_expressions_compile_to_shared_chain_artifacts() {
        let registry = ArtifactRegistry::default();
        let t: BTreeMap<String, Tensor> = [
            ("op0".to_string(), Tensor::ones(vec![4, 3])),
            ("op1".to_string(), Tensor::ones(vec![3, 5])),
            ("op2".to_string(), Tensor::ones(vec![5, 2])),
        ]
        .into_iter()
        .collect();
        let opts = InsumOptions::default();
        let (a, hit_a, _) = registry.get_or_compile("ij,jk,kl->il", &t, &opts);
        let (b, hit_b, _) = registry.get_or_compile("ij,jk,kl->il", &t, &opts);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(matches!(a, ServeArtifact::Chain(_)));
        assert!(a.ptr_eq(&b), "second lookup shares the chain artifact");
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(registry.stats().entries, 1);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used_artifact() {
        let registry = ArtifactRegistry::with_capacity(2);
        let t = tensors();
        let opts = InsumOptions::default();
        registry.get_or_compile("C[i] = A[i]", &t, &opts).0.unwrap();
        registry
            .get_or_compile("C[i] += A[i]", &t, &opts)
            .0
            .unwrap();
        // Touch the first so the second is the LRU victim.
        registry.get_or_compile("C[i] = A[i]", &t, &opts).0.unwrap();
        registry
            .get_or_compile("C[i] = A[i] * A[i]", &t, &opts)
            .0
            .unwrap();
        let s = registry.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 3, 1, 2));
        // The evicted key recompiles; the survivor still hits.
        registry.get_or_compile("C[i] = A[i]", &t, &opts).0.unwrap();
        registry
            .get_or_compile("C[i] += A[i]", &t, &opts)
            .0
            .unwrap();
        let s = registry.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (2, 4, 2, 2));
    }

    #[test]
    fn errors_are_cached() {
        let registry = ArtifactRegistry::default();
        let t = tensors();
        let opts = InsumOptions::default();
        assert!(registry
            .get_or_compile("C[i] ?= A[i]", &t, &opts)
            .0
            .is_err());
        let (second, hit, _) = registry.get_or_compile("C[i] ?= A[i]", &t, &opts);
        assert!(second.is_err());
        assert!(hit, "second failure served from the registry");
        assert_eq!(registry.stats().misses, 1);
    }
}
