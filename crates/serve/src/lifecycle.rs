//! Scheduler-side lifecycle policy: per-tenant cost budgets and the
//! circuit breaker.
//!
//! Both structures are owned exclusively by the scheduler thread (no
//! locks): every admission/charge decision happens at a deterministic
//! point in the scheduling order, fed by the simulator's bit-exact
//! per-launch cost counters ([`insum::Profile::total_cost_units`]), so
//! budget and quarantine outcomes are replayable given the same request
//! stream and clock.

use crate::config::CostBudget;
use std::collections::BTreeMap;
use std::time::Duration;

/// Budget balances are tracked in *scaled* units: one cost unit equals
/// `COST_SCALE` scaled units, so refill (`refill_per_second × elapsed`)
/// is exact integer math at nanosecond resolution — no float drift, no
/// rounding dependence on how often the meter is polled.
const COST_SCALE: i128 = 1_000_000_000;

/// Where a tenant stands against its budget right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BudgetStatus {
    /// No budget configured for this tenant (and no default): never
    /// deprioritized or rejected, but still metered for fairness.
    Unlimited,
    /// In budget: schedule normally.
    Ok,
    /// Balance overdrawn (a charge ran past zero): still served, but
    /// after every in-budget tenant.
    Deprioritized,
    /// Overdrawn past a full capacity: reject with
    /// [`crate::ServeError::BudgetExhausted`] until refill catches up.
    Exhausted,
}

#[derive(Debug)]
struct TenantMeter {
    budget: Option<CostBudget>,
    /// Scaled balance; may go negative (a request is never split, so the
    /// launch that crosses zero overdraws).
    balance: i128,
    last_refill: Duration,
    /// Lifetime cost units charged — the deficit-weighted fair-queueing
    /// key (tenants that have consumed less go first).
    charged_units: u64,
}

impl TenantMeter {
    fn refill(&mut self, now: Duration) {
        let Some(budget) = self.budget else {
            return;
        };
        let dt = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        let gain = i128::from(budget.refill_per_second) * i128::from(dt.as_nanos() as u64);
        let cap = i128::from(budget.capacity) * COST_SCALE;
        self.balance = (self.balance + gain).min(cap);
    }
}

/// Per-tenant token-bucket cost meter (scheduler-thread local).
///
/// Charges are the simulator's deterministic per-launch cost units; the
/// bucket refills continuously at `refill_per_second` up to `capacity`.
/// Tenants with no configured budget are [`BudgetStatus::Unlimited`] but
/// still accumulate `charged_units` so fair ordering covers them too.
#[derive(Debug)]
pub(crate) struct CostMeter {
    budgets: BTreeMap<String, CostBudget>,
    default_budget: Option<CostBudget>,
    tenants: BTreeMap<String, TenantMeter>,
}

impl CostMeter {
    pub(crate) fn new(
        budgets: BTreeMap<String, CostBudget>,
        default_budget: Option<CostBudget>,
    ) -> CostMeter {
        CostMeter {
            budgets,
            default_budget,
            tenants: BTreeMap::new(),
        }
    }

    fn tenant(&mut self, tenant: &str, now: Duration) -> &mut TenantMeter {
        if !self.tenants.contains_key(tenant) {
            let budget = self.budgets.get(tenant).copied().or(self.default_budget);
            self.tenants.insert(
                tenant.to_string(),
                TenantMeter {
                    budget,
                    // A new tenant starts with a full bucket.
                    balance: budget.map_or(0, |b| i128::from(b.capacity) * COST_SCALE),
                    last_refill: now,
                    charged_units: 0,
                },
            );
        }
        self.tenants.get_mut(tenant).expect("just inserted")
    }

    /// The tenant's standing at `now` (refills first).
    pub(crate) fn status(&mut self, tenant: &str, now: Duration) -> BudgetStatus {
        let meter = self.tenant(tenant, now);
        meter.refill(now);
        let Some(budget) = meter.budget else {
            return BudgetStatus::Unlimited;
        };
        if meter.balance >= 0 {
            BudgetStatus::Ok
        } else if meter.balance > -(i128::from(budget.capacity) * COST_SCALE) {
            BudgetStatus::Deprioritized
        } else {
            BudgetStatus::Exhausted
        }
    }

    /// Charge `units` of executed cost to `tenant`.
    pub(crate) fn charge(&mut self, tenant: &str, units: u64, now: Duration) {
        let meter = self.tenant(tenant, now);
        meter.refill(now);
        meter.charged_units = meter.charged_units.saturating_add(units);
        if meter.budget.is_some() {
            meter.balance -= i128::from(units) * COST_SCALE;
        }
    }

    /// Lifetime units charged — the fair-queueing sort key.
    pub(crate) fn charged(&self, tenant: &str) -> u64 {
        self.tenants.get(tenant).map_or(0, |m| m.charged_units)
    }
}

/// One tenant's circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Quarantined until the cooldown elapses; requests are rejected
    /// with [`crate::ServeError::Quarantined`].
    Open { until: Duration },
    /// Cooldown elapsed: exactly one probe request is in flight; its
    /// outcome decides between reopening and closing.
    HalfOpen,
}

/// What the breaker says about scheduling one request now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Schedule normally.
    Allow,
    /// Quarantine is active: reject.
    Reject,
}

#[derive(Debug)]
struct TenantBreaker {
    state: BreakerState,
    /// Consecutive breaker-relevant failures while closed.
    consecutive_failures: u32,
}

/// Per-tenant circuit breaker (scheduler-thread local).
///
/// `threshold` consecutive panics/timeouts open the breaker for
/// `cooldown`; after the cooldown one probe request is let through
/// (half-open) — success closes the breaker, failure reopens it for
/// another cooldown. `threshold == 0` disables the breaker entirely.
#[derive(Debug)]
pub(crate) struct BreakerPanel {
    threshold: u32,
    cooldown: Duration,
    tenants: BTreeMap<String, TenantBreaker>,
}

impl BreakerPanel {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> BreakerPanel {
        BreakerPanel {
            threshold,
            cooldown,
            tenants: BTreeMap::new(),
        }
    }

    fn tenant(&mut self, tenant: &str) -> &mut TenantBreaker {
        if !self.tenants.contains_key(tenant) {
            self.tenants.insert(
                tenant.to_string(),
                TenantBreaker {
                    state: BreakerState::Closed,
                    consecutive_failures: 0,
                },
            );
        }
        self.tenants.get_mut(tenant).expect("just inserted")
    }

    /// May a request from `tenant` be scheduled at `now`? Transitions
    /// `Open → HalfOpen` when the cooldown has elapsed (the admitted
    /// request becomes the probe).
    pub(crate) fn admit(&mut self, tenant: &str, now: Duration) -> BreakerDecision {
        if self.threshold == 0 {
            return BreakerDecision::Allow;
        }
        let b = self.tenant(tenant);
        match b.state {
            BreakerState::Closed | BreakerState::HalfOpen => BreakerDecision::Allow,
            BreakerState::Open { until } => {
                if now >= until {
                    b.state = BreakerState::HalfOpen;
                    BreakerDecision::Allow
                } else {
                    BreakerDecision::Reject
                }
            }
        }
    }

    /// A request from `tenant` completed successfully: close the breaker
    /// and reset the failure streak.
    pub(crate) fn record_success(&mut self, tenant: &str) {
        if self.threshold == 0 {
            return;
        }
        let b = self.tenant(tenant);
        b.state = BreakerState::Closed;
        b.consecutive_failures = 0;
    }

    /// A breaker-relevant failure (terminal panic or deadline expiry)
    /// from `tenant`. Returns `true` when this failure *opened* the
    /// breaker (for the transition metric).
    pub(crate) fn record_failure(&mut self, tenant: &str, now: Duration) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let threshold = self.threshold;
        let cooldown = self.cooldown;
        let b = self.tenant(tenant);
        match b.state {
            // A failed probe reopens immediately.
            BreakerState::HalfOpen => {
                b.state = BreakerState::Open {
                    until: now + cooldown,
                };
                true
            }
            BreakerState::Closed => {
                b.consecutive_failures += 1;
                if b.consecutive_failures >= threshold {
                    b.state = BreakerState::Open {
                        until: now + cooldown,
                    };
                    b.consecutive_failures = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn meter_charges_refills_and_classifies() {
        let budgets = [(
            "t".to_string(),
            CostBudget {
                capacity: 10,
                refill_per_second: 2,
            },
        )]
        .into_iter()
        .collect();
        let mut m = CostMeter::new(budgets, None);
        assert_eq!(m.status("t", secs(0)), BudgetStatus::Ok);
        assert_eq!(m.status("other", secs(0)), BudgetStatus::Unlimited);

        // Spend the full bucket plus a little: deprioritized.
        m.charge("t", 12, secs(0));
        assert_eq!(m.status("t", secs(0)), BudgetStatus::Deprioritized);
        assert_eq!(m.charged("t"), 12);

        // Overdraw a full capacity below zero: exhausted.
        m.charge("t", 8, secs(0));
        assert_eq!(m.status("t", secs(0)), BudgetStatus::Exhausted);

        // Refill at 2 units/s: after 5s the balance is back to 0 (Ok).
        assert_eq!(m.status("t", secs(5)), BudgetStatus::Ok);
        // The bucket caps at capacity: a long sleep can't bank more.
        assert_eq!(m.status("t", secs(10_000)), BudgetStatus::Ok);
        m.charge("t", 10, secs(10_000));
        assert_eq!(m.status("t", secs(10_000)), BudgetStatus::Ok);
        m.charge("t", 1, secs(10_000));
        assert_eq!(m.status("t", secs(10_000)), BudgetStatus::Deprioritized);

        // Unlimited tenants still accumulate the fairness key.
        m.charge("other", 7, secs(0));
        assert_eq!(m.charged("other"), 7);
        assert_eq!(m.status("other", secs(0)), BudgetStatus::Unlimited);
    }

    #[test]
    fn refill_is_exact_integer_math() {
        let budgets = [(
            "t".to_string(),
            CostBudget {
                capacity: 1_000_000,
                refill_per_second: 3,
            },
        )]
        .into_iter()
        .collect();
        let mut m = CostMeter::new(budgets, None);
        m.charge("t", 1_000_000, secs(0));
        // 1e9 refills of 1ns each must equal one refill of 1s exactly.
        for i in 1..=1_000 {
            let _ = m.status("t", Duration::from_micros(i));
        }
        let meter = m.tenants.get("t").unwrap();
        assert_eq!(meter.balance, 3 * COST_SCALE / 1_000);
    }

    #[test]
    fn breaker_opens_probes_and_recovers() {
        let mut b = BreakerPanel::new(2, secs(10));
        assert_eq!(b.admit("t", secs(0)), BreakerDecision::Allow);
        assert!(!b.record_failure("t", secs(0)));
        // Second consecutive failure trips it.
        assert!(b.record_failure("t", secs(1)));
        assert_eq!(b.admit("t", secs(2)), BreakerDecision::Reject);
        // Cooldown elapsed: half-open probe admitted.
        assert_eq!(b.admit("t", secs(11)), BreakerDecision::Allow);
        // Probe fails: reopens (counts as a transition).
        assert!(b.record_failure("t", secs(11)));
        assert_eq!(b.admit("t", secs(12)), BreakerDecision::Reject);
        // Next probe succeeds: closed, streak reset.
        assert_eq!(b.admit("t", secs(22)), BreakerDecision::Allow);
        b.record_success("t");
        assert_eq!(b.admit("t", secs(22)), BreakerDecision::Allow);
        assert!(!b.record_failure("t", secs(23)));

        // Threshold 0 disables everything.
        let mut off = BreakerPanel::new(0, secs(10));
        for i in 0..100 {
            assert!(!off.record_failure("t", secs(i)));
        }
        assert_eq!(off.admit("t", secs(0)), BreakerDecision::Allow);
    }
}
