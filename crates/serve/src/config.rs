//! Engine and per-submit configuration.

use crate::error::ServeError;
use insum::{InsumOptions, Mode};

/// What [`crate::Session::submit`] does when the admission queue is at
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until a slot frees up (or the engine
    /// shuts down). This propagates backpressure into the caller.
    #[default]
    Block,
    /// Fail fast with [`ServeError::Saturated`] so the caller can shed
    /// load or retry with its own policy.
    Reject,
}

/// Engine-wide configuration. Construct with [`ServeConfig::default`]
/// and refine with the builder-style setters:
///
/// ```
/// use insum_serve::{AdmissionPolicy, ServeConfig};
/// let config = ServeConfig::default()
///     .with_queue_capacity(32)
///     .with_max_batch(16)
///     .with_admission(AdmissionPolicy::Reject);
/// assert_eq!(config.queue_capacity, 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum requests admitted but not yet scheduled; submissions
    /// beyond it block or reject per [`ServeConfig::admission`].
    pub queue_capacity: usize,
    /// Maximum requests executed as one batched launch.
    pub max_batch: usize,
    /// Behavior at capacity.
    pub admission: AdmissionPolicy,
    /// Host threads the scheduler's shared simulator pool may use per
    /// batch; `None` resolves automatically (see
    /// [`insum::LaunchOptions`]). The engine owns host scheduling:
    /// per-request `sim_threads` never changes results or profiles, so
    /// it is ignored at execution time.
    pub sim_threads: Option<usize>,
    /// Default compilation options for requests that don't override them
    /// at submit time.
    pub options: InsumOptions,
    /// Maximum resident compiled artifacts in the engine's registry;
    /// the least-recently-used artifact is evicted on overflow (a
    /// revisited key recompiles).
    pub registry_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            admission: AdmissionPolicy::default(),
            sim_threads: None,
            options: InsumOptions::default(),
            registry_capacity: 256,
        }
    }
}

impl ServeConfig {
    /// Set the admission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Set the maximum batched-launch size.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch;
        self
    }

    /// Set the at-capacity behavior.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> ServeConfig {
        self.admission = admission;
        self
    }

    /// Set the shared simulator thread budget.
    #[must_use]
    pub fn with_sim_threads(mut self, threads: Option<usize>) -> ServeConfig {
        self.sim_threads = threads;
        self
    }

    /// Set the default compilation options.
    #[must_use]
    pub fn with_options(mut self, options: InsumOptions) -> ServeConfig {
        self.options = options;
        self
    }

    /// Set the artifact-registry capacity.
    #[must_use]
    pub fn with_registry_capacity(mut self, capacity: usize) -> ServeConfig {
        self.registry_capacity = capacity;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::Config(
                "queue_capacity must be at least 1".to_string(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config(
                "max_batch must be at least 1".to_string(),
            ));
        }
        if self.registry_capacity == 0 {
            return Err(ServeError::Config(
                "registry_capacity must be at least 1".to_string(),
            ));
        }
        if self.sim_threads == Some(0) {
            return Err(ServeError::Config(
                "sim_threads = Some(0): the shared simulator pool needs at \
                 least one host thread; use None for automatic resolution"
                    .to_string(),
            ));
        }
        self.options.validate()?;
        Ok(())
    }
}

/// Per-submit overrides. Construct with [`SubmitOptions::default`]
/// (engine-default options, [`Mode::Execute`]) and refine with the
/// builder-style setters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitOptions {
    /// Compilation options for this request; `None` uses the engine's
    /// [`ServeConfig::options`].
    pub options: Option<InsumOptions>,
    /// Interpreter mode; `None` means [`Mode::Execute`]. Analytic
    /// requests return counters and simulated timing without computing
    /// values (the output binding comes back unmodified).
    pub mode: Option<Mode>,
}

impl SubmitOptions {
    /// Override the compilation options.
    #[must_use]
    pub fn with_options(mut self, options: InsumOptions) -> SubmitOptions {
        self.options = Some(options);
        self
    }

    /// Override the interpreter mode.
    #[must_use]
    pub fn with_mode(mut self, mode: Mode) -> SubmitOptions {
        self.mode = Some(mode);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_defaults() {
        let c = ServeConfig::default();
        assert_eq!(c.admission, AdmissionPolicy::Block);
        assert!(c.validate().is_ok());
        let c = c
            .with_queue_capacity(3)
            .with_max_batch(5)
            .with_admission(AdmissionPolicy::Reject)
            .with_sim_threads(Some(2));
        assert_eq!(
            (c.queue_capacity, c.max_batch, c.sim_threads),
            (3, 5, Some(2))
        );
        assert_eq!(c.admission, AdmissionPolicy::Reject);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            ServeConfig::default().with_queue_capacity(0).validate(),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ServeConfig::default().with_max_batch(0).validate(),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ServeConfig::default().with_sim_threads(Some(0)).validate(),
            Err(ServeError::Config(_))
        ));
    }
}
