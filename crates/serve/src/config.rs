//! Engine and per-submit configuration.

use crate::error::ServeError;
use insum::{InsumOptions, Mode};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// A per-tenant cost budget: a token bucket of the simulator's
/// deterministic cost units (see [`insum_gpu::KernelStats::cost_units`]).
///
/// The bucket starts full at `capacity`, drains by each request's
/// simulated cost, and refills continuously at `refill_per_second` up to
/// `capacity`. A tenant whose balance goes negative is deprioritized
/// (served after every in-budget tenant); once the balance is overdrawn
/// past a full `capacity`, requests are rejected with
/// [`ServeError::BudgetExhausted`] until the refill catches up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBudget {
    /// Maximum banked cost units (also the overdraft allowance before
    /// hard rejection).
    pub capacity: u64,
    /// Cost units restored per second.
    pub refill_per_second: u64,
}

/// What [`crate::Session::submit`] does when the admission queue is at
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the submitting thread until a slot frees up (or the engine
    /// shuts down). This propagates backpressure into the caller.
    #[default]
    Block,
    /// Fail fast with [`ServeError::Saturated`] so the caller can shed
    /// load or retry with its own policy.
    Reject,
}

/// Engine-wide configuration. Construct with [`ServeConfig::default`]
/// and refine with the builder-style setters:
///
/// ```
/// use insum_serve::{AdmissionPolicy, ServeConfig};
/// let config = ServeConfig::default()
///     .with_queue_capacity(32)
///     .with_max_batch(16)
///     .with_admission(AdmissionPolicy::Reject);
/// assert_eq!(config.queue_capacity, 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum requests admitted but not yet scheduled; submissions
    /// beyond it block or reject per [`ServeConfig::admission`].
    pub queue_capacity: usize,
    /// Maximum requests executed as one batched launch.
    pub max_batch: usize,
    /// Behavior at capacity.
    pub admission: AdmissionPolicy,
    /// Host threads the scheduler's shared simulator pool may use per
    /// batch; `None` resolves automatically (see
    /// [`insum::LaunchOptions`]). The engine owns host scheduling:
    /// per-request `sim_threads` never changes results or profiles, so
    /// it is ignored at execution time.
    pub sim_threads: Option<usize>,
    /// Default compilation options for requests that don't override them
    /// at submit time.
    pub options: InsumOptions,
    /// Maximum resident compiled artifacts in the engine's registry;
    /// the least-recently-used artifact is evicted on overflow (a
    /// revisited key recompiles).
    pub registry_capacity: usize,
    /// Base delay before the first retry of a transiently failed request
    /// (doubles per attempt, capped at [`ServeConfig::retry_backoff_max`]).
    pub retry_backoff: Duration,
    /// Upper bound on the exponential retry backoff.
    pub retry_backoff_max: Duration,
    /// Per-tenant cost budgets, keyed by tenant name. Tenants not listed
    /// here fall back to [`ServeConfig::default_budget`].
    pub budgets: BTreeMap<String, CostBudget>,
    /// Budget applied to tenants without an explicit entry in
    /// [`ServeConfig::budgets`]; `None` leaves them unbudgeted
    /// (unlimited, but still cost-metered for fair ordering).
    pub default_budget: Option<CostBudget>,
    /// Consecutive breaker-relevant failures (contained panics, deadline
    /// expiries) that quarantine a tenant. `0` disables the circuit
    /// breaker.
    pub breaker_threshold: u32,
    /// How long a quarantined tenant waits before the breaker admits a
    /// half-open probe request.
    pub breaker_cooldown: Duration,
    /// Snapshot file for crash-safe artifact persistence. When set, the
    /// engine warm-starts the global [`insum_inductor::ProgramCache`]
    /// from this file at boot (corrupt or stale records degrade to
    /// recompile) and persists compiled programs plus autotune winners
    /// back to it — atomically, via temp + fsync + rename — on the
    /// [`ServeConfig::snapshot_interval`] cadence and at drain/shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Minimum time between cadence snapshot writes while serving.
    /// Ignored when [`ServeConfig::snapshot_path`] is `None`; the final
    /// drain/shutdown write always happens regardless of cadence.
    pub snapshot_interval: Duration,
    /// Request tracing: when `true` (the default) every request carries
    /// a [`insum_telemetry::Trace`] of timestamped phase transitions
    /// (returned on [`crate::Response::trace`] and kept in the flight
    /// recorder), and the scheduler collects compile/autotune/launch
    /// timings through the profiling hook. Latency histograms are always
    /// maintained regardless — they replace the engine's core wait
    /// accounting, not an optional extra.
    pub telemetry: bool,
    /// How many recent terminal request traces the flight recorder
    /// retains (failures get an additional dedicated ring of the same
    /// capacity). `0` disables the recorder.
    pub flight_recorder_capacity: usize,
    /// When set, the scheduler atomically dumps the metrics snapshot to
    /// this path in Prometheus text format — and, alongside it, a
    /// `.json` sibling — on the [`ServeConfig::telemetry_dump_interval`]
    /// cadence and at drain/shutdown (same temp + fsync + rename write
    /// path as artifact snapshots).
    pub telemetry_dump_path: Option<PathBuf>,
    /// Minimum time between cadence telemetry dumps. Ignored when
    /// [`ServeConfig::telemetry_dump_path`] is `None`.
    pub telemetry_dump_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            admission: AdmissionPolicy::default(),
            sim_threads: None,
            options: InsumOptions::default(),
            registry_capacity: 256,
            retry_backoff: Duration::from_millis(20),
            retry_backoff_max: Duration::from_secs(1),
            budgets: BTreeMap::new(),
            default_budget: None,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_secs(5),
            snapshot_path: None,
            snapshot_interval: Duration::from_secs(60),
            telemetry: true,
            flight_recorder_capacity: 64,
            telemetry_dump_path: None,
            telemetry_dump_interval: Duration::from_secs(60),
        }
    }
}

impl ServeConfig {
    /// Set the admission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeConfig {
        self.queue_capacity = capacity;
        self
    }

    /// Set the maximum batched-launch size.
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch;
        self
    }

    /// Set the at-capacity behavior.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> ServeConfig {
        self.admission = admission;
        self
    }

    /// Set the shared simulator thread budget.
    #[must_use]
    pub fn with_sim_threads(mut self, threads: Option<usize>) -> ServeConfig {
        self.sim_threads = threads;
        self
    }

    /// Set the default compilation options.
    #[must_use]
    pub fn with_options(mut self, options: InsumOptions) -> ServeConfig {
        self.options = options;
        self
    }

    /// Set the artifact-registry capacity.
    #[must_use]
    pub fn with_registry_capacity(mut self, capacity: usize) -> ServeConfig {
        self.registry_capacity = capacity;
        self
    }

    /// Set the retry backoff base and cap.
    #[must_use]
    pub fn with_retry_backoff(mut self, base: Duration, max: Duration) -> ServeConfig {
        self.retry_backoff = base;
        self.retry_backoff_max = max;
        self
    }

    /// Give `tenant` an explicit cost budget.
    #[must_use]
    pub fn with_budget(mut self, tenant: &str, budget: CostBudget) -> ServeConfig {
        self.budgets.insert(tenant.to_string(), budget);
        self
    }

    /// Set the budget for tenants without an explicit entry.
    #[must_use]
    pub fn with_default_budget(mut self, budget: Option<CostBudget>) -> ServeConfig {
        self.default_budget = budget;
        self
    }

    /// Enable the per-tenant circuit breaker: `threshold` consecutive
    /// failures quarantine a tenant for `cooldown`.
    #[must_use]
    pub fn with_breaker(mut self, threshold: u32, cooldown: Duration) -> ServeConfig {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Persist compiled artifacts to (and warm-start from) `path`.
    #[must_use]
    pub fn with_snapshot(mut self, path: impl Into<PathBuf>) -> ServeConfig {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Set the minimum time between cadence snapshot writes.
    #[must_use]
    pub fn with_snapshot_interval(mut self, interval: Duration) -> ServeConfig {
        self.snapshot_interval = interval;
        self
    }

    /// Enable or disable request tracing and the profiling hook (the
    /// flight recorder follows: a disabled engine records no traces).
    #[must_use]
    pub fn with_telemetry(mut self, enabled: bool) -> ServeConfig {
        self.telemetry = enabled;
        self
    }

    /// Set the flight-recorder ring capacity (`0` disables it).
    #[must_use]
    pub fn with_flight_recorder_capacity(mut self, capacity: usize) -> ServeConfig {
        self.flight_recorder_capacity = capacity;
        self
    }

    /// Periodically dump the metrics snapshot (Prometheus text at
    /// `path`, JSON at `path` with a `.json` extension) on the
    /// [`ServeConfig::telemetry_dump_interval`] cadence.
    #[must_use]
    pub fn with_telemetry_dump(mut self, path: impl Into<PathBuf>) -> ServeConfig {
        self.telemetry_dump_path = Some(path.into());
        self
    }

    /// Set the minimum time between cadence telemetry dumps.
    #[must_use]
    pub fn with_telemetry_dump_interval(mut self, interval: Duration) -> ServeConfig {
        self.telemetry_dump_interval = interval;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::Config(
                "queue_capacity must be at least 1".to_string(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::Config(
                "max_batch must be at least 1".to_string(),
            ));
        }
        if self.registry_capacity == 0 {
            return Err(ServeError::Config(
                "registry_capacity must be at least 1".to_string(),
            ));
        }
        if self.sim_threads == Some(0) {
            return Err(ServeError::Config(
                "sim_threads = Some(0): the shared simulator pool needs at \
                 least one host thread; use None for automatic resolution"
                    .to_string(),
            ));
        }
        if self.retry_backoff_max < self.retry_backoff {
            return Err(ServeError::Config(
                "retry_backoff_max must be at least retry_backoff".to_string(),
            ));
        }
        if self.snapshot_path.is_some() && self.snapshot_interval.is_zero() {
            return Err(ServeError::Config(
                "snapshot_interval must be nonzero when snapshot_path is set".to_string(),
            ));
        }
        if self.telemetry_dump_path.is_some() && self.telemetry_dump_interval.is_zero() {
            return Err(ServeError::Config(
                "telemetry_dump_interval must be nonzero when telemetry_dump_path is set"
                    .to_string(),
            ));
        }
        for (tenant, budget) in self
            .budgets
            .iter()
            .map(|(t, b)| (t.as_str(), b))
            .chain(self.default_budget.iter().map(|b| ("<default>", b)))
        {
            if budget.capacity == 0 {
                return Err(ServeError::Config(format!(
                    "budget for tenant {tenant:?}: capacity must be at least 1"
                )));
            }
        }
        self.options.validate()?;
        Ok(())
    }
}

/// Per-submit overrides. Construct with [`SubmitOptions::default`]
/// (engine-default options, [`Mode::Execute`]) and refine with the
/// builder-style setters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitOptions {
    /// Compilation options for this request; `None` uses the engine's
    /// [`ServeConfig::options`].
    pub options: Option<InsumOptions>,
    /// Interpreter mode; `None` means [`Mode::Execute`]. Analytic
    /// requests return counters and simulated timing without computing
    /// values (the output binding comes back unmodified).
    pub mode: Option<Mode>,
    /// Relative deadline measured from admission; once it elapses the
    /// scheduler expires the request with
    /// [`ServeError::DeadlineExceeded`] instead of executing it (expiry
    /// is enforced even while the engine is paused). `None` means no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Transient-failure retries allowed after the first attempt
    /// (contained panics and injected faults retry with bounded
    /// exponential backoff; deterministic errors never retry). `0`
    /// keeps the pre-retry behavior: the first failure is final.
    pub max_retries: u32,
    /// Scheduling priority inside a drained window: higher runs earlier
    /// among requests of equal budget standing. Ties (the default `0`)
    /// preserve arrival order.
    pub priority: i32,
}

impl SubmitOptions {
    /// Override the compilation options.
    #[must_use]
    pub fn with_options(mut self, options: InsumOptions) -> SubmitOptions {
        self.options = Some(options);
        self
    }

    /// Override the interpreter mode.
    #[must_use]
    pub fn with_mode(mut self, mode: Mode) -> SubmitOptions {
        self.mode = Some(mode);
        self
    }

    /// Set a relative deadline (measured from admission).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> SubmitOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Allow up to `retries` transient-failure re-attempts.
    #[must_use]
    pub fn with_max_retries(mut self, retries: u32) -> SubmitOptions {
        self.max_retries = retries;
        self
    }

    /// Set the scheduling priority (higher runs earlier).
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> SubmitOptions {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_defaults() {
        let c = ServeConfig::default();
        assert_eq!(c.admission, AdmissionPolicy::Block);
        assert!(c.validate().is_ok());
        let c = c
            .with_queue_capacity(3)
            .with_max_batch(5)
            .with_admission(AdmissionPolicy::Reject)
            .with_sim_threads(Some(2));
        assert_eq!(
            (c.queue_capacity, c.max_batch, c.sim_threads),
            (3, 5, Some(2))
        );
        assert_eq!(c.admission, AdmissionPolicy::Reject);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            ServeConfig::default().with_queue_capacity(0).validate(),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ServeConfig::default().with_max_batch(0).validate(),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ServeConfig::default().with_sim_threads(Some(0)).validate(),
            Err(ServeError::Config(_))
        ));
        assert!(matches!(
            ServeConfig::default()
                .with_snapshot("/tmp/x.snap")
                .with_snapshot_interval(Duration::ZERO)
                .validate(),
            Err(ServeError::Config(_))
        ));
        // A zero interval without a snapshot path is inert, not an error.
        assert!(ServeConfig::default()
            .with_snapshot_interval(Duration::ZERO)
            .validate()
            .is_ok());
        assert!(matches!(
            ServeConfig::default()
                .with_telemetry_dump("/tmp/metrics.prom")
                .with_telemetry_dump_interval(Duration::ZERO)
                .validate(),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn telemetry_defaults_and_builders() {
        let c = ServeConfig::default();
        assert!(c.telemetry);
        assert_eq!(c.flight_recorder_capacity, 64);
        assert!(c.telemetry_dump_path.is_none());
        let c = c
            .with_telemetry(false)
            .with_flight_recorder_capacity(8)
            .with_telemetry_dump("/tmp/metrics.prom")
            .with_telemetry_dump_interval(Duration::from_secs(5));
        assert!(!c.telemetry);
        assert_eq!(c.flight_recorder_capacity, 8);
        assert_eq!(
            c.telemetry_dump_path.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.prom"))
        );
        assert!(c.validate().is_ok());
    }
}
