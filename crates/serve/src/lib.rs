//! # Insum-serve — async multi-tenant einsum serving
//!
//! Real deployments of sparse GPU kernels (sparse DL inference in the
//! style of Gale et al., *Sparse GPU Kernels for Deep Learning*) are
//! driven by many concurrent requests, not single launches. This crate
//! puts an asynchronous, multi-tenant serving engine in front of the
//! Insum compile/run stack:
//!
//! * **Sessions** ([`ServeEngine::session`]) submit requests as plain
//!   `(expression, tensors)` pairs and get back awaitable
//!   [`ResponseHandle`]s ([`Session::submit`] returns at admission; the
//!   handle implements [`std::future::Future`] and also offers blocking
//!   [`ResponseHandle::wait`]).
//! * **A bounded admission queue** applies backpressure (see below).
//! * **A batching scheduler** groups launch-compatible pending requests
//!   — same kernel fingerprint, grid, parameter metadata, mode, and
//!   device — and executes each group as one batched launch, so the
//!   simulator's host threads are shared by the batch instead of being
//!   scheduled per request
//!   ([`insum_gpu::Program::launch_batch_with`]).
//! * **A compiled-artifact registry** shares `Arc<`[`insum::Compiled`]`>`
//!   handles across tenants with single-flight compilation, layered on
//!   the process-wide [`insum_inductor::ProgramCache`] — concurrent
//!   tenants never re-lower (or re-autotune) the same program.
//! * **Per-tenant and per-kernel metrics** ([`ServeEngine::metrics`]):
//!   queue depths, registry/program-cache hits, batch sizes, simulated
//!   instance counts, and log-bucketed latency histograms (queue wait,
//!   compile, end-to-end, cost units) with p50/p95/p99 quantiles.
//! * **Request tracing and exposition**
//!   ([`Response::trace`], [`ServeEngine::traces`],
//!   [`MetricsSnapshot::render_prometheus`]): every request carries a
//!   timestamped span of its phase transitions on the engine clock, the
//!   last N spans live in a flight recorder with a dedicated failures
//!   ring ([`ServeEngine::dump_failed_traces`]), and the whole metrics
//!   snapshot renders as Prometheus text or JSON — optionally dumped
//!   atomically on a cadence ([`ServeConfig::with_telemetry_dump`]).
//!
//! ## Determinism guarantee
//!
//! **Batching never changes bits.** For every admitted request the
//! response's output tensor and [`insum::Profile`] are bit-identical to
//! a synchronous one-shot `insum_with(expr, &tensors, &options)?.run(&tensors)`
//! of that same request, regardless of arrival order, queue state, batch
//! composition, or the engine's thread budget. This holds because (a)
//! compilation is deterministic, so the registry's shared artifact is
//! the one the request would have compiled itself; (b) a batched launch
//! executes each request with exactly the per-request interpreter
//! semantics — requests own their tensors, so request-level parallelism
//! needs no merge — and (c) the simulator's intra-request sharding is
//! itself bit-deterministic at every thread count (PR 1's write-log
//! replay). The engine only decides *when* work runs, never *what* it
//! computes.
//!
//! ## Request lifecycle
//!
//! Every admitted request moves through a small state machine, and
//! every path out of it resolves the client's [`ResponseHandle`]:
//!
//! ```text
//!              submit()
//!                 │
//!                 ▼
//!  ┌─────────► queued ──────────────┬────────────► cancelled
//!  │              │                 │              (ResponseHandle::cancel;
//!  │   drained by the scheduler     │               frees the queue slot)
//!  │              ▼                 │
//!  │          scheduled ────────────┼────────────► expired
//!  │         │    │     │          deadline        (ServeError::DeadlineExceeded,
//!  │  breaker│    │     │budget     elapses         enforced even while paused)
//!  │    open │    │     │exhausted
//!  │         ▼    │     ▼
//!  │  quarantined │   budget-rejected
//!  │              ▼
//!  │          executing ──────────────────────────► done (Ok / deterministic Err)
//!  │              │
//!  │     transient failure (contained panic, injected fault)
//!  │              │
//!  │   attempt < max_retries?
//!  └──── yes: retrying ──── no: failed (ServeError::Engine)
//!        (exponential backoff:
//!         retry_backoff × 2^(attempt−1), capped)
//! ```
//!
//! Deadlines ([`SubmitOptions::with_deadline`]) are relative to
//! admission and enforced scheduler-side, so a timed-out request never
//! occupies a batch slot. Cancellation
//! ([`ResponseHandle::cancel`]) removes queued requests immediately and
//! marks in-flight ones abandoned (the engine discards their results).
//! Retries re-enter the same scheduling path and **never change bits**:
//! a response that eventually succeeds is byte-for-byte the one the
//! first attempt would have produced ([`Response::attempts`] records
//! how many tries it took). All timing runs on an injectable [`Clock`]
//! — production uses the monotonic [`SystemClock`], tests drive a
//! [`TestClock`] so deadline/backoff/breaker behavior is deterministic.
//!
//! ## Trace spans
//!
//! With telemetry enabled (the default), every request records the same
//! state machine as a [`Trace`] — timestamped [`Phase`] events on the
//! engine clock, one event per transition the request actually took:
//!
//! ```text
//!  admitted ─► scheduled ─► registry_wait ─► batched ─► respond
//!     │            │          (info: hit?)  (info: size)  (info: attempts)
//!     │            ├──► expired / quarantined / budget_rejected
//!     │            ├──► retry (info: attempt) ─► scheduled ─► …
//!     │            └──► failed (info: attempts)
//!     └──► cancelled             (terminal phases end the span)
//! ```
//!
//! Aggregated compile / autotune / launch timings from the profiling
//! hook ([`insum_telemetry::hook`]) fold into the span as
//! [`PhaseCost`]s. A completed request's span rides back on
//! [`Response::trace`]; every terminal span also lands in the engine's
//! flight recorder ([`ServeEngine::traces`]), where failures go to a
//! dedicated ring that success floods cannot evict
//! ([`ServeEngine::failed_traces`], [`ServeEngine::dump_failed_traces`]).
//! Under a [`TestClock`] every timestamp is virtual, so spans are
//! bit-deterministic and assertable in tests.
//!
//! ## Budget model and fairness
//!
//! The simulator's per-launch counters are bit-deterministic, so cost
//! accounting can be exact: every completed request is charged
//! [`insum::Profile::total_cost_units`] (instructions + weighted DRAM
//! sectors + atomics) against its tenant's [`CostBudget`] — a token
//! bucket of `capacity` units refilling at `refill_per_second`
//! ([`ServeConfig::with_budget`], [`ServeConfig::with_default_budget`]).
//! A tenant whose balance goes negative is *deprioritized* (scheduled
//! after every in-budget tenant); overdrawn past a full `capacity`, its
//! requests are rejected with [`ServeError::BudgetExhausted`] until the
//! refill catches up. When the scheduler assembles launch-compatible
//! batches it orders requests by deficit-weighted fairness — in-budget
//! first, then higher [`SubmitOptions::with_priority`], then least
//! lifetime cost consumed — so no tenant starves behind a greedy one.
//! Ordering only changes *when* work runs, never what it computes, so
//! the determinism guarantee is untouched. A per-tenant circuit breaker
//! ([`ServeConfig::with_breaker`]) quarantines tenants whose requests
//! repeatedly panic or expire ([`ServeError::Quarantined`]), with a
//! half-open probe after the cooldown to recover.
//!
//! ## Fault isolation
//!
//! Failures are contained per request. A request that fails inside a
//! batched launch is re-run alone so it cannot fail its batch-mates; a
//! request that *panics* the simulator is caught at the execution
//! boundary and — once its retries are exhausted — completed with
//! [`ServeError::Engine`] while the scheduler thread keeps running; and
//! every engine lock recovers from poisoning, so one bad request can
//! never take down unrelated tenants' `submit`/`metrics`/`shutdown`
//! calls.
//!
//! ## Zero-copy request path
//!
//! `Tensor` storage is Arc-backed copy-on-write, so admission
//! (`Session::submit` captures the tensor map), scheduling, and launch
//! binding all share the caller's buffers — an admitted request holds
//! references, not copies, and only its written output materializes.
//! The scheduler exploits this with a [`insum_tensor::Tensor::ptr_eq`]
//! first pass: fan-out requests binding pointer-identical tensors prove
//! launch compatibility without metadata extraction. The CI smoke
//! (`servebench --smoke`) asserts the warm shared-argument batched path
//! performs zero deep tensor copies in analytic mode.
//!
//! ## Backpressure model
//!
//! Admission is bounded by [`ServeConfig::queue_capacity`], counting
//! requests that are admitted but not yet picked up by the scheduler.
//! At capacity, [`AdmissionPolicy::Block`] (default) parks the
//! submitting thread until the scheduler drains the queue — pushing the
//! slowdown into producers — while [`AdmissionPolicy::Reject`] fails
//! fast with [`ServeError::Saturated`] so callers can shed load.
//! Shutdown closes admission immediately (blocked submitters observe
//! [`ServeError::Closed`]) but still serves everything already
//! admitted.
//!
//! ## Example
//!
//! ```
//! use insum_serve::{block_on, ServeConfig, ServeEngine};
//! use insum_tensor::Tensor;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), insum_serve::ServeError> {
//! let engine = ServeEngine::new(ServeConfig::default())?;
//! let session = engine.session("tenant-a");
//!
//! let mut tensors = BTreeMap::new();
//! tensors.insert("C".into(), Tensor::zeros(vec![4, 32]));
//! tensors.insert("AM".into(), Tensor::from_indices(vec![3], vec![0, 2, 3]).unwrap());
//! tensors.insert("AK".into(), Tensor::from_indices(vec![3], vec![1, 0, 7]).unwrap());
//! tensors.insert("AV".into(), Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap());
//! tensors.insert("B".into(), Tensor::ones(vec![8, 32]));
//!
//! let handle = session.submit("C[AM[p],n] += AV[p] * B[AK[p],n]", &tensors)?;
//! let response = block_on(handle)?; // or handle.wait()
//! assert_eq!(response.output.at(&[2, 0]), 2.0);
//! assert_eq!(response.profile.launches(), 1);
//! # Ok(())
//! # }
//! ```

mod clock;
mod config;
mod engine;
mod error;
mod lifecycle;
mod metrics;
mod registry;
mod scheduler;
mod session;

pub use clock::{Clock, SystemClock, TestClock};
pub use config::{AdmissionPolicy, CostBudget, ServeConfig, SubmitOptions};
pub use engine::ServeEngine;
pub use error::ServeError;
pub use metrics::{KernelMetrics, MetricsSnapshot, RegistryStats, TenantMetrics};
pub use session::{RequestId, Response, ResponseHandle, Session};

// Telemetry vocabulary re-exported so dependents can consume
// [`Response::trace`] and [`ServeEngine::traces`] without naming the
// telemetry crate.
pub use insum_telemetry::{
    Histogram, Phase, PhaseCost, RecordedTrace, Trace, TraceEvent, TraceOutcome,
};

#[cfg(feature = "fault-injection")]
#[doc(hidden)]
pub use scheduler::faults;

use std::future::Future;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

struct ThreadWaker(std::thread::Thread);

impl std::task::Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drive a future to completion on the calling thread — a minimal,
/// dependency-free executor for awaiting [`ResponseHandle`]s outside an
/// async runtime.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = std::pin::pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}
