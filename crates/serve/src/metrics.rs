//! Engine observability: per-tenant and per-kernel counters, latency
//! histograms, and the Prometheus/JSON exposition layer.
//!
//! Latency is tracked in [`insum_telemetry::Histogram`]s — fixed
//! log-bucketed bins recorded in nanoseconds on the engine clock, so
//! percentiles are exact to ≤12.5% and two engines fed the same requests
//! in any order hold bit-identical histograms. Three latency families
//! exist per tenant and per kernel:
//!
//! * **queue wait** — admission to the terminal decision. Every
//!   admitted request lands here exactly once, whatever its fate
//!   (completed, failed, cancelled, expired, budget-rejected, or
//!   quarantined), so at quiescence
//!   `queue_wait.count() == completed + failed + cancelled +
//!   deadline_expired + budget_rejected + quarantined`.
//! * **compile** — artifact-registry resolve time on misses.
//! * **end-to-end** — admission to response delivery (completed
//!   requests only).
//!
//! plus a per-tenant histogram over deterministic simulated **cost
//! units**.

use insum_inductor::ProgramCacheStats;
use insum_telemetry::expo;
use insum_telemetry::json::Value;
use insum_telemetry::Histogram;
use std::collections::BTreeMap;
use std::fmt;

/// Counters for one tenant (session namespace).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantMetrics {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Submissions rejected at admission (saturated or closed).
    pub rejected: u64,
    /// Transient-failure re-attempts scheduled (a request retried twice
    /// counts twice).
    pub retries: u64,
    /// Requests expired by the scheduler past their deadline.
    pub deadline_expired: u64,
    /// Requests cancelled through [`crate::ResponseHandle::cancel`].
    pub cancelled: u64,
    /// Requests rejected because the tenant's cost budget was exhausted.
    pub budget_rejected: u64,
    /// Requests rejected while the tenant's circuit breaker was open.
    pub quarantined: u64,
    /// Times this tenant's circuit breaker transitioned to open.
    pub breaker_open_transitions: u64,
    /// Deterministic simulated cost units charged to this tenant (see
    /// [`insum::Profile::total_cost_units`]).
    pub cost_units: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Queue wait (admission to terminal decision) of every terminal
    /// request, nanoseconds on the engine clock.
    pub queue_wait: Histogram,
    /// End-to-end latency (admission to response delivery) of completed
    /// requests, nanoseconds.
    pub e2e: Histogram,
    /// Artifact resolve time of registry misses this tenant triggered,
    /// nanoseconds.
    pub compile: Histogram,
    /// Simulated cost units per completed request (raw units, not time).
    pub cost: Histogram,
    /// Artifact-registry hits attributed to this tenant's requests.
    pub registry_hits: u64,
    /// Artifact-registry misses (compilations) this tenant triggered.
    pub registry_misses: u64,
    /// Simulated grid instances executed for this tenant.
    pub instances_simulated: u64,
}

impl TenantMetrics {
    /// Total queue wait in seconds (exact sum, not bucket-quantized).
    /// Successor of the removed `wait_seconds_total` field.
    pub fn wait_seconds_total(&self) -> f64 {
        self.queue_wait.sum_seconds()
    }

    /// Worst single-request queue wait in seconds (exact max).
    /// Successor of the removed `wait_seconds_max` field.
    pub fn wait_seconds_max(&self) -> f64 {
        self.queue_wait.max_seconds()
    }

    /// Terminal requests recorded so far (the queue-wait histogram's
    /// count; see the module docs for the reconciliation identity).
    pub fn terminal(&self) -> u64 {
        self.completed
            + self.failed
            + self.cancelled
            + self.deadline_expired
            + self.budget_rejected
            + self.quarantined
    }
}

/// Counters for one kernel identity (fingerprint + grid).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelMetrics {
    /// Requests served by this kernel.
    pub requests: u64,
    /// Batched launches issued.
    pub batches: u64,
    /// Largest batch executed.
    pub largest_batch: usize,
    /// Simulated grid instances executed.
    pub instances_simulated: u64,
    /// Total simulated device time, seconds.
    pub simulated_seconds_total: f64,
    /// Queue wait of the requests served, nanoseconds.
    pub queue_wait: Histogram,
    /// End-to-end latency of the requests served, nanoseconds.
    pub e2e: Histogram,
    /// Artifact resolve time of the registry misses that compiled this
    /// kernel, nanoseconds.
    pub compile: Histogram,
}

impl KernelMetrics {
    /// Total queue wait in seconds (exact sum). Successor of the removed
    /// `wait_seconds_total` field.
    pub fn wait_seconds_total(&self) -> f64 {
        self.queue_wait.sum_seconds()
    }
}

/// Artifact-registry effectiveness (compiled [`insum::Compiled`]
/// handles shared across tenants).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups that reused (or waited on) an existing artifact.
    pub hits: u64,
    /// Lookups that compiled a new artifact.
    pub misses: u64,
    /// The subset of `misses` whose compile lowered zero new simulator
    /// programs because every program was already resident in the
    /// process-wide [`insum_inductor::ProgramCache`] — e.g. seeded from
    /// a snapshot. Distinguishes miss-then-compile from
    /// miss-then-snapshot-hit, so a warm restart can assert exactly
    /// `misses == warm_misses`.
    pub warm_misses: u64,
    /// Artifacts dropped to respect the capacity bound (LRU order).
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
}

/// A point-in-time view of the engine's counters.
///
/// Every admitted request ends in exactly one terminal counter, so at
/// quiescence (empty queue, no in-flight work) the books reconcile:
/// `submitted == completed + failed + cancelled + deadline_expired +
/// budget_rejected + quarantined + queue_depth`. (`rejected` counts
/// submissions that were never admitted and `retries` counts extra
/// attempts of admitted requests; neither appears in the identity.)
/// The same identity holds against the per-tenant queue-wait
/// histograms: each terminal request is recorded in exactly one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted across all tenants.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Transient-failure re-attempts scheduled across all tenants.
    pub retries: u64,
    /// Requests expired past their deadline.
    pub deadline_expired: u64,
    /// Requests cancelled by their clients.
    pub cancelled: u64,
    /// Requests rejected on exhausted cost budgets.
    pub budget_rejected: u64,
    /// Requests rejected by open circuit breakers.
    pub quarantined: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// High-water mark of the admission queue.
    pub queue_depth_max: usize,
    /// Batched launches issued.
    pub batches: u64,
    /// Requests executed through batched launches.
    pub batched_requests: u64,
    /// Largest batch executed.
    pub largest_batch: usize,
    /// Artifact-registry counters.
    pub registry: RegistryStats,
    /// Process-wide program-cache counters (lowered simulator programs).
    pub program_cache: ProgramCacheStats,
    /// Snapshot files durably written (temp + fsync + rename) by this
    /// engine, on cadence or at drain/shutdown.
    pub snapshot_writes: u64,
    /// Telemetry dumps (Prometheus + JSON files) atomically written by
    /// this engine, on cadence or at drain/shutdown.
    pub telemetry_dumps: u64,
    /// Program-cache hits whose entry was seeded from a snapshot rather
    /// than compiled in this process (mirror of
    /// [`ProgramCacheStats::warm_hits`], surfaced for servebench's
    /// warm-restart assertion).
    pub warm_start_hits: u64,
    /// Snapshot records rejected at load: CRC failures, truncations,
    /// stale fingerprints, version skew — each degraded to recompile
    /// (mirror of [`ProgramCacheStats::snapshot_rejected`]).
    pub snapshot_rejected: u64,
    /// Per-tenant breakdown.
    pub tenants: BTreeMap<String, TenantMetrics>,
    /// Per-kernel breakdown, keyed `"<fingerprint>@<grid>"` (or
    /// `"unfused:<statement>"` for unbatchable pipelines).
    pub kernels: BTreeMap<String, KernelMetrics>,
}

impl MetricsSnapshot {
    /// Engine-wide queue-wait histogram (all tenants merged; merging is
    /// exact, see [`Histogram::merge`]).
    pub fn queue_wait(&self) -> Histogram {
        self.merged(|t| &t.queue_wait)
    }

    /// Engine-wide end-to-end latency histogram (all tenants merged).
    pub fn e2e(&self) -> Histogram {
        self.merged(|t| &t.e2e)
    }

    /// Engine-wide compile-time histogram (all tenants merged).
    pub fn compile(&self) -> Histogram {
        self.merged(|t| &t.compile)
    }

    fn merged(&self, f: impl Fn(&TenantMetrics) -> &Histogram) -> Histogram {
        let mut h = Histogram::new();
        for t in self.tenants.values() {
            h.merge(f(t));
        }
        h
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4). Histograms are exposed in seconds with
    /// cumulative `le` buckets; cost units stay raw. Deterministic: the
    /// same snapshot always renders the same bytes.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let engine_counters: [(&str, f64); 12] = [
            ("serve_submitted_total", self.submitted as f64),
            ("serve_completed_total", self.completed as f64),
            ("serve_failed_total", self.failed as f64),
            ("serve_rejected_total", self.rejected as f64),
            ("serve_retries_total", self.retries as f64),
            ("serve_deadline_expired_total", self.deadline_expired as f64),
            ("serve_cancelled_total", self.cancelled as f64),
            ("serve_budget_rejected_total", self.budget_rejected as f64),
            ("serve_quarantined_total", self.quarantined as f64),
            ("serve_batches_total", self.batches as f64),
            ("serve_snapshot_writes_total", self.snapshot_writes as f64),
            ("serve_telemetry_dumps_total", self.telemetry_dumps as f64),
        ];
        for (name, v) in engine_counters {
            expo::write_type(&mut out, name, "counter");
            expo::write_sample(&mut out, name, &[], v);
        }
        expo::write_type(&mut out, "serve_queue_depth", "gauge");
        expo::write_sample(&mut out, "serve_queue_depth", &[], self.queue_depth as f64);
        expo::write_type(&mut out, "serve_queue_depth_max", "gauge");
        expo::write_sample(
            &mut out,
            "serve_queue_depth_max",
            &[],
            self.queue_depth_max as f64,
        );
        expo::write_type(&mut out, "serve_registry_hits_total", "counter");
        expo::write_sample(
            &mut out,
            "serve_registry_hits_total",
            &[],
            self.registry.hits as f64,
        );
        expo::write_type(&mut out, "serve_registry_misses_total", "counter");
        expo::write_sample(
            &mut out,
            "serve_registry_misses_total",
            &[],
            self.registry.misses as f64,
        );

        expo::write_type(&mut out, "serve_tenant_requests_total", "counter");
        for (tenant, t) in &self.tenants {
            for (outcome, v) in [
                ("submitted", t.submitted),
                ("completed", t.completed),
                ("failed", t.failed),
                ("cancelled", t.cancelled),
                ("deadline_expired", t.deadline_expired),
                ("budget_rejected", t.budget_rejected),
                ("quarantined", t.quarantined),
            ] {
                expo::write_sample(
                    &mut out,
                    "serve_tenant_requests_total",
                    &[("tenant", tenant), ("outcome", outcome)],
                    v as f64,
                );
            }
        }
        expo::write_type(&mut out, "serve_tenant_cost_units_total", "counter");
        for (tenant, t) in &self.tenants {
            expo::write_sample(
                &mut out,
                "serve_tenant_cost_units_total",
                &[("tenant", tenant)],
                t.cost_units as f64,
            );
        }
        expo::write_type(&mut out, "serve_queue_wait_seconds", "histogram");
        for (tenant, t) in &self.tenants {
            expo::write_histogram(
                &mut out,
                "serve_queue_wait_seconds",
                &[("tenant", tenant)],
                &t.queue_wait,
            );
        }
        expo::write_type(&mut out, "serve_e2e_seconds", "histogram");
        for (tenant, t) in &self.tenants {
            expo::write_histogram(&mut out, "serve_e2e_seconds", &[("tenant", tenant)], &t.e2e);
        }
        expo::write_type(&mut out, "serve_compile_seconds", "histogram");
        for (tenant, t) in &self.tenants {
            expo::write_histogram(
                &mut out,
                "serve_compile_seconds",
                &[("tenant", tenant)],
                &t.compile,
            );
        }
        expo::write_type(&mut out, "serve_cost_units", "histogram");
        for (tenant, t) in &self.tenants {
            expo::write_histogram_scaled(
                &mut out,
                "serve_cost_units",
                &[("tenant", tenant)],
                &t.cost,
                1.0,
            );
        }
        expo::write_type(&mut out, "serve_kernel_queue_wait_seconds", "histogram");
        for (kernel, k) in &self.kernels {
            expo::write_histogram(
                &mut out,
                "serve_kernel_queue_wait_seconds",
                &[("kernel", kernel)],
                &k.queue_wait,
            );
        }
        out
    }

    /// Render the snapshot as a JSON document: engine counters plus
    /// per-tenant counters and histogram summaries (count, sum,
    /// p50/p95/p99/max in seconds). Parses back with
    /// [`insum_telemetry::json::parse`]; deterministic byte output.
    pub fn render_json(&self) -> String {
        fn hist(h: &Histogram) -> Value {
            Value::Obj(vec![
                ("count".into(), Value::Num(h.count() as f64)),
                ("sum_seconds".into(), Value::Num(h.sum_seconds())),
                ("p50".into(), Value::Num(h.quantile_seconds(0.50))),
                ("p95".into(), Value::Num(h.quantile_seconds(0.95))),
                ("p99".into(), Value::Num(h.quantile_seconds(0.99))),
                ("max".into(), Value::Num(h.max_seconds())),
            ])
        }
        let mut tenants = Vec::new();
        for (name, t) in &self.tenants {
            tenants.push((
                name.clone(),
                Value::Obj(vec![
                    ("submitted".into(), Value::Num(t.submitted as f64)),
                    ("completed".into(), Value::Num(t.completed as f64)),
                    ("failed".into(), Value::Num(t.failed as f64)),
                    ("cancelled".into(), Value::Num(t.cancelled as f64)),
                    (
                        "deadline_expired".into(),
                        Value::Num(t.deadline_expired as f64),
                    ),
                    (
                        "budget_rejected".into(),
                        Value::Num(t.budget_rejected as f64),
                    ),
                    ("quarantined".into(), Value::Num(t.quarantined as f64)),
                    ("retries".into(), Value::Num(t.retries as f64)),
                    ("cost_units".into(), Value::Num(t.cost_units as f64)),
                    ("queue_wait".into(), hist(&t.queue_wait)),
                    ("e2e".into(), hist(&t.e2e)),
                    ("compile".into(), hist(&t.compile)),
                ]),
            ));
        }
        Value::Obj(vec![
            ("submitted".into(), Value::Num(self.submitted as f64)),
            ("completed".into(), Value::Num(self.completed as f64)),
            ("failed".into(), Value::Num(self.failed as f64)),
            ("rejected".into(), Value::Num(self.rejected as f64)),
            ("retries".into(), Value::Num(self.retries as f64)),
            (
                "deadline_expired".into(),
                Value::Num(self.deadline_expired as f64),
            ),
            ("cancelled".into(), Value::Num(self.cancelled as f64)),
            (
                "budget_rejected".into(),
                Value::Num(self.budget_rejected as f64),
            ),
            ("quarantined".into(), Value::Num(self.quarantined as f64)),
            ("queue_depth".into(), Value::Num(self.queue_depth as f64)),
            ("batches".into(), Value::Num(self.batches as f64)),
            (
                "registry_hits".into(),
                Value::Num(self.registry.hits as f64),
            ),
            (
                "registry_misses".into(),
                Value::Num(self.registry.misses as f64),
            ),
            ("queue_wait".into(), hist(&self.queue_wait())),
            ("e2e".into(), hist(&self.e2e())),
            ("compile".into(), hist(&self.compile())),
            ("tenants".into(), Value::Obj(tenants)),
        ])
        .render()
    }
}

/// One-screen human-readable summary (used by `servebench` and the
/// serving example).
impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} submitted | {} completed | {} failed | {} cancelled | \
             {} expired | {} budget-rejected | {} quarantined | {} retries",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.deadline_expired,
            self.budget_rejected,
            self.quarantined,
            self.retries
        )?;
        writeln!(
            f,
            "queue: depth {} (max {}) | batches {} (largest {}) | registry {}h/{}m | \
             cache {}h/{}m",
            self.queue_depth,
            self.queue_depth_max,
            self.batches,
            self.largest_batch,
            self.registry.hits,
            self.registry.misses,
            self.program_cache.hits,
            self.program_cache.misses
        )?;
        let e2e = self.e2e();
        let wait = self.queue_wait();
        writeln!(
            f,
            "latency: e2e p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms max {:.3}ms | \
             wait p99 {:.3}ms",
            e2e.quantile_seconds(0.50) * 1e3,
            e2e.quantile_seconds(0.95) * 1e3,
            e2e.quantile_seconds(0.99) * 1e3,
            e2e.max_seconds() * 1e3,
            wait.quantile_seconds(0.99) * 1e3,
        )?;
        for (tenant, t) in &self.tenants {
            writeln!(
                f,
                "  tenant {tenant}: {}ok/{}err | wait p99 {:.3}ms max {:.3}ms | \
                 {} cost units",
                t.completed,
                t.failed + t.cancelled + t.deadline_expired + t.budget_rejected + t.quarantined,
                t.queue_wait.quantile_seconds(0.99) * 1e3,
                t.wait_seconds_max() * 1e3,
                t.cost_units
            )?;
        }
        Ok(())
    }
}

/// Mutable interior of the snapshot, owned by the engine.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected: u64,
    pub retries: u64,
    pub deadline_expired: u64,
    pub cancelled: u64,
    pub budget_rejected: u64,
    pub quarantined: u64,
    pub queue_depth_max: usize,
    pub batches: u64,
    pub batched_requests: u64,
    pub largest_batch: usize,
    pub snapshot_writes: u64,
    pub telemetry_dumps: u64,
    pub tenants: BTreeMap<String, TenantMetrics>,
    pub kernels: BTreeMap<String, KernelMetrics>,
}

impl MetricsInner {
    pub(crate) fn tenant(&mut self, tenant: &str) -> &mut TenantMetrics {
        if !self.tenants.contains_key(tenant) {
            self.tenants
                .insert(tenant.to_string(), TenantMetrics::default());
        }
        self.tenants.get_mut(tenant).expect("just inserted")
    }

    pub(crate) fn kernel(&mut self, key: &str) -> &mut KernelMetrics {
        if !self.kernels.contains_key(key) {
            self.kernels
                .insert(key.to_string(), KernelMetrics::default());
        }
        self.kernels.get_mut(key).expect("just inserted")
    }
}
