//! Engine observability: per-tenant and per-kernel counters.

use insum_inductor::ProgramCacheStats;
use std::collections::BTreeMap;

/// Counters for one tenant (session namespace).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantMetrics {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Submissions rejected at admission (saturated or closed).
    pub rejected: u64,
    /// Transient-failure re-attempts scheduled (a request retried twice
    /// counts twice).
    pub retries: u64,
    /// Requests expired by the scheduler past their deadline.
    pub deadline_expired: u64,
    /// Requests cancelled through [`crate::ResponseHandle::cancel`].
    pub cancelled: u64,
    /// Requests rejected because the tenant's cost budget was exhausted.
    pub budget_rejected: u64,
    /// Requests rejected while the tenant's circuit breaker was open.
    pub quarantined: u64,
    /// Times this tenant's circuit breaker transitioned to open.
    pub breaker_open_transitions: u64,
    /// Deterministic simulated cost units charged to this tenant (see
    /// [`insum::Profile::total_cost_units`]).
    pub cost_units: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Total queue wait (admission to execution start), seconds.
    pub wait_seconds_total: f64,
    /// Worst single-request queue wait, seconds.
    pub wait_seconds_max: f64,
    /// Artifact-registry hits attributed to this tenant's requests.
    pub registry_hits: u64,
    /// Artifact-registry misses (compilations) this tenant triggered.
    pub registry_misses: u64,
    /// Simulated grid instances executed for this tenant.
    pub instances_simulated: u64,
}

/// Counters for one kernel identity (fingerprint + grid).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelMetrics {
    /// Requests served by this kernel.
    pub requests: u64,
    /// Batched launches issued.
    pub batches: u64,
    /// Largest batch executed.
    pub largest_batch: usize,
    /// Simulated grid instances executed.
    pub instances_simulated: u64,
    /// Total simulated device time, seconds.
    pub simulated_seconds_total: f64,
    /// Total queue wait of the requests served, seconds.
    pub wait_seconds_total: f64,
}

/// Artifact-registry effectiveness (compiled [`insum::Compiled`]
/// handles shared across tenants).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups that reused (or waited on) an existing artifact.
    pub hits: u64,
    /// Lookups that compiled a new artifact.
    pub misses: u64,
    /// The subset of `misses` whose compile lowered zero new simulator
    /// programs because every program was already resident in the
    /// process-wide [`insum_inductor::ProgramCache`] — e.g. seeded from
    /// a snapshot. Distinguishes miss-then-compile from
    /// miss-then-snapshot-hit, so a warm restart can assert exactly
    /// `misses == warm_misses`.
    pub warm_misses: u64,
    /// Artifacts dropped to respect the capacity bound (LRU order).
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
}

/// A point-in-time view of the engine's counters.
///
/// Every admitted request ends in exactly one terminal counter, so at
/// quiescence (empty queue, no in-flight work) the books reconcile:
/// `submitted == completed + failed + cancelled + deadline_expired +
/// budget_rejected + quarantined + queue_depth`. (`rejected` counts
/// submissions that were never admitted and `retries` counts extra
/// attempts of admitted requests; neither appears in the identity.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted across all tenants.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Transient-failure re-attempts scheduled across all tenants.
    pub retries: u64,
    /// Requests expired past their deadline.
    pub deadline_expired: u64,
    /// Requests cancelled by their clients.
    pub cancelled: u64,
    /// Requests rejected on exhausted cost budgets.
    pub budget_rejected: u64,
    /// Requests rejected by open circuit breakers.
    pub quarantined: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// High-water mark of the admission queue.
    pub queue_depth_max: usize,
    /// Batched launches issued.
    pub batches: u64,
    /// Requests executed through batched launches.
    pub batched_requests: u64,
    /// Largest batch executed.
    pub largest_batch: usize,
    /// Artifact-registry counters.
    pub registry: RegistryStats,
    /// Process-wide program-cache counters (lowered simulator programs).
    pub program_cache: ProgramCacheStats,
    /// Snapshot files durably written (temp + fsync + rename) by this
    /// engine, on cadence or at drain/shutdown.
    pub snapshot_writes: u64,
    /// Program-cache hits whose entry was seeded from a snapshot rather
    /// than compiled in this process (mirror of
    /// [`ProgramCacheStats::warm_hits`], surfaced for servebench's
    /// warm-restart assertion).
    pub warm_start_hits: u64,
    /// Snapshot records rejected at load: CRC failures, truncations,
    /// stale fingerprints, version skew — each degraded to recompile
    /// (mirror of [`ProgramCacheStats::snapshot_rejected`]).
    pub snapshot_rejected: u64,
    /// Per-tenant breakdown.
    pub tenants: BTreeMap<String, TenantMetrics>,
    /// Per-kernel breakdown, keyed `"<fingerprint>@<grid>"` (or
    /// `"unfused:<statement>"` for unbatchable pipelines).
    pub kernels: BTreeMap<String, KernelMetrics>,
}

/// Mutable interior of the snapshot, owned by the engine.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected: u64,
    pub retries: u64,
    pub deadline_expired: u64,
    pub cancelled: u64,
    pub budget_rejected: u64,
    pub quarantined: u64,
    pub queue_depth_max: usize,
    pub batches: u64,
    pub batched_requests: u64,
    pub largest_batch: usize,
    pub snapshot_writes: u64,
    pub tenants: BTreeMap<String, TenantMetrics>,
    pub kernels: BTreeMap<String, KernelMetrics>,
}

impl MetricsInner {
    pub(crate) fn tenant(&mut self, tenant: &str) -> &mut TenantMetrics {
        if !self.tenants.contains_key(tenant) {
            self.tenants
                .insert(tenant.to_string(), TenantMetrics::default());
        }
        self.tenants.get_mut(tenant).expect("just inserted")
    }

    pub(crate) fn kernel(&mut self, key: &str) -> &mut KernelMetrics {
        if !self.kernels.contains_key(key) {
            self.kernels
                .insert(key.to_string(), KernelMetrics::default());
        }
        self.kernels.get_mut(key).expect("just inserted")
    }
}
