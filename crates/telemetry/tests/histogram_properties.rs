//! Property tests for the log-bucketed histogram: merge algebra,
//! quantile monotonicity, and order-independence (the bit-identity
//! property the serve engine's shuffled-arrival tests build on).

use insum_telemetry::histogram::{bucket_index, bucket_upper_bound, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..u64::MAX, 0..200)
}

fn build(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn record_order_is_irrelevant(vals in values(), seed in 0u64..u64::MAX) {
        // Any permutation of the same multiset yields a bit-identical
        // histogram (record is a commutative fold into fixed buckets).
        let mut shuffled = vals.clone();
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert!(build(&vals) == build(&shuffled));
    }

    #[test]
    fn merge_is_commutative(a in values(), b in values()) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert!(ab == ba);
    }

    #[test]
    fn merge_is_associative(a in values(), b in values(), c in values()) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert!(left == right);
    }

    #[test]
    fn merge_matches_concatenated_record(a in values(), b in values()) {
        let mut merged = build(&a);
        merged.merge(&build(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert!(merged == build(&concat));
    }

    #[test]
    fn quantile_is_monotone_in_q(vals in values()) {
        let h = build(&vals);
        let mut last = 0u64;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0);
            prop_assert!(v >= last, "q={} gave {} < {}", i as f64 / 20.0, v, last);
            last = v;
        }
    }

    #[test]
    fn quantile_bounded_by_extrema(vals in values(), q in 0.0f64..1.0) {
        prop_assume!(!vals.is_empty());
        let h = build(&vals);
        let v = h.quantile(q);
        prop_assert!(v >= h.min());
        prop_assert!(v <= h.max());
    }

    #[test]
    fn record_then_quantile_monotone(vals in values(), extra in 0u64..u64::MAX) {
        // Adding a value >= the current max can only raise quantiles at
        // or above the old value's rank; in particular p100 (max) never
        // decreases when recording.
        let mut h = build(&vals);
        let before_max = h.quantile(1.0);
        h.record(extra);
        prop_assert!(h.quantile(1.0) >= before_max);
        prop_assert!(h.quantile(1.0) >= extra.min(before_max));
    }

    #[test]
    fn bucket_upper_bound_error_within_12_5_percent(v in 0u64..u64::MAX) {
        let ub = bucket_upper_bound(bucket_index(v));
        prop_assert!(ub >= v);
        // Values below 8 are exact; above that, ≤ v/8 overshoot.
        if v < 8 {
            prop_assert_eq!(ub, v);
        } else {
            prop_assert!((ub - v) as u128 <= v as u128 / 8);
        }
    }

    #[test]
    fn exact_aggregates(vals in proptest::collection::vec(0u64..1 << 40, 0..100)) {
        let h = build(&vals);
        prop_assert_eq!(h.count(), vals.len() as u64);
        prop_assert_eq!(h.sum(), vals.iter().sum::<u64>());
        prop_assert_eq!(h.max(), vals.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(h.min(), vals.iter().copied().min().unwrap_or(0));
    }
}

#[test]
fn all_bucket_bounds_roundtrip() {
    for i in 0..NUM_BUCKETS {
        assert_eq!(bucket_index(bucket_upper_bound(i)), i);
    }
}
