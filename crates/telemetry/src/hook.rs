//! Zero-cost-when-disabled profiling hook.
//!
//! The simulator (`insum_gpu`) and compiler (`insum_inductor`) cannot see
//! the serve engine's per-request traces — they are leaf crates. Instead
//! they wrap their hot entry points in [`timed`], which is a single
//! relaxed atomic load when no collector is installed (the "disabled"
//! fast path asserted by the CI overhead gate).
//!
//! The serve scheduler installs a thread-local [`collect`] collector for
//! the duration of its run loop, passing the engine clock as the time
//! source — so under a virtual `TestClock` all hook durations are 0 and
//! traces stay deterministic. Because artifact compilation, autotuning,
//! and batch launches all happen on the scheduler thread, the collector
//! sees exactly the work done on behalf of the requests being processed;
//! the scheduler drains intervals after each step and folds them into
//! the active traces.
//!
//! Nesting rules keep the aggregates non-overlapping: a nested interval
//! of the same phase is suppressed (e.g. `launch_batch_with` delegating
//! to `launch_with`), and `Compile`/`Launch` intervals are suppressed
//! while an `Autotune` interval is open (probe compiles/launches are
//! part of the sweep).

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use crate::trace::Phase;

/// Phase of work a hook interval covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookPhase {
    /// Kernel compilation (`Program::compile`, chain lowering).
    Compile,
    /// Autotune sweep (includes its probe compiles and launches).
    Autotune,
    /// Simulator launch.
    Launch,
}

impl HookPhase {
    fn idx(self) -> usize {
        match self {
            HookPhase::Compile => 0,
            HookPhase::Autotune => 1,
            HookPhase::Launch => 2,
        }
    }

    /// The corresponding trace phase.
    pub fn trace_phase(self) -> Phase {
        match self {
            HookPhase::Compile => Phase::Compile,
            HookPhase::Autotune => Phase::Autotune,
            HookPhase::Launch => Phase::Launch,
        }
    }
}

/// Number of threads with an installed collector. The fast gate: when
/// zero, [`timed`] returns immediately after one relaxed load.
static ACTIVE_COLLECTORS: AtomicUsize = AtomicUsize::new(0);

struct Collector {
    now: Box<dyn Fn() -> Duration>,
    intervals: Vec<(HookPhase, u64)>,
    depth: [u32; 3],
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Install a collector on the current thread for the lifetime of the
/// returned guard. `now` is the time source (pass the engine clock so
/// virtual clocks yield deterministic zero durations).
///
/// Installing while a collector is already present replaces it (the old
/// intervals are dropped); collectors do not nest.
pub fn collect(now: Box<dyn Fn() -> Duration>) -> CollectorGuard {
    COLLECTOR.with(|c| {
        let prev = c.borrow_mut().replace(Collector {
            now,
            intervals: Vec::new(),
            depth: [0; 3],
        });
        if prev.is_none() {
            ACTIVE_COLLECTORS.fetch_add(1, Ordering::Relaxed);
        }
    });
    CollectorGuard { _private: () }
}

/// Uninstalls the thread's collector on drop.
pub struct CollectorGuard {
    _private: (),
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        // try_with: thread teardown may have destroyed the TLS slot.
        let _ = COLLECTOR.try_with(|c| {
            if c.borrow_mut().take().is_some() {
                ACTIVE_COLLECTORS.fetch_sub(1, Ordering::Relaxed);
            }
        });
    }
}

/// True when some thread has a collector installed. One relaxed load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_COLLECTORS.load(Ordering::Relaxed) != 0
}

/// Time a region of work under `phase`. Returns a guard that records the
/// interval into the current thread's collector when dropped; a no-op
/// (after one relaxed atomic load) when no collector is installed.
#[inline]
pub fn timed(phase: HookPhase) -> TimedGuard {
    if !enabled() {
        return TimedGuard { active: None };
    }
    timed_slow(phase)
}

#[cold]
fn timed_slow(phase: HookPhase) -> TimedGuard {
    let start = COLLECTOR
        .try_with(|c| {
            let mut slot = c.borrow_mut();
            let col = slot.as_mut()?;
            let suppressed = col.depth[phase.idx()] > 0
                || (phase != HookPhase::Autotune && col.depth[HookPhase::Autotune.idx()] > 0);
            if suppressed {
                return None;
            }
            col.depth[phase.idx()] += 1;
            Some((col.now)())
        })
        .ok()
        .flatten();
    TimedGuard {
        active: start.map(|start| (phase, start)),
    }
}

/// Records its interval on drop. Obtained from [`timed`].
pub struct TimedGuard {
    active: Option<(HookPhase, Duration)>,
}

impl Drop for TimedGuard {
    fn drop(&mut self) {
        let Some((phase, start)) = self.active.take() else {
            return;
        };
        let _ = COLLECTOR.try_with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(col) = slot.as_mut() {
                col.depth[phase.idx()] -= 1;
                let nanos = (col.now)().saturating_sub(start).as_nanos();
                let nanos = if nanos > u64::MAX as u128 {
                    u64::MAX
                } else {
                    nanos as u64
                };
                col.intervals.push((phase, nanos));
            }
        });
    }
}

/// Take the intervals accumulated on the current thread since the last
/// drain. Empty when no collector is installed.
pub fn drain() -> Vec<(HookPhase, u64)> {
    COLLECTOR
        .try_with(|c| {
            c.borrow_mut()
                .as_mut()
                .map(|col| std::mem::take(&mut col.intervals))
                .unwrap_or_default()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // `enabled()` is process-global; serialize tests that assert on it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_is_inert() {
        let _l = LOCK.lock().unwrap();
        assert!(!enabled());
        {
            let _g = timed(HookPhase::Launch);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn collects_and_drains() {
        let _l = LOCK.lock().unwrap();
        let guard = collect(Box::new(|| Duration::ZERO));
        {
            let _g = timed(HookPhase::Compile);
        }
        {
            let _g = timed(HookPhase::Launch);
        }
        let got = drain();
        assert_eq!(got, vec![(HookPhase::Compile, 0), (HookPhase::Launch, 0)]);
        assert!(drain().is_empty());
        drop(guard);
        assert!(!enabled());
    }

    #[test]
    fn nested_same_phase_suppressed() {
        let _l = LOCK.lock().unwrap();
        let _guard = collect(Box::new(|| Duration::ZERO));
        {
            let _outer = timed(HookPhase::Launch);
            let _inner = timed(HookPhase::Launch);
        }
        assert_eq!(drain().len(), 1);
    }

    #[test]
    fn autotune_suppresses_probe_work() {
        let _l = LOCK.lock().unwrap();
        let _guard = collect(Box::new(|| Duration::ZERO));
        {
            let _sweep = timed(HookPhase::Autotune);
            {
                let _c = timed(HookPhase::Compile);
            }
            {
                let _l = timed(HookPhase::Launch);
            }
        }
        let got = drain();
        assert_eq!(got, vec![(HookPhase::Autotune, 0)]);
    }

    #[test]
    fn virtual_clock_durations_are_zero() {
        let _l = LOCK.lock().unwrap();
        let _guard = collect(Box::new(|| Duration::from_secs(42)));
        {
            let _g = timed(HookPhase::Launch);
        }
        assert_eq!(drain(), vec![(HookPhase::Launch, 0)]);
    }
}
