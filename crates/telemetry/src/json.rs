//! Minimal self-contained JSON reader/writer.
//!
//! The build environment has no registry access, so rather than pulling
//! in `serde_json` this module implements the small subset the metrics
//! exposition needs: a [`Value`] tree, a strict recursive-descent
//! parser, and an escaping writer. Object key order is preserved
//! (insertion order) so rendered snapshots are deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Strict: trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            msg: "trailing characters",
        });
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8, msg: &'static str) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, msg })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError {
            at: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            msg: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':', "expected ':'")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            msg: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &'static str, v: Value) -> Result<Value, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(ParseError {
            at: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or(ParseError {
            at: start,
            msg: "invalid number",
        })
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => {
                return Err(ParseError {
                    at: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                at: *pos,
                                msg: "invalid \\u escape",
                            })?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            msg: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let s = &b[*pos..];
                let ch_len = match s[0] {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk =
                    std::str::from_utf8(&s[..ch_len.min(s.len())]).map_err(|_| ParseError {
                        at: *pos,
                        msg: "invalid utf-8",
                    })?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("fig7 \"spmm\"\n".into())),
            ("count".into(), Value::Num(42.0)),
            ("p99".into(), Value::Num(0.001953125)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "arr".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.5)]),
            ),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("count").unwrap().as_f64(), Some(42.0));
        assert_eq!(back.get("name").unwrap().as_str(), Some("fig7 \"spmm\"\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": {"b": [1, 2, {"c": "d"}]}, "e": -1.5e3}"#).unwrap();
        assert_eq!(v.get("e").unwrap().as_f64(), Some(-1500.0));
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].get("c").unwrap().as_str(), Some("d"));
    }
}
