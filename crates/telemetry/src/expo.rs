//! Prometheus text-exposition helpers.
//!
//! Writers for counters, gauges, and log-bucketed histograms in the
//! Prometheus text format (version 0.0.4), plus a small parser used by
//! the CI smoke to read a dumped snapshot back and reconcile it against
//! in-memory counters.
//!
//! Histograms are exposed in **seconds** (values are recorded as
//! nanoseconds internally). Only non-empty buckets are emitted (plus the
//! mandatory `+Inf` bucket) — the fixed 496-bucket table would otherwise
//! dominate the payload.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;

/// Escape a label value per the Prometheus text format.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    out.push('}');
}

fn write_labels_plus(out: &mut String, labels: &[(&str, &str)], extra_k: &str, extra_v: &str) {
    out.push('{');
    for (k, v) in labels.iter() {
        let _ = write!(out, "{}=\"{}\",", k, escape_label(v));
    }
    let _ = write!(out, "{}=\"{}\"", extra_k, escape_label(extra_v));
    out.push('}');
}

/// Format an `f64` the way Prometheus expects (shortest round-trip).
pub fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Append a `# TYPE` header. Call once per metric family.
pub fn write_type(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Append one counter/gauge sample line.
pub fn write_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    write_labels(out, labels);
    let _ = writeln!(out, " {}", fmt_value(value));
}

/// Append a histogram family in seconds: cumulative `_bucket{le=...}`
/// lines for non-empty buckets, `+Inf`, `_sum`, and `_count`.
pub fn write_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &Histogram) {
    write_histogram_scaled(out, name, labels, h, 1e-9);
}

/// [`write_histogram`] with an explicit scale applied to bucket bounds
/// and the sum (use `1.0` for histograms over raw units such as
/// simulated cost).
pub fn write_histogram_scaled(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    h: &Histogram,
    scale: f64,
) {
    let mut cumulative = 0u64;
    for (upper, count) in h.nonzero_buckets() {
        cumulative += count;
        out.push_str(name);
        out.push_str("_bucket");
        write_labels_plus(out, labels, "le", &format!("{}", upper as f64 * scale));
        let _ = writeln!(out, " {cumulative}");
    }
    out.push_str(name);
    out.push_str("_bucket");
    write_labels_plus(out, labels, "le", "+Inf");
    let _ = writeln!(out, " {}", h.count());
    out.push_str(name);
    out.push_str("_sum");
    write_labels(out, labels);
    let _ = writeln!(out, " {}", fmt_value(h.sum() as f64 * scale));
    out.push_str(name);
    out.push_str("_count");
    write_labels(out, labels);
    let _ = writeln!(out, " {}", h.count());
}

/// Parse a Prometheus text payload into `full_sample_name -> value`,
/// where the key is the sample name with its label block verbatim (e.g.
/// `serve_requests_total{tenant="a"}`). Comment and blank lines are
/// skipped; malformed lines are ignored rather than fatal (the smoke
/// asserts on the keys it expects).
pub fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // The value is everything after the last space outside braces;
        // label values may contain escaped quotes but not raw spaces in
        // our own output, so rsplit on whitespace is sufficient.
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(key.trim().to_string(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_samples() {
        let mut out = String::new();
        write_type(&mut out, "serve_requests_total", "counter");
        write_sample(&mut out, "serve_requests_total", &[("tenant", "a")], 42.0);
        write_sample(&mut out, "serve_queue_depth", &[], 3.0);
        let parsed = parse_prometheus(&out);
        assert_eq!(parsed["serve_requests_total{tenant=\"a\"}"], 42.0);
        assert_eq!(parsed["serve_queue_depth"], 3.0);
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let mut h = Histogram::new();
        h.record(1_000); // 1 us
        h.record(1_000);
        h.record(2_000_000_000); // 2 s
        let mut out = String::new();
        write_histogram(&mut out, "serve_wait_seconds", &[("tenant", "t")], &h);
        let parsed = parse_prometheus(&out);
        assert_eq!(parsed["serve_wait_seconds_count{tenant=\"t\"}"], 3.0);
        assert_eq!(
            parsed["serve_wait_seconds_bucket{tenant=\"t\",le=\"+Inf\"}"],
            3.0
        );
        let sum = parsed["serve_wait_seconds_sum{tenant=\"t\"}"];
        assert!((sum - 2.000002).abs() < 1e-9, "sum={sum}");
        // Bucket lines are cumulative: the last finite bucket holds 3.
        let last_finite = out
            .lines()
            .rfind(|l| l.contains("_bucket") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_finite.ends_with(" 3"), "{last_finite}");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
