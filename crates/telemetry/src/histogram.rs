//! Deterministic log-bucketed latency histograms.
//!
//! The layout is "log-linear" (HDR-lite): values below `2^SUB_BITS` get
//! one bucket each; above that, every power-of-two octave is split into
//! `2^SUB_BITS` equal sub-buckets. With `SUB_BITS = 3` the relative
//! quantization error is bounded by `1 / 2^SUB_BITS = 12.5%`, the table
//! is a fixed 496 `u64` slots (~4 KB), and recording is a handful of
//! integer ops with no allocation — safe on a scheduler hot path.
//!
//! Determinism: bucket indices are pure functions of the recorded value,
//! `merge` is element-wise saturating addition (exactly associative and
//! commutative), and quantile extraction walks fixed bucket boundaries —
//! so two histograms fed the same multiset of values in any order are
//! bit-identical, which the serve engine's `TestClock` tests rely on.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets (12.5% max relative error).
pub const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS; // 8 sub-buckets per octave
/// Number of fixed buckets: `SUB` unit buckets + `SUB` sub-buckets for
/// each of the `64 - SUB_BITS` remaining octaves of the u64 range.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB; // 496

/// Fixed-size, mergeable, log-bucketed histogram over `u64` values.
///
/// Alongside the bucket counts it tracks the exact `count`, saturating
/// `sum`, and exact `min`/`max`, so totals and extrema are not subject
/// to bucket quantization (only interior quantiles are, at ≤12.5%).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index for a value. Pure and total over `u64`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= SUB_BITS
        let sub = ((v >> (e - SUB_BITS)) as usize) - SUB;
        SUB + (e - SUB_BITS) as usize * SUB + sub
    }
}

/// Inclusive upper bound of bucket `i` (the largest value that maps to it).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUB {
        i as u64
    } else {
        let g = ((i - SUB) / SUB) as u32; // octave index, 0-based
        let sub = ((i - SUB) % SUB) as u64;
        let lower = (SUB as u64 + sub) << g;
        lower + ((1u64 << g) - 1)
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value. Allocation-free; a few integer ops.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Record a non-negative duration in seconds at nanosecond resolution.
    #[inline]
    pub fn record_seconds(&mut self, secs: f64) {
        let ns = if secs <= 0.0 {
            0u64
        } else {
            let ns = secs * 1e9;
            if ns >= u64::MAX as f64 {
                u64::MAX
            } else {
                ns as u64
            }
        };
        self.record(ns);
    }

    /// Record a [`std::time::Duration`] at nanosecond resolution.
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        let ns = d.as_nanos();
        self.record(if ns > u64::MAX as u128 {
            u64::MAX
        } else {
            ns as u64
        });
    }

    /// Merge another histogram into this one (element-wise saturating
    /// add). Exactly associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Number of recorded values (exact).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values (exact up to saturation).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty (exact).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile `q ∈ [0, 1]`: the bucket upper bound at the rank-`q`
    /// recorded value (≤12.5% above the true value), clamped to the
    /// exact max. `q >= 1` returns the exact max; empty returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let q = q.max(0.0);
        // Rank of the target value, 1-based: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// [`Histogram::quantile`] converted to seconds (values recorded as
    /// nanoseconds).
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile(q) as f64 * 1e-9
    }

    /// Exact sum in seconds (values recorded as nanoseconds).
    pub fn sum_seconds(&self) -> f64 {
        self.sum as f64 * 1e-9
    }

    /// Exact max in seconds (values recorded as nanoseconds).
    pub fn max_seconds(&self) -> f64 {
        self.max as f64 * 1e-9
    }

    /// Iterate non-empty buckets as `(inclusive_upper_bound, count)`, in
    /// increasing bound order. Used for Prometheus exposition.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
    }

    /// True when no values have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_agree() {
        // Every bucket's upper bound maps back into that bucket, and
        // upper+1 maps into a later bucket.
        for i in 0..NUM_BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            if ub < u64::MAX {
                assert!(bucket_index(ub + 1) > i, "successor of bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_bound() {
        // The bucket upper bound overestimates the value by at most
        // 1/2^SUB_BITS of the value (for values >= SUB).
        for &v in &[8u64, 9, 100, 1000, 12345, 1 << 20, (1 << 40) + 7] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v);
            assert!(
                (ub - v) as f64 <= v as f64 / SUB as f64,
                "v={v} ub={ub} error too large"
            );
        }
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..8u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 28);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        // Values < 8 are exact: p50 of 0..=7 is 3.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut h = Histogram::new();
        for v in [1u64, 5, 9, 120, 4096, 70000, 70001, 1 << 30] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
        assert_eq!(h.quantile(1.0), 1 << 30);
    }

    #[test]
    fn merge_matches_bulk_record() {
        let vals: Vec<u64> = (0..500).map(|i| (i * 2654435761u64) >> 16).collect();
        let mut whole = Histogram::new();
        for &v in &vals {
            whole.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert!(a == whole);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }
}
