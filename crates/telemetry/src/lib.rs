//! `insum_telemetry` — tracing, latency histograms, and exposition for
//! the Insum serving stack.
//!
//! This crate is dependency-free and sits below `insum_gpu` /
//! `insum_inductor` / `insum_serve` so every layer can share one
//! vocabulary:
//!
//! - [`histogram::Histogram`] — fixed-size log-bucketed (base-2,
//!   8 sub-buckets per octave) latency/cost histograms: allocation-free
//!   recording, exact count/sum/min/max, ≤12.5% quantile error,
//!   order-independent bit-identical merging.
//! - [`trace::Trace`] — per-request spans: timestamped phase
//!   transitions driven by the serve engine's injectable clock
//!   (deterministic under a virtual test clock) plus aggregated
//!   compile/autotune/launch costs from the profiling hook.
//! - [`recorder::FlightRecorder`] — bounded ring buffers of recent and
//!   failed spans with ASCII dump-on-failure.
//! - [`hook`] — the zero-cost-when-disabled profiling hook that leaf
//!   crates use to report phase timings without depending on the serve
//!   engine.
//! - [`expo`] / [`json`] — Prometheus text and JSON
//!   exposition/parse-back, with no external dependencies.

#![warn(missing_docs)]

pub mod expo;
pub mod histogram;
pub mod hook;
pub mod json;
pub mod recorder;
pub mod trace;

pub use histogram::Histogram;
pub use hook::HookPhase;
pub use recorder::{FlightRecorder, RecordedTrace, TraceOutcome};
pub use trace::{Phase, PhaseCost, Trace, TraceEvent};
