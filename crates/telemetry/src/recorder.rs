//! Flight recorder: a bounded ring buffer of recently completed request
//! spans, with a separate ring for failures (dump-on-failure).
//!
//! The recorder is lock-cheap: one short critical section per terminal
//! request (a `VecDeque` push + possible pop), no allocation beyond the
//! moved-in trace.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::trace::Trace;

/// How a recorded request span terminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Response delivered.
    Completed,
    /// Terminal failure; payload is the error text.
    Failed(String),
    /// Cancelled by the caller.
    Cancelled,
    /// Deadline expired before execution.
    Expired,
    /// Rejected for an exhausted cost budget.
    BudgetRejected,
    /// Rejected by an open circuit breaker.
    Quarantined,
}

impl TraceOutcome {
    /// True for any non-`Completed` terminal state.
    pub fn is_failure(&self) -> bool {
        !matches!(self, TraceOutcome::Completed)
    }

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::Failed(_) => "failed",
            TraceOutcome::Cancelled => "cancelled",
            TraceOutcome::Expired => "expired",
            TraceOutcome::BudgetRejected => "budget_rejected",
            TraceOutcome::Quarantined => "quarantined",
        }
    }
}

/// A terminal request span plus how it ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordedTrace {
    /// The full span.
    pub trace: Trace,
    /// Terminal state.
    pub outcome: TraceOutcome,
}

struct Rings {
    recent: VecDeque<RecordedTrace>,
    failures: VecDeque<RecordedTrace>,
}

/// Ring buffer of the last N terminal request spans.
///
/// Failures (anything other than a delivered response) are additionally
/// kept in their own ring of the same capacity, so a burst of successes
/// cannot evict the trace of the request you are debugging.
pub struct FlightRecorder {
    capacity: usize,
    rings: Mutex<Rings>,
}

impl FlightRecorder {
    /// Recorder keeping up to `capacity` recent spans (and up to
    /// `capacity` failure spans). A capacity of 0 disables recording.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            rings: Mutex::new(Rings {
                recent: VecDeque::with_capacity(capacity.min(64)),
                failures: VecDeque::with_capacity(capacity.min(64)),
            }),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record a terminal span. O(1); drops the oldest entry when full.
    pub fn record(&self, trace: Trace, outcome: TraceOutcome) {
        if self.capacity == 0 {
            return;
        }
        let entry = RecordedTrace { trace, outcome };
        let mut rings = match self.rings.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if entry.outcome.is_failure() {
            if rings.failures.len() == self.capacity {
                rings.failures.pop_front();
            }
            rings.failures.push_back(entry.clone());
        }
        if rings.recent.len() == self.capacity {
            rings.recent.pop_front();
        }
        rings.recent.push_back(entry);
    }

    /// Snapshot of the recent-span ring, oldest first.
    pub fn recent(&self) -> Vec<RecordedTrace> {
        let rings = match self.rings.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        rings.recent.iter().cloned().collect()
    }

    /// Snapshot of the failure ring, oldest first.
    pub fn failures(&self) -> Vec<RecordedTrace> {
        let rings = match self.rings.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        rings.failures.iter().cloned().collect()
    }

    /// Render every failure span as an ASCII report (dump-on-failure).
    pub fn dump_failures(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in self.failures() {
            let _ = writeln!(out, "--- outcome={} ---", r.outcome.name());
            out.push_str(&r.trace.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Phase;
    use std::time::Duration;

    fn mk(id: u64) -> Trace {
        let mut t = Trace::new(id, "t");
        t.push(Phase::Admitted, Duration::from_millis(id), 0);
        t
    }

    #[test]
    fn ring_evicts_oldest() {
        let rec = FlightRecorder::new(2);
        for id in 0..5 {
            rec.record(mk(id), TraceOutcome::Completed);
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].trace.id, 3);
        assert_eq!(recent[1].trace.id, 4);
    }

    #[test]
    fn failures_survive_success_floods() {
        let rec = FlightRecorder::new(2);
        rec.record(mk(0), TraceOutcome::Failed("boom".into()));
        for id in 1..10 {
            rec.record(mk(id), TraceOutcome::Completed);
        }
        assert!(rec.recent().iter().all(|r| r.trace.id >= 8));
        let fails = rec.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].trace.id, 0);
        assert!(rec.dump_failures().contains("outcome=failed"));
    }

    #[test]
    fn zero_capacity_disables() {
        let rec = FlightRecorder::new(0);
        rec.record(mk(1), TraceOutcome::Expired);
        assert!(rec.recent().is_empty());
        assert!(rec.failures().is_empty());
    }
}
