//! Request spans: per-request phase-transition traces.
//!
//! A [`Trace`] records the lifecycle of one serve request as a sequence
//! of timestamped [`TraceEvent`]s. Timestamps come from the engine's
//! injectable clock (`Duration` since the clock's epoch), so under a
//! virtual test clock the whole trace is deterministic and can be
//! asserted bit-for-bit.
//!
//! Fine-grained profiling-hook timings (compile / autotune / launch, see
//! [`crate::hook`]) are aggregated into per-phase [`PhaseCost`] totals
//! rather than appended as events: an autotune sweep can perform dozens
//! of probe launches, and flooding the span with one event each would
//! drown the lifecycle signal.

use std::time::Duration;

/// Lifecycle phase of a serve request span.
///
/// The first group are transitions (each appears as a timestamped
/// event); the `Compile` / `Autotune` / `Launch` phases also appear as
/// aggregated [`PhaseCost`] entries fed by the profiling hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Request passed admission and entered the queue.
    Admitted,
    /// Request picked up by the scheduler for processing.
    Scheduled,
    /// Request grouped into a launch batch (`info` = batch size).
    Batched,
    /// Artifact resolution through the registry began (compile or
    /// single-flight wait; `info` = 1 for a registry hit, 0 for a miss).
    RegistryWait,
    /// Kernel compilation work (hook-timed; `info` = nanoseconds).
    Compile,
    /// Autotune sweep (hook-timed; `info` = nanoseconds).
    Autotune,
    /// Simulator launch (hook-timed; `info` = nanoseconds).
    Launch,
    /// Response delivered to the ticket (`info` = attempt number).
    Respond,
    /// Transient failure scheduled for retry (`info` = next attempt).
    Retry,
    /// Request cancelled by the caller.
    Cancelled,
    /// Request deadline expired before execution.
    Expired,
    /// Request rejected because the tenant's cost budget was exhausted.
    BudgetRejected,
    /// Request rejected by an open circuit breaker.
    Quarantined,
    /// Request failed terminally (`info` = attempt number).
    Failed,
}

impl Phase {
    /// Stable lowercase name used in rendered traces and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admitted => "admitted",
            Phase::Scheduled => "scheduled",
            Phase::Batched => "batched",
            Phase::RegistryWait => "registry_wait",
            Phase::Compile => "compile",
            Phase::Autotune => "autotune",
            Phase::Launch => "launch",
            Phase::Respond => "respond",
            Phase::Retry => "retry",
            Phase::Cancelled => "cancelled",
            Phase::Expired => "expired",
            Phase::BudgetRejected => "budget_rejected",
            Phase::Quarantined => "quarantined",
            Phase::Failed => "failed",
        }
    }
}

/// One timestamped phase transition in a request span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which phase was entered.
    pub phase: Phase,
    /// Clock time of the transition (duration since the clock epoch).
    pub at: Duration,
    /// Phase-specific payload (batch size, attempt number, hit flag).
    pub info: u64,
}

/// Aggregated profiling-hook cost for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Number of hook intervals aggregated.
    pub count: u64,
    /// Total wall nanoseconds across those intervals (0 under a virtual
    /// clock — deterministic by construction).
    pub nanos: u64,
}

/// A full request span: ordered phase transitions plus aggregated
/// profiling costs, returned on `Response` and kept in the flight
/// recorder.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    /// Engine-assigned request id.
    pub id: u64,
    /// Tenant that submitted the request.
    pub tenant: String,
    /// Ordered phase transitions.
    pub events: Vec<TraceEvent>,
    /// Hook-timed compile cost (registry miss path).
    pub compile: PhaseCost,
    /// Hook-timed autotune cost.
    pub autotune: PhaseCost,
    /// Hook-timed launch cost.
    pub launch: PhaseCost,
}

impl Trace {
    /// New empty span for request `id` from `tenant`.
    pub fn new(id: u64, tenant: &str) -> Self {
        Trace {
            id,
            tenant: tenant.to_string(),
            events: Vec::new(),
            compile: PhaseCost::default(),
            autotune: PhaseCost::default(),
            launch: PhaseCost::default(),
        }
    }

    /// Append a phase transition.
    pub fn push(&mut self, phase: Phase, at: Duration, info: u64) {
        self.events.push(TraceEvent { phase, at, info });
    }

    /// Fold a profiling-hook interval into the matching aggregate.
    pub fn add_cost(&mut self, phase: Phase, nanos: u64) {
        let slot = match phase {
            Phase::Compile => &mut self.compile,
            Phase::Autotune => &mut self.autotune,
            Phase::Launch => &mut self.launch,
            _ => return,
        };
        slot.count += 1;
        slot.nanos = slot.nanos.saturating_add(nanos);
    }

    /// Timestamp of the first event, if any.
    pub fn started_at(&self) -> Option<Duration> {
        self.events.first().map(|e| e.at)
    }

    /// Timestamp of the last event, if any.
    pub fn ended_at(&self) -> Option<Duration> {
        self.events.last().map(|e| e.at)
    }

    /// Span length (last event minus first event; zero if < 2 events).
    pub fn span(&self) -> Duration {
        match (self.started_at(), self.ended_at()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => Duration::ZERO,
        }
    }

    /// First event with the given phase, if present.
    pub fn event(&self, phase: Phase) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.phase == phase)
    }

    /// True if the span contains the given phase.
    pub fn has_phase(&self, phase: Phase) -> bool {
        self.event(phase).is_some()
    }

    /// Render the span as an indented ASCII timeline, offsets relative
    /// to the first event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace id={} tenant={} span={:?}",
            self.id,
            self.tenant,
            self.span()
        );
        let t0 = self.started_at().unwrap_or(Duration::ZERO);
        for e in &self.events {
            let off = e.at.saturating_sub(t0);
            let _ = writeln!(
                out,
                "  +{:>12} {} (info={})",
                format!("{:?}", off),
                e.phase.name(),
                e.info
            );
        }
        for (name, cost) in [
            ("compile", self.compile),
            ("autotune", self.autotune),
            ("launch", self.launch),
        ] {
            if cost.count > 0 {
                let _ = writeln!(
                    out,
                    "  cost {:<9} count={} total={:?}",
                    name,
                    cost.count,
                    Duration::from_nanos(cost.nanos)
                );
            }
        }
        out
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_ordered_events() {
        let mut t = Trace::new(7, "acme");
        t.push(Phase::Admitted, Duration::from_millis(1), 0);
        t.push(Phase::Scheduled, Duration::from_millis(3), 0);
        t.push(Phase::Respond, Duration::from_millis(9), 1);
        assert_eq!(t.span(), Duration::from_millis(8));
        assert!(t.has_phase(Phase::Scheduled));
        assert!(!t.has_phase(Phase::Failed));
        assert_eq!(t.event(Phase::Respond).unwrap().info, 1);
        let r = t.render();
        assert!(r.contains("admitted"));
        assert!(r.contains("respond"));
    }

    #[test]
    fn costs_aggregate() {
        let mut t = Trace::new(1, "a");
        t.add_cost(Phase::Launch, 100);
        t.add_cost(Phase::Launch, 50);
        t.add_cost(Phase::Compile, 7);
        // Non-cost phases are ignored.
        t.add_cost(Phase::Respond, 1);
        assert_eq!(
            t.launch,
            PhaseCost {
                count: 2,
                nanos: 150
            }
        );
        assert_eq!(t.compile, PhaseCost { count: 1, nanos: 7 });
        assert_eq!(t.autotune, PhaseCost::default());
    }
}
