//! The ELL (ELLPACK) format.

use crate::coo::Coo;
use crate::error::FormatError;
use crate::Result;
use insum_tensor::Tensor;

/// ELLPACK storage: every row padded to the same width (the maximum row
/// occupancy), so no row coordinates are needed and no scatter is required
/// — but padding can explode for skewed distributions (§4).
///
/// Padding entries store column 0 with value 0.0, which is numerically
/// inert under multiply-accumulate.
#[derive(Debug, Clone, PartialEq)]
pub struct Ell {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    /// Row width (max occupancy).
    pub width: usize,
    /// Column indices (`[rows, width]`, I32; 0 for padding).
    pub ak: Tensor,
    /// Values (`[rows, width]`; 0.0 for padding).
    pub av: Tensor,
}

impl Ell {
    /// Convert from COO.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidParameter`] if the COO holds
    /// duplicate coordinates (ELL cannot accumulate them).
    pub fn from_coo(coo: &Coo) -> Result<Ell> {
        let occ = coo.occupancy();
        let width = occ.iter().copied().max().unwrap_or(0);
        let mut ak = vec![0i64; coo.rows * width];
        let mut av = vec![0.0f32; coo.rows * width];
        let mut cursor = vec![0usize; coo.rows];
        let mut last: Option<(usize, usize)> = None;
        for p in 0..coo.nnz() {
            let r = coo.am.at_i64(&[p]) as usize;
            let c = coo.ak.at_i64(&[p]) as usize;
            if last == Some((r, c)) {
                return Err(FormatError::InvalidParameter(format!(
                    "duplicate coordinate ({r}, {c}) cannot be stored in ELL"
                )));
            }
            last = Some((r, c));
            let slot = r * width + cursor[r];
            ak[slot] = c as i64;
            av[slot] = coo.av.at(&[p]);
            cursor[r] += 1;
        }
        Ok(Ell {
            rows: coo.rows,
            cols: coo.cols,
            width,
            ak: Tensor::from_indices(vec![coo.rows, width], ak).expect("length matches"),
            av: Tensor::from_vec(vec![coo.rows, width], av)
                .expect("length matches")
                .cast(coo.av.dtype()),
        })
    }

    /// Extract from a dense matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors from the COO conversion.
    pub fn from_dense(dense: &Tensor) -> Result<Ell> {
        Ell::from_coo(&Coo::from_dense(dense)?)
    }

    /// Stored slots (including padding).
    pub fn slots(&self) -> usize {
        self.rows * self.width
    }

    /// Fraction of slots that are padding.
    pub fn padding_ratio(&self, nnz: usize) -> f64 {
        if self.slots() == 0 {
            return 0.0;
        }
        1.0 - nnz as f64 / self.slots() as f64
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for r in 0..self.rows {
            for w in 0..self.width {
                let v = self.av.at(&[r, w]);
                if v != 0.0 {
                    let c = self.ak.at_i64(&[r, w]) as usize;
                    let cur = out.at(&[r, c]) + v;
                    out.set(&[r, c], cur);
                }
            }
        }
        out.cast(self.av.dtype())
    }

    /// Bytes on the simulated device.
    pub fn device_bytes(&self) -> usize {
        self.ak.device_bytes() + self.av.device_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        let mut t = Tensor::zeros(vec![4, 5]);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 1, 4.0),
            (2, 2, 5.0),
            (3, 2, 6.0),
            (3, 3, 7.0),
        ] {
            t.set(&[r, c], v);
        }
        t
    }

    #[test]
    fn width_is_max_occupancy() {
        let ell = Ell::from_dense(&sample()).unwrap();
        assert_eq!(ell.width, 3);
        assert_eq!(ell.slots(), 12);
        assert!((ell.padding_ratio(7) - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        assert_eq!(Ell::from_dense(&d).unwrap().to_dense(), d);
    }

    #[test]
    fn padding_matches_paper_figure_4() {
        // Fig. 4 ELL: AV = [a b c | d 0 0 | e 0 0 | f g 0].
        let ell = Ell::from_dense(&sample()).unwrap();
        assert_eq!(
            ell.av.data(),
            &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 5.0, 0.0, 0.0, 6.0, 7.0, 0.0]
        );
    }

    #[test]
    fn empty_matrix_has_zero_width() {
        let ell = Ell::from_dense(&Tensor::zeros(vec![3, 3])).unwrap();
        assert_eq!(ell.width, 0);
        assert_eq!(ell.to_dense(), Tensor::zeros(vec![3, 3]));
    }
}
