//! Group-size selection (§4.2).
//!
//! The paper shows that SpMM runtime tracks the number of indirect
//! accesses `F(g) = (g+1) · Σᵢ ⌈occᵢ/g⌉` (scatters to `AM` plus gathers
//! through `AK`), not the format's memory footprint. Relaxing the ceiling
//! gives the closed-form minimizer `g★ = √(S/n)` where `S = Σ occᵢ` and
//! `n` is the row count; in practice `g★` is rounded to the nearest
//! power of two because the Triton backend prefers power-of-two blocks.

/// The indirect-access cost `F(g) = (g+1) · Σᵢ ⌈occᵢ/g⌉`.
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn indirect_access_cost(occ: &[usize], g: usize) -> u64 {
    assert!(g > 0, "group size must be positive");
    let groups: u64 = occ.iter().map(|&o| o.div_ceil(g) as u64).sum();
    (g as u64 + 1) * groups
}

/// The relaxed continuous estimate `g★ = √(S/n)` (clamped to ≥ 1).
pub fn continuous_group_size(occ: &[usize]) -> f64 {
    let s: usize = occ.iter().sum();
    let n = occ.len();
    if n == 0 || s == 0 {
        return 1.0;
    }
    (s as f64 / n as f64).sqrt().max(1.0)
}

/// Round a positive value to the nearest power of two (ties prefer the
/// larger power, matching "round up when equal ratio").
pub fn nearest_power_of_two(x: f64) -> usize {
    if x <= 1.0 {
        return 1;
    }
    let lo = 1usize << (x.log2().floor() as u32);
    let hi = lo * 2;
    if x / lo as f64 <= hi as f64 / x {
        lo
    } else {
        hi
    }
}

/// The paper's heuristic: `g★ = √(S/n)` rounded to the nearest power of
/// two.
pub fn heuristic_group_size(occ: &[usize]) -> usize {
    nearest_power_of_two(continuous_group_size(occ))
}

/// Brute-force minimizer of `F(g)` over `1..=max occupancy` — the
/// `O(n · max occ)` search the heuristic replaces; used for validation
/// and the group-size ablation bench.
pub fn brute_force_group_size(occ: &[usize]) -> usize {
    let max_occ = occ.iter().copied().max().unwrap_or(1).max(1);
    (1..=max_occ)
        .min_by_key(|&g| indirect_access_cost(occ, g))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_matches_paper_example() {
        // Fig. 4: occ = [3, 1, 1, 2].
        let occ = [3, 1, 1, 2];
        // g=1: (1+1) * (3+1+1+2) = 14.
        assert_eq!(indirect_access_cost(&occ, 1), 14);
        // g=2: (2+1) * (2+1+1+1) = 15.
        assert_eq!(indirect_access_cost(&occ, 2), 15);
        // g=3: (3+1) * (1+1+1+1) = 16.
        assert_eq!(indirect_access_cost(&occ, 3), 16);
    }

    #[test]
    fn continuous_estimate() {
        // S = 7, n = 4 -> sqrt(1.75) ~ 1.32.
        let occ = [3, 1, 1, 2];
        assert!((continuous_group_size(&occ) - (7.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn heuristic_is_near_optimal_on_uniform_rows() {
        // 64 rows x 16 nnz each: g* = sqrt(16) = 4. The exact argmin of
        // F is larger (the ceiling relaxation is conservative), but the
        // heuristic's cost must stay within ~20% of optimal — the
        // "nearly optimal" claim of §4.2.
        let occ = vec![16usize; 64];
        let h = heuristic_group_size(&occ);
        assert_eq!(h, 4);
        let b = brute_force_group_size(&occ);
        let ratio = indirect_access_cost(&occ, h) as f64 / indirect_access_cost(&occ, b) as f64;
        assert!(ratio <= 1.2, "heuristic cost ratio {ratio}");
    }

    #[test]
    fn heuristic_close_to_brute_force_cost_on_skewed_rows() {
        // A power-law-ish occupancy: the heuristic may not equal the
        // argmin but must be within 25% of the optimal cost (the paper
        // reports it "nearly optimal").
        let occ: Vec<usize> = (1..200).map(|i| 1 + 2000 / i).collect();
        let h = heuristic_group_size(&occ);
        let b = brute_force_group_size(&occ);
        let ch = indirect_access_cost(&occ, h) as f64;
        let cb = indirect_access_cost(&occ, b) as f64;
        assert!(
            ch <= 1.25 * cb,
            "heuristic {h} cost {ch} vs optimal {b} cost {cb}"
        );
    }

    #[test]
    fn nearest_power_of_two_rounds() {
        assert_eq!(nearest_power_of_two(0.5), 1);
        assert_eq!(nearest_power_of_two(1.0), 1);
        assert_eq!(nearest_power_of_two(1.4), 1);
        assert_eq!(nearest_power_of_two(3.0), 4); // 3/2 vs 4/3: 4 wins
        assert_eq!(nearest_power_of_two(5.0), 4);
        assert_eq!(nearest_power_of_two(6.0), 8); // 6/4 = 1.5 vs 8/6 = 1.33
        assert_eq!(nearest_power_of_two(24.0), 32);
        assert_eq!(nearest_power_of_two(16.0), 16);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(heuristic_group_size(&[]), 1);
        assert_eq!(heuristic_group_size(&[0, 0, 0]), 1);
        assert_eq!(brute_force_group_size(&[]), 1);
    }

    #[test]
    fn cost_has_divisor_dips() {
        // F(g) is jagged: it dips where g divides the occupancy (no
        // padding) — the structure behind the paper's Fig. 7 spikes.
        let occ = vec![64usize; 32];
        let f = |g| indirect_access_cost(&occ, g);
        // Divisors of 64 beat their neighbors.
        for g in [2u64, 4, 8, 16, 32] {
            assert!(f(g as usize) < f(g as usize + 1) || f(g as usize) < f(g as usize - 1));
        }
        // Extremes are worse than the brute-force optimum.
        let best = f(brute_force_group_size(&occ));
        assert!(best < f(1));
        assert!(best <= f(64));
    }
}
