//! The CSR (compressed sparse row) format.

use crate::coo::Coo;
use crate::Result;
use insum_tensor::Tensor;

/// Compressed sparse row storage — the variable-length format used by the
/// cuSPARSE and Sputnik baselines.
///
/// CSR is *not* expressible as an indirect Einsum because the per-row loop
/// bound `row_ptr[m+1] - row_ptr[m]` is data-dependent (§4); it exists
/// here for the baseline kernels and as a conversion source.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    /// Row pointers (`[rows + 1]`, I32).
    pub row_ptr: Tensor,
    /// Column index of each nonzero (`[nnz]`, I32).
    pub col_idx: Tensor,
    /// Nonzero values (`[nnz]`).
    pub vals: Tensor,
}

impl Csr {
    /// Convert from COO (already row-sorted by construction).
    pub fn from_coo(coo: &Coo) -> Csr {
        let nnz = coo.nnz();
        let mut ptr = vec![0i64; coo.rows + 1];
        for p in 0..nnz {
            ptr[coo.am.at_i64(&[p]) as usize + 1] += 1;
        }
        for r in 0..coo.rows {
            ptr[r + 1] += ptr[r];
        }
        Csr {
            rows: coo.rows,
            cols: coo.cols,
            row_ptr: Tensor::from_indices(vec![coo.rows + 1], ptr).expect("length matches"),
            col_idx: coo.ak.clone(),
            vals: coo.av.clone(),
        }
    }

    /// Extract from a dense matrix.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::FormatError`] from the COO conversion.
    pub fn from_dense(dense: &Tensor) -> Result<Csr> {
        Ok(Csr::from_coo(&Coo::from_dense(dense)?))
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Nonzero count of one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        (self.row_ptr.at_i64(&[row + 1]) - self.row_ptr.at_i64(&[row])) as usize
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for r in 0..self.rows {
            let lo = self.row_ptr.at_i64(&[r]) as usize;
            let hi = self.row_ptr.at_i64(&[r + 1]) as usize;
            for p in lo..hi {
                let c = self.col_idx.at_i64(&[p]) as usize;
                let v = out.at(&[r, c]) + self.vals.at(&[p]);
                out.set(&[r, c], v);
            }
        }
        out.cast(self.vals.dtype())
    }

    /// Bytes on the simulated device. Note the `O(rows)` row-pointer term
    /// that the paper's Fig. 10 analysis charges against (B)CSR in the
    /// hypersparse regime.
    pub fn device_bytes(&self) -> usize {
        self.row_ptr.device_bytes() + self.col_idx.device_bytes() + self.vals.device_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        let mut t = Tensor::zeros(vec![4, 5]);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 1, 4.0),
            (2, 2, 5.0),
            (3, 2, 6.0),
            (3, 3, 7.0),
        ] {
            t.set(&[r, c], v);
        }
        t
    }

    #[test]
    fn matches_paper_figure_1() {
        // Fig. 1 CSR for the example matrix: AM = [0,3,4,5,7].
        let csr = Csr::from_dense(&sample()).unwrap();
        assert_eq!(csr.row_ptr.data(), &[0.0, 3.0, 4.0, 5.0, 7.0]);
        assert_eq!(csr.col_idx.data(), &[0.0, 2.0, 3.0, 1.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        assert_eq!(Csr::from_dense(&d).unwrap().to_dense(), d);
    }

    #[test]
    fn row_nnz() {
        let csr = Csr::from_dense(&sample()).unwrap();
        assert_eq!(csr.row_nnz(0), 3);
        assert_eq!(csr.row_nnz(1), 1);
        assert_eq!(csr.row_nnz(3), 2);
    }

    #[test]
    fn empty_rows_still_cost_pointer_space() {
        let mut t = Tensor::zeros(vec![100, 4]);
        t.set(&[0, 0], 1.0);
        let csr = Csr::from_dense(&t).unwrap();
        assert_eq!(csr.nnz(), 1);
        // 101 pointers * 4 bytes dominate the 8 bytes of payload.
        assert!(csr.device_bytes() > 101 * 4);
    }
}
