//! Format construction errors.

use insum_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error from building or converting a sparse format.
#[derive(Debug, Clone, PartialEq)]
pub enum FormatError {
    /// A coordinate lies outside the matrix bounds.
    CoordinateOutOfBounds {
        /// The row coordinate.
        row: usize,
        /// The column coordinate.
        col: usize,
        /// Matrix rows.
        rows: usize,
        /// Matrix cols.
        cols: usize,
    },
    /// The matrix dimensions are not divisible by the block size.
    BlockMismatch {
        /// Matrix extent.
        extent: usize,
        /// Block extent.
        block: usize,
    },
    /// An invalid parameter (e.g. group size 0).
    InvalidParameter(String),
    /// Error from an underlying tensor operation.
    Tensor(TensorError),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::CoordinateOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => {
                write!(
                    f,
                    "coordinate ({row}, {col}) out of bounds for {rows}x{cols} matrix"
                )
            }
            FormatError::BlockMismatch { extent, block } => {
                write!(
                    f,
                    "matrix extent {extent} is not divisible by block extent {block}"
                )
            }
            FormatError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            FormatError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for FormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FormatError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for FormatError {
    fn from(e: TensorError) -> Self {
        FormatError::Tensor(e)
    }
}
