//! The COO (coordinate) format.

use crate::error::FormatError;
use crate::Result;
use insum_tensor::{DType, Tensor};

/// Coordinate-list storage: one `(row, col, value)` triplet per nonzero.
///
/// Metadata tensors `am`/`ak` are I32; values keep their dtype. Entries
/// are stored row-major sorted (row, then column), which every conversion
/// in this crate relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    /// Row coordinate of each nonzero (`[nnz]`, I32).
    pub am: Tensor,
    /// Column coordinate of each nonzero (`[nnz]`, I32).
    pub ak: Tensor,
    /// Nonzero values (`[nnz]`).
    pub av: Tensor,
}

impl Coo {
    /// Build from unsorted triplets.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::CoordinateOutOfBounds`] for any coordinate
    /// outside `rows × cols`.
    pub fn from_triplets(rows: usize, cols: usize, entries: &[(usize, usize, f32)]) -> Result<Coo> {
        for &(r, c, _) in entries {
            if r >= rows || c >= cols {
                return Err(FormatError::CoordinateOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        let mut sorted: Vec<(usize, usize, f32)> = entries.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let nnz = sorted.len();
        let am = Tensor::from_indices(vec![nnz], sorted.iter().map(|e| e.0 as i64).collect())
            .expect("length matches");
        let ak = Tensor::from_indices(vec![nnz], sorted.iter().map(|e| e.1 as i64).collect())
            .expect("length matches");
        let av = Tensor::from_vec(vec![nnz], sorted.iter().map(|e| e.2).collect())
            .expect("length matches");
        Ok(Coo {
            rows,
            cols,
            am,
            ak,
            av,
        })
    }

    /// Extract the nonzeros of a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidParameter`] unless `dense` is rank 2.
    pub fn from_dense(dense: &Tensor) -> Result<Coo> {
        if dense.ndim() != 2 {
            return Err(FormatError::InvalidParameter(format!(
                "expected a matrix, got shape {:?}",
                dense.shape()
            )));
        }
        let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
        let mut entries = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.at(&[r, c]);
                if v != 0.0 {
                    entries.push((r, c, v));
                }
            }
        }
        let mut coo = Coo::from_triplets(rows, cols, &entries)?;
        coo.av = coo.av.cast(dense.dtype());
        Ok(coo)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.av.len()
    }

    /// Reconstruct the dense matrix (duplicates accumulate).
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for p in 0..self.nnz() {
            let r = self.am.at_i64(&[p]) as usize;
            let c = self.ak.at_i64(&[p]) as usize;
            let v = out.at(&[r, c]) + self.av.at(&[p]);
            out.set(&[r, c], v);
        }
        out.cast(self.av.dtype())
    }

    /// Per-row nonzero counts (the `occ` vector of §4.2).
    pub fn occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.rows];
        for p in 0..self.nnz() {
            occ[self.am.at_i64(&[p]) as usize] += 1;
        }
        occ
    }

    /// Bytes on the simulated device (values + both coordinate arrays).
    pub fn device_bytes(&self) -> usize {
        self.am.device_bytes() + self.ak.device_bytes() + self.av.device_bytes()
    }

    /// Cast the values to a dtype, returning a new COO.
    pub fn with_dtype(&self, dtype: DType) -> Coo {
        Coo {
            av: self.av.cast(dtype),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Tensor {
        // 4x5 with nonzeros a..g laid out as in paper Fig. 1.
        let mut t = Tensor::zeros(vec![4, 5]);
        t.set(&[0, 0], 1.0); // a
        t.set(&[0, 2], 2.0); // b
        t.set(&[0, 3], 3.0); // c
        t.set(&[1, 1], 4.0); // d
        t.set(&[2, 2], 5.0); // e
        t.set(&[3, 2], 6.0); // f
        t.set(&[3, 3], 7.0); // g
        t
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let coo = Coo::from_dense(&d).unwrap();
        assert_eq!(coo.nnz(), 7);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn triplets_are_sorted() {
        let coo = Coo::from_triplets(3, 3, &[(2, 1, 1.0), (0, 2, 2.0), (0, 1, 3.0)]).unwrap();
        assert_eq!(coo.am.data(), &[0.0, 0.0, 2.0]);
        assert_eq!(coo.ak.data(), &[1.0, 2.0, 1.0]);
        assert_eq!(coo.av.data(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        assert!(matches!(
            Coo::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(FormatError::CoordinateOutOfBounds { .. })
        ));
    }

    #[test]
    fn occupancy_matches_paper_example() {
        // Paper §4.2: occ = [3, 1, 1, 2] for the Fig. 4 matrix.
        let coo = Coo::from_dense(&sample_dense()).unwrap();
        assert_eq!(coo.occupancy(), vec![3, 1, 1, 2]);
    }

    #[test]
    fn device_bytes_accounts_metadata() {
        let coo = Coo::from_dense(&sample_dense()).unwrap();
        // 7 nnz * (4 + 4 + 4) bytes.
        assert_eq!(coo.device_bytes(), 7 * 12);
        let half = coo.with_dtype(DType::F16);
        assert_eq!(half.device_bytes(), 7 * 10);
    }

    #[test]
    fn rank_validated() {
        assert!(Coo::from_dense(&Tensor::zeros(vec![2, 2, 2])).is_err());
    }

    #[test]
    fn empty_matrix() {
        let coo = Coo::from_dense(&Tensor::zeros(vec![3, 3])).unwrap();
        assert_eq!(coo.nnz(), 0);
        assert_eq!(coo.to_dense(), Tensor::zeros(vec![3, 3]));
    }
}
