//! Sparse matrix formats (§4 of the paper).
//!
//! The paper's key formats are the *fixed-length* family designed to fit
//! the Einsum iteration model (loop bounds independent of data):
//!
//! * [`Coo`] — plain coordinate triplets; the degenerate `g = 1` case.
//! * [`GroupCoo`] — nonzeros grouped along the row dimension into
//!   fixed-size groups with one stored row index per group (§4.1); `g`
//!   sweeps between COO (`g = 1`) and [`Ell`] (`g = max occupancy`).
//! * [`BlockCoo`] / [`BlockGroupCoo`] — the block-sparse variants whose
//!   dense `bm × bk` tiles feed Tensor Cores.
//!
//! Variable-length comparison formats are also provided: [`Csr`] (used by
//! the cuSPARSE/Sputnik baselines) and [`Bcsr`] (TorchBSR's format, whose
//! `O(N)` row-pointer overhead drives the hypersparse behaviour in paper
//! Fig. 10).
//!
//! [`heuristic`] implements §4.2: the indirect-access cost
//! `F(g) = (g+1) · Σᵢ ⌈occᵢ/g⌉` and the closed-form minimizer
//! `g★ = √(S/n)` rounded to a power of two.

mod block;
mod coo;
mod csr;
mod ell;
mod error;
mod group;
pub mod heuristic;

pub use block::{Bcsr, BlockCoo, BlockGroupCoo};
pub use coo::Coo;
pub use csr::Csr;
pub use ell::Ell;
pub use error::FormatError;
pub use group::GroupCoo;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FormatError>;
