//! Block-sparse formats: BlockCOO, BCSR, and BlockGroupCOO (§4.1).

use crate::error::FormatError;
use crate::Result;
use insum_tensor::Tensor;

fn check_blocking(rows: usize, cols: usize, bm: usize, bk: usize) -> Result<()> {
    if bm == 0 || bk == 0 {
        return Err(FormatError::InvalidParameter(
            "block extents must be >= 1".to_string(),
        ));
    }
    if !rows.is_multiple_of(bm) {
        return Err(FormatError::BlockMismatch {
            extent: rows,
            block: bm,
        });
    }
    if !cols.is_multiple_of(bk) {
        return Err(FormatError::BlockMismatch {
            extent: cols,
            block: bk,
        });
    }
    Ok(())
}

/// Locate nonzero blocks of a dense matrix, returning `(brow, bcol)`
/// coordinates in row-major order plus the packed block values.
/// Block coordinates plus their dense values, in scan order.
type BlocksAndValues = (Vec<(usize, usize)>, Vec<f32>);

fn collect_blocks(dense: &Tensor, bm: usize, bk: usize) -> Result<BlocksAndValues> {
    if dense.ndim() != 2 {
        return Err(FormatError::InvalidParameter(format!(
            "expected a matrix, got shape {:?}",
            dense.shape()
        )));
    }
    let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
    check_blocking(rows, cols, bm, bk)?;
    let mut coords = Vec::new();
    let mut values = Vec::new();
    for br in 0..rows / bm {
        for bc in 0..cols / bk {
            let mut any = false;
            'scan: for i in 0..bm {
                for j in 0..bk {
                    if dense.at(&[br * bm + i, bc * bk + j]) != 0.0 {
                        any = true;
                        break 'scan;
                    }
                }
            }
            if any {
                coords.push((br, bc));
                for i in 0..bm {
                    for j in 0..bk {
                        values.push(dense.at(&[br * bm + i, bc * bk + j]));
                    }
                }
            }
        }
    }
    Ok((coords, values))
}

/// BlockCOO: coordinates of nonzero `bm × bk` blocks plus dense block
/// payloads (`av[p, bm, bk]`). SpMM Einsum:
/// `C[AM[p],bm,n] += AV[p,bm,bk] * B[AK[p],bk,n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCoo {
    /// Matrix rows (elements).
    pub rows: usize,
    /// Matrix cols (elements).
    pub cols: usize,
    /// Block height.
    pub bm: usize,
    /// Block width.
    pub bk: usize,
    /// Block-row coordinate per block (`[nblocks]`, I32).
    pub am: Tensor,
    /// Block-col coordinate per block (`[nblocks]`, I32).
    pub ak: Tensor,
    /// Block payloads (`[nblocks, bm, bk]`).
    pub av: Tensor,
}

impl BlockCoo {
    /// Extract nonzero blocks from a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::BlockMismatch`] if the matrix extents are
    /// not divisible by the block extents.
    pub fn from_dense(dense: &Tensor, bm: usize, bk: usize) -> Result<BlockCoo> {
        let (coords, values) = collect_blocks(dense, bm, bk)?;
        let n = coords.len();
        Ok(BlockCoo {
            rows: dense.shape()[0],
            cols: dense.shape()[1],
            bm,
            bk,
            am: Tensor::from_indices(vec![n], coords.iter().map(|c| c.0 as i64).collect())
                .expect("length matches"),
            ak: Tensor::from_indices(vec![n], coords.iter().map(|c| c.1 as i64).collect())
                .expect("length matches"),
            av: Tensor::from_vec(vec![n, bm, bk], values)
                .expect("length matches")
                .cast(dense.dtype()),
        })
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.am.len()
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for p in 0..self.nblocks() {
            let br = self.am.at_i64(&[p]) as usize;
            let bc = self.ak.at_i64(&[p]) as usize;
            for i in 0..self.bm {
                for j in 0..self.bk {
                    out.set(
                        &[br * self.bm + i, bc * self.bk + j],
                        self.av.at(&[p, i, j]),
                    );
                }
            }
        }
        out.cast(self.av.dtype())
    }

    /// Bytes on the simulated device.
    pub fn device_bytes(&self) -> usize {
        self.am.device_bytes() + self.ak.device_bytes() + self.av.device_bytes()
    }

    /// Per-block-row block counts.
    pub fn block_occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.rows / self.bm];
        for p in 0..self.nblocks() {
            occ[self.am.at_i64(&[p]) as usize] += 1;
        }
        occ
    }
}

/// BCSR — block CSR, the format behind the TorchBSR baseline. Like CSR it
/// stores a pointer per block row, including empty ones; that `O(N)`
/// overhead is what BlockGroupCOO removes in the hypersparse regime
/// (paper Fig. 10 discussion).
#[derive(Debug, Clone, PartialEq)]
pub struct Bcsr {
    /// Matrix rows (elements).
    pub rows: usize,
    /// Matrix cols (elements).
    pub cols: usize,
    /// Block height.
    pub bm: usize,
    /// Block width.
    pub bk: usize,
    /// Block-row pointers (`[rows/bm + 1]`, I32).
    pub row_ptr: Tensor,
    /// Block-col index per block (`[nblocks]`, I32).
    pub col_idx: Tensor,
    /// Block payloads (`[nblocks, bm, bk]`).
    pub av: Tensor,
}

impl Bcsr {
    /// Convert from BlockCOO (blocks are already row-major sorted).
    pub fn from_block_coo(bcoo: &BlockCoo) -> Bcsr {
        let brows = bcoo.rows / bcoo.bm;
        let mut ptr = vec![0i64; brows + 1];
        for p in 0..bcoo.nblocks() {
            ptr[bcoo.am.at_i64(&[p]) as usize + 1] += 1;
        }
        for r in 0..brows {
            ptr[r + 1] += ptr[r];
        }
        Bcsr {
            rows: bcoo.rows,
            cols: bcoo.cols,
            bm: bcoo.bm,
            bk: bcoo.bk,
            row_ptr: Tensor::from_indices(vec![brows + 1], ptr).expect("length matches"),
            col_idx: bcoo.ak.clone(),
            av: bcoo.av.clone(),
        }
    }

    /// Extract from a dense matrix.
    ///
    /// # Errors
    ///
    /// Propagates blocking errors.
    pub fn from_dense(dense: &Tensor, bm: usize, bk: usize) -> Result<Bcsr> {
        Ok(Bcsr::from_block_coo(&BlockCoo::from_dense(dense, bm, bk)?))
    }

    /// Number of stored blocks.
    pub fn nblocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Tensor {
        let brows = self.rows / self.bm;
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for br in 0..brows {
            let lo = self.row_ptr.at_i64(&[br]) as usize;
            let hi = self.row_ptr.at_i64(&[br + 1]) as usize;
            for p in lo..hi {
                let bc = self.col_idx.at_i64(&[p]) as usize;
                for i in 0..self.bm {
                    for j in 0..self.bk {
                        out.set(
                            &[br * self.bm + i, bc * self.bk + j],
                            self.av.at(&[p, i, j]),
                        );
                    }
                }
            }
        }
        out.cast(self.av.dtype())
    }

    /// Bytes on the simulated device (includes the per-row pointers).
    pub fn device_bytes(&self) -> usize {
        self.row_ptr.device_bytes() + self.col_idx.device_bytes() + self.av.device_bytes()
    }
}

/// BlockGroupCOO: BlockCOO grouped along block rows (§4.1) — the format
/// behind the paper's structured-SpMM results. SpMM Einsum:
/// `C[AM[p],bm,n] += AV[p,q,bm,bk] * B[AK[p,q],bk,n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockGroupCoo {
    /// Matrix rows (elements).
    pub rows: usize,
    /// Matrix cols (elements).
    pub cols: usize,
    /// Block height.
    pub bm: usize,
    /// Block width.
    pub bk: usize,
    /// Group size (blocks per group).
    pub group_size: usize,
    /// Block-row coordinate per group (`[num_groups]`, I32).
    pub am: Tensor,
    /// Block-col coordinates (`[num_groups, g]`, I32; 0 for padding).
    pub ak: Tensor,
    /// Block payloads (`[num_groups, g, bm, bk]`; 0.0 for padding).
    pub av: Tensor,
}

impl BlockGroupCoo {
    /// Convert from BlockCOO with the given group size.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidParameter`] if `group_size == 0`.
    pub fn from_block_coo(bcoo: &BlockCoo, group_size: usize) -> Result<BlockGroupCoo> {
        if group_size == 0 {
            return Err(FormatError::InvalidParameter(
                "group size must be >= 1".to_string(),
            ));
        }
        let g = group_size;
        let (bm, bk) = (bcoo.bm, bcoo.bk);
        let occ = bcoo.block_occupancy();
        let num_groups: usize = occ.iter().map(|&o| o.div_ceil(g)).sum();
        let block_elems = bm * bk;
        let mut am = Vec::with_capacity(num_groups);
        let mut ak = vec![0i64; num_groups * g];
        let mut av = vec![0.0f32; num_groups * g * block_elems];
        let mut group = 0usize;
        let mut p = 0usize;
        for (brow, &o) in occ.iter().enumerate() {
            let mut remaining = o;
            while remaining > 0 {
                let take = remaining.min(g);
                am.push(brow as i64);
                for q in 0..take {
                    ak[group * g + q] = bcoo.ak.at_i64(&[p]);
                    let dst = (group * g + q) * block_elems;
                    for e in 0..block_elems {
                        av[dst + e] = bcoo.av.data()[p * block_elems + e];
                    }
                    p += 1;
                }
                remaining -= take;
                group += 1;
            }
        }
        debug_assert_eq!(group, num_groups);
        Ok(BlockGroupCoo {
            rows: bcoo.rows,
            cols: bcoo.cols,
            bm,
            bk,
            group_size: g,
            am: Tensor::from_indices(vec![num_groups], am).expect("length matches"),
            ak: Tensor::from_indices(vec![num_groups, g], ak).expect("length matches"),
            av: Tensor::from_vec(vec![num_groups, g, bm, bk], av)
                .expect("length matches")
                .cast(bcoo.av.dtype()),
        })
    }

    /// Extract from a dense matrix.
    ///
    /// # Errors
    ///
    /// Propagates blocking and parameter errors.
    pub fn from_dense(
        dense: &Tensor,
        bm: usize,
        bk: usize,
        group_size: usize,
    ) -> Result<BlockGroupCoo> {
        BlockGroupCoo::from_block_coo(&BlockCoo::from_dense(dense, bm, bk)?, group_size)
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.am.len()
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for p in 0..self.num_groups() {
            let br = self.am.at_i64(&[p]) as usize;
            for q in 0..self.group_size {
                // Padding blocks are all-zero; adding them is harmless,
                // but they may alias block column 0, so accumulate.
                let bc = self.ak.at_i64(&[p, q]) as usize;
                for i in 0..self.bm {
                    for j in 0..self.bk {
                        let v = self.av.at(&[p, q, i, j]);
                        if v != 0.0 {
                            let cur = out.at(&[br * self.bm + i, bc * self.bk + j]) + v;
                            out.set(&[br * self.bm + i, bc * self.bk + j], cur);
                        }
                    }
                }
            }
        }
        out.cast(self.av.dtype())
    }

    /// Bytes on the simulated device.
    pub fn device_bytes(&self) -> usize {
        self.am.device_bytes() + self.ak.device_bytes() + self.av.device_bytes()
    }

    /// Indirect accesses for one SpMM (`F(g)` numerator at block level).
    pub fn indirect_accesses(&self) -> usize {
        self.num_groups() * (1 + self.group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig. 5/6 example: 4x4 matrix with 2x2 blocks at (0,0), (0,1),
    /// (1,1).
    fn sample() -> Tensor {
        let mut t = Tensor::zeros(vec![4, 4]);
        t.set(&[0, 0], 1.0); // block (0,0): a
        t.set(&[1, 0], 2.0); // b  (paper has b/b duplicated; values differ here)
        t.set(&[1, 1], 3.0); // c
        t.set(&[0, 2], 4.0); // block (0,1): d
        t.set(&[1, 3], 5.0); // e
        t.set(&[2, 2], 6.0); // block (1,1): f
        t.set(&[3, 3], 7.0); // g
        t
    }

    #[test]
    fn block_coo_matches_paper_figure_5() {
        let b = BlockCoo::from_dense(&sample(), 2, 2).unwrap();
        assert_eq!(b.nblocks(), 3);
        assert_eq!(b.am.data(), &[0.0, 0.0, 1.0]);
        assert_eq!(b.ak.data(), &[0.0, 1.0, 1.0]);
        assert_eq!(b.av.shape(), &[3, 2, 2]);
    }

    #[test]
    fn block_coo_roundtrip() {
        let d = sample();
        assert_eq!(BlockCoo::from_dense(&d, 2, 2).unwrap().to_dense(), d);
    }

    #[test]
    fn bcsr_roundtrip_and_pointers() {
        let d = sample();
        let b = Bcsr::from_dense(&d, 2, 2).unwrap();
        assert_eq!(b.row_ptr.data(), &[0.0, 2.0, 3.0]);
        assert_eq!(b.to_dense(), d);
    }

    #[test]
    fn block_group_coo_matches_paper_figure_6() {
        // Fig. 6: group block rows by 2 -> 2 groups; group 0 holds blocks
        // (0,0) and (0,1); group 1 holds (1,1) plus padding.
        let bg = BlockGroupCoo::from_dense(&sample(), 2, 2, 2).unwrap();
        assert_eq!(bg.num_groups(), 2);
        assert_eq!(bg.am.data(), &[0.0, 1.0]);
        assert_eq!(bg.ak.data(), &[0.0, 1.0, 1.0, 0.0]); // last is padding
        assert_eq!(bg.av.shape(), &[2, 2, 2, 2]);
        // Padding block is all zeros.
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(bg.av.at(&[1, 1, i, j]), 0.0);
            }
        }
    }

    #[test]
    fn block_group_roundtrip_various_g() {
        let d = sample();
        for g in 1..=4 {
            assert_eq!(
                BlockGroupCoo::from_dense(&d, 2, 2, g).unwrap().to_dense(),
                d,
                "g={g}"
            );
        }
    }

    #[test]
    fn blocking_mismatch_rejected() {
        let d = Tensor::zeros(vec![5, 4]);
        assert!(matches!(
            BlockCoo::from_dense(&d, 2, 2),
            Err(FormatError::BlockMismatch {
                extent: 5,
                block: 2
            })
        ));
        assert!(BlockCoo::from_dense(&Tensor::zeros(vec![4, 4]), 0, 2).is_err());
    }

    #[test]
    fn bcsr_pays_rowptr_for_empty_rows() {
        // Hypersparse: 1 block in a 64-block-row matrix.
        let mut d = Tensor::zeros(vec![128, 8]);
        d.set(&[0, 0], 1.0);
        let bcsr = Bcsr::from_dense(&d, 2, 2).unwrap();
        let bcoo = BlockCoo::from_dense(&d, 2, 2).unwrap();
        assert!(
            bcsr.device_bytes() > 3 * bcoo.device_bytes(),
            "row pointers dominate"
        );
    }

    #[test]
    fn block_occupancy() {
        let b = BlockCoo::from_dense(&sample(), 2, 2).unwrap();
        assert_eq!(b.block_occupancy(), vec![2, 1]);
    }
}
