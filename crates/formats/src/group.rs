//! The GroupCOO format (§4.1).

use crate::coo::Coo;
use crate::error::FormatError;
use crate::Result;
use insum_tensor::Tensor;

/// GroupCOO: nonzeros partitioned into fixed-size groups along the row
/// dimension. Each group stores its row index once (`am`), plus `g`
/// column indices and values (padded with column 0 / value 0.0).
///
/// Setting `g = 1` degenerates to [`Coo`]; setting `g` to the maximum row
/// occupancy yields [`crate::Ell`]-like padding with explicit row ids.
/// The SpMM Einsum is `C[AM[p],n] += AV[p,q] * B[AK[p,q],n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCoo {
    /// Number of matrix rows.
    pub rows: usize,
    /// Number of matrix columns.
    pub cols: usize,
    /// Group size `g`.
    pub group_size: usize,
    /// Row index of each group (`[num_groups]`, I32).
    pub am: Tensor,
    /// Column indices (`[num_groups, g]`, I32; 0 for padding).
    pub ak: Tensor,
    /// Values (`[num_groups, g]`; 0.0 for padding).
    pub av: Tensor,
}

impl GroupCoo {
    /// Convert from COO with the given group size.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidParameter`] if `group_size == 0`.
    pub fn from_coo(coo: &Coo, group_size: usize) -> Result<GroupCoo> {
        if group_size == 0 {
            return Err(FormatError::InvalidParameter(
                "group size must be >= 1".to_string(),
            ));
        }
        let g = group_size;
        let occ = coo.occupancy();
        let num_groups: usize = occ.iter().map(|&o| o.div_ceil(g)).sum();
        let mut am = Vec::with_capacity(num_groups);
        let mut ak = vec![0i64; num_groups * g];
        let mut av = vec![0.0f32; num_groups * g];
        let mut group = 0usize;
        let mut p = 0usize;
        for (row, &o) in occ.iter().enumerate() {
            let mut remaining = o;
            while remaining > 0 {
                let take = remaining.min(g);
                am.push(row as i64);
                for q in 0..take {
                    ak[group * g + q] = coo.ak.at_i64(&[p]);
                    av[group * g + q] = coo.av.at(&[p]);
                    p += 1;
                }
                remaining -= take;
                group += 1;
            }
        }
        debug_assert_eq!(group, num_groups);
        Ok(GroupCoo {
            rows: coo.rows,
            cols: coo.cols,
            group_size: g,
            am: Tensor::from_indices(vec![num_groups], am).expect("length matches"),
            ak: Tensor::from_indices(vec![num_groups, g], ak).expect("length matches"),
            av: Tensor::from_vec(vec![num_groups, g], av)
                .expect("length matches")
                .cast(coo.av.dtype()),
        })
    }

    /// Extract from a dense matrix.
    ///
    /// # Errors
    ///
    /// Propagates conversion errors.
    pub fn from_dense(dense: &Tensor, group_size: usize) -> Result<GroupCoo> {
        GroupCoo::from_coo(&Coo::from_dense(dense)?, group_size)
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.am.len()
    }

    /// Stored slots including padding.
    pub fn slots(&self) -> usize {
        self.num_groups() * self.group_size
    }

    /// Reconstruct the dense matrix.
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros(vec![self.rows, self.cols]);
        for p in 0..self.num_groups() {
            let r = self.am.at_i64(&[p]) as usize;
            for q in 0..self.group_size {
                let v = self.av.at(&[p, q]);
                if v != 0.0 {
                    let c = self.ak.at_i64(&[p, q]) as usize;
                    let cur = out.at(&[r, c]) + v;
                    out.set(&[r, c], cur);
                }
            }
        }
        out.cast(self.av.dtype())
    }

    /// Bytes on the simulated device.
    pub fn device_bytes(&self) -> usize {
        self.am.device_bytes() + self.ak.device_bytes() + self.av.device_bytes()
    }

    /// Indirect accesses this format implies for one SpMM: one scatter per
    /// group (`AM`) plus `g` gathers per group (`AK`) — the paper's
    /// `F(g)` numerator (§4.2).
    pub fn indirect_accesses(&self) -> usize {
        self.num_groups() * (1 + self.group_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        // Paper Fig. 4 matrix: occ = [3, 1, 1, 2].
        let mut t = Tensor::zeros(vec![4, 5]);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (0, 3, 3.0),
            (1, 1, 4.0),
            (2, 2, 5.0),
            (3, 2, 6.0),
            (3, 3, 7.0),
        ] {
            t.set(&[r, c], v);
        }
        t
    }

    #[test]
    fn group_by_two_matches_paper_figure_4() {
        // Fig. 4, g=2: AM = [0,0,1,2,3], AV = [ab, c_, d_, e_, fg].
        let gc = GroupCoo::from_dense(&sample(), 2).unwrap();
        assert_eq!(gc.num_groups(), 5);
        assert_eq!(gc.am.data(), &[0.0, 0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            gc.av.data(),
            &[1.0, 2.0, 3.0, 0.0, 4.0, 0.0, 5.0, 0.0, 6.0, 7.0]
        );
    }

    #[test]
    fn group_by_three_matches_paper_figure_4() {
        // Fig. 4, g=3 (the max occupancy): equals ELL content.
        let gc = GroupCoo::from_dense(&sample(), 3).unwrap();
        assert_eq!(gc.num_groups(), 4);
        assert_eq!(gc.am.data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(
            gc.av.data(),
            &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0, 5.0, 0.0, 0.0, 6.0, 7.0, 0.0]
        );
    }

    #[test]
    fn group_size_one_is_coo() {
        let coo = Coo::from_dense(&sample()).unwrap();
        let gc = GroupCoo::from_coo(&coo, 1).unwrap();
        assert_eq!(gc.num_groups(), coo.nnz());
        assert_eq!(gc.av.data(), coo.av.data());
        assert_eq!(gc.am.data(), coo.am.data());
    }

    #[test]
    fn roundtrip_various_group_sizes() {
        let d = sample();
        for g in 1..=5 {
            assert_eq!(GroupCoo::from_dense(&d, g).unwrap().to_dense(), d, "g={g}");
        }
    }

    #[test]
    fn zero_group_size_rejected() {
        let coo = Coo::from_dense(&sample()).unwrap();
        assert!(GroupCoo::from_coo(&coo, 0).is_err());
    }

    #[test]
    fn indirect_access_count() {
        let gc = GroupCoo::from_dense(&sample(), 2).unwrap();
        // 5 groups * (1 scatter + 2 gathers) = 15.
        assert_eq!(gc.indirect_accesses(), 15);
    }

    #[test]
    fn memory_shrinks_with_grouping_vs_coo() {
        // The paper reports GroupCOO at 69% of COO memory for its ablation
        // matrix; qualitatively, grouping must shrink metadata when rows
        // have many nonzeros.
        let mut t = Tensor::zeros(vec![8, 64]);
        for r in 0..8 {
            for c in 0..32 {
                t.set(&[r, c], 1.0);
            }
        }
        let coo = Coo::from_dense(&t).unwrap();
        let gc = GroupCoo::from_coo(&coo, 16).unwrap();
        assert!(gc.device_bytes() < coo.device_bytes());
    }
}
