//! Property tests: every format is a faithful encoding of its matrix.

use insum_formats::{Bcsr, BlockCoo, BlockGroupCoo, Coo, Csr, Ell, GroupCoo};
use insum_tensor::Tensor;
use proptest::prelude::*;

/// Random sparse matrices with dimensions divisible by 4 (so the block
/// formats always apply with 2x2 and 4x4 blocks).
fn sparse_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..=4, 1usize..=4, 0.0f64..0.9).prop_flat_map(|(rb, cb, density)| {
        let rows = rb * 4;
        let cols = cb * 4;
        proptest::collection::vec((0.0f64..1.0, -4.0f32..4.0), rows * cols).prop_map(move |cells| {
            Tensor::from_fn(vec![rows, cols], |idx| {
                let (p, v) = cells[idx[0] * cols + idx[1]];
                // Nonzero with probability `density`, never storing
                // explicit zeros (v == 0 collides with padding).
                if p < density && v != 0.0 {
                    v
                } else {
                    0.0
                }
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_roundtrip(m in sparse_matrix()) {
        prop_assert_eq!(Coo::from_dense(&m).unwrap().to_dense(), m);
    }

    #[test]
    fn csr_roundtrip(m in sparse_matrix()) {
        prop_assert_eq!(Csr::from_dense(&m).unwrap().to_dense(), m);
    }

    #[test]
    fn ell_roundtrip(m in sparse_matrix()) {
        prop_assert_eq!(Ell::from_dense(&m).unwrap().to_dense(), m);
    }

    #[test]
    fn group_coo_roundtrip(m in sparse_matrix(), g in 1usize..=8) {
        prop_assert_eq!(GroupCoo::from_dense(&m, g).unwrap().to_dense(), m);
    }

    #[test]
    fn block_coo_roundtrip(m in sparse_matrix()) {
        prop_assert_eq!(BlockCoo::from_dense(&m, 2, 2).unwrap().to_dense(), m.clone());
        prop_assert_eq!(BlockCoo::from_dense(&m, 4, 4).unwrap().to_dense(), m);
    }

    #[test]
    fn bcsr_roundtrip(m in sparse_matrix()) {
        prop_assert_eq!(Bcsr::from_dense(&m, 2, 2).unwrap().to_dense(), m);
    }

    #[test]
    fn block_group_coo_roundtrip(m in sparse_matrix(), g in 1usize..=4) {
        prop_assert_eq!(BlockGroupCoo::from_dense(&m, 2, 2, g).unwrap().to_dense(), m);
    }

    #[test]
    fn group_coo_padding_never_decreases_slots(m in sparse_matrix(), g in 1usize..=8) {
        let coo = Coo::from_dense(&m).unwrap();
        let gc = GroupCoo::from_coo(&coo, g).unwrap();
        prop_assert!(gc.slots() >= coo.nnz());
        // Slots are bounded by nnz + one partial group per nonempty row.
        let nonempty = coo.occupancy().iter().filter(|&&o| o > 0).count();
        prop_assert!(gc.slots() <= coo.nnz() + nonempty * (g - 1));
    }

    #[test]
    fn csr_and_coo_agree(m in sparse_matrix()) {
        let coo = Coo::from_dense(&m).unwrap();
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.nnz(), coo.nnz());
        prop_assert_eq!(csr.to_dense(), coo.to_dense());
    }

    #[test]
    fn heuristic_cost_is_never_catastrophic(m in sparse_matrix()) {
        use insum_formats::heuristic::*;
        let occ = Coo::from_dense(&m).unwrap().occupancy();
        if occ.iter().any(|&o| o > 0) {
            let h = heuristic_group_size(&occ);
            let b = brute_force_group_size(&occ);
            // Within 2x of optimal indirect-access cost on arbitrary data.
            prop_assert!(
                indirect_access_cost(&occ, h) <= 2 * indirect_access_cost(&occ, b)
            );
        }
    }
}
