//! Einsum pattern classification for fast-path dispatch.
//!
//! The general indirect-einsum lowering (crates/gpu) can execute *every*
//! contraction, but production engines win the common case by recognizing
//! it: a transpose is a stride permutation, a matmul is a microkernel.
//! This crate is the recognition layer — a pure, dependency-free function
//! from the *index structure* of an einsum (its input terms and output
//! term) to a [`Pattern`].
//!
//! # Recognition table
//!
//! Index names below are canonical placeholders; classification is
//! structural, so any names that are equal/distinct in the same positions
//! classify identically (see [`canonical_spec`]).
//!
//! | Spec shape                | Pattern                  | Extracted dims |
//! |---------------------------|--------------------------|----------------|
//! | `a…z -> permutation`      | [`Pattern::Transpose`]   | `perm[d]` = input axis feeding output axis `d` |
//! | `a…z -> ordered subset`   | [`Pattern::Reduction`]   | `axes` = input axes summed away |
//! | `aa -> a`                 | [`Pattern::Diagonal`]    | — |
//! | `aa ->`                   | [`Pattern::Trace`]       | — |
//! | `ab,bc -> ac`             | [`Pattern::Matmul`]      | — |
//! | `gab,gbc -> gac`          | [`Pattern::BatchedMatmul`] | — |
//! | `T,T -> T` (same term)    | [`Pattern::Hadamard`]    | — |
//! | `a,b -> ab`               | [`Pattern::Outer`]       | — |
//! | `a,a ->`                  | [`Pattern::Dot`]         | — |
//! | anything else             | [`Pattern::General`]     | — |
//!
//! The identity copy `ab -> ab` is a [`Pattern::Transpose`] with the
//! identity permutation.
//!
//! # Fallback guarantee
//!
//! Classification is *conservative*: a spec is only assigned a non-general
//! pattern when it matches one of the rows above exactly. Near misses —
//! repeated indices outside the `aa` forms, broadcast dims (an output
//! index absent from every input), out-of-order reductions like
//! `ijk -> ji`, three or more operands, transposed Hadamard `ij,ji -> ij`,
//! matvec `ij,j -> i` — all classify as [`Pattern::General`] and run
//! through the full lowering. The general path therefore remains the
//! bit-identity oracle: for every recognized pattern the dedicated
//! fast-path execution must produce bit-identical results to the general
//! lowering, and everything unrecognized *is* the general lowering.

/// The canonical contraction shapes the fast path recognizes.
///
/// See the crate docs for the recognition table. `Transpose` and
/// `Reduction` carry the extracted axis structure; the remaining
/// patterns fix their axis roles by construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `ab,bc -> ac`: plain 2-D matrix multiply.
    Matmul,
    /// `gab,gbc -> gac`: matmul with one shared leading batch axis.
    BatchedMatmul,
    /// Single operand, output a permutation of the input indices.
    /// `perm[d]` is the input axis that feeds output axis `d`
    /// (`ij -> ji` gives `perm = [1, 0]`; identity copies included).
    Transpose {
        /// Output-axis-to-input-axis map.
        perm: Vec<usize>,
    },
    /// Single operand, output an order-preserving strict subsequence of
    /// the input indices; the dropped axes are summed.
    /// `ijk -> ik` gives `axes = [1]`; `ij ->` gives `axes = [0, 1]`.
    Reduction {
        /// Input axes summed away, ascending.
        axes: Vec<usize>,
    },
    /// `T,T -> T`: elementwise product of two same-term operands.
    Hadamard,
    /// `a,b -> ab`: outer product of two vectors.
    Outer,
    /// `a,a ->`: inner product of two vectors.
    Dot,
    /// `aa ->`: sum of the main diagonal of a square matrix.
    Trace,
    /// `aa -> a`: extract the main diagonal of a square matrix.
    Diagonal,
    /// Everything else: falls back to the full indirect-einsum lowering.
    General,
}

impl Pattern {
    /// Short lowercase label, stable across releases (used by simbench
    /// tables and serve kernel keys).
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Matmul => "matmul",
            Pattern::BatchedMatmul => "batched_matmul",
            Pattern::Transpose { .. } => "transpose",
            Pattern::Reduction { .. } => "reduction",
            Pattern::Hadamard => "hadamard",
            Pattern::Outer => "outer",
            Pattern::Dot => "dot",
            Pattern::Trace => "trace",
            Pattern::Diagonal => "diagonal",
            Pattern::General => "general",
        }
    }

    /// True for every pattern with a dedicated execution target
    /// (everything except [`Pattern::General`]).
    pub fn is_fast(&self) -> bool {
        !matches!(self, Pattern::General)
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn has_repeats<S: AsRef<str>>(term: &[S]) -> bool {
    for (i, a) in term.iter().enumerate() {
        if term[i + 1..].iter().any(|b| b.as_ref() == a.as_ref()) {
            return true;
        }
    }
    false
}

fn same_term<S: AsRef<str>>(a: &[S], b: &[S]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.as_ref() == y.as_ref())
}

/// Classify a single-operand contraction (no repeated input indices).
fn classify_unary<S: AsRef<str>>(input: &[S], output: &[S]) -> Pattern {
    // Permutation: same index multiset, same length, no repeats anywhere.
    if input.len() == output.len() {
        let mut perm = Vec::with_capacity(output.len());
        for o in output {
            match input.iter().position(|i| i.as_ref() == o.as_ref()) {
                Some(p) => perm.push(p),
                None => return Pattern::General,
            }
        }
        return Pattern::Transpose { perm };
    }
    // Order-preserving strict subsequence: the kept indices appear in the
    // same relative order; everything dropped is summed.
    if output.len() < input.len() {
        let mut axes = Vec::new();
        let mut oi = 0;
        for (ii, name) in input.iter().enumerate() {
            if oi < output.len() && output[oi].as_ref() == name.as_ref() {
                oi += 1;
            } else {
                axes.push(ii);
            }
        }
        if oi == output.len() {
            return Pattern::Reduction { axes };
        }
    }
    Pattern::General
}

/// Classify a two-operand contraction (no repeated indices in any term).
fn classify_binary<S: AsRef<str>>(a: &[S], b: &[S], output: &[S]) -> Pattern {
    if same_term(a, b) && same_term(a, output) {
        return Pattern::Hadamard;
    }
    match (a.len(), b.len(), output.len()) {
        (1, 1, 0) if a[0].as_ref() == b[0].as_ref() => Pattern::Dot,
        (1, 1, 2)
            if a[0].as_ref() != b[0].as_ref()
                && output[0].as_ref() == a[0].as_ref()
                && output[1].as_ref() == b[0].as_ref() =>
        {
            Pattern::Outer
        }
        (2, 2, 2)
            if a[1].as_ref() == b[0].as_ref()
                && output[0].as_ref() == a[0].as_ref()
                && output[1].as_ref() == b[1].as_ref()
                && !has_repeats(output)
                && a[0].as_ref() != b[0].as_ref()
                && a[1].as_ref() != b[1].as_ref() =>
        {
            Pattern::Matmul
        }
        (3, 3, 3)
            if a[0].as_ref() == b[0].as_ref()
                && a[2].as_ref() == b[1].as_ref()
                && output[0].as_ref() == a[0].as_ref()
                && output[1].as_ref() == a[1].as_ref()
                && output[2].as_ref() == b[2].as_ref()
                && !has_repeats(output)
                && distinct_batched(a, b) =>
        {
            Pattern::BatchedMatmul
        }
        _ => Pattern::General,
    }
}

/// For `gab,gbc -> gac`: g, a, b, c must be four distinct indices.
fn distinct_batched<S: AsRef<str>>(a: &[S], b: &[S]) -> bool {
    let names = [a[0].as_ref(), a[1].as_ref(), a[2].as_ref(), b[2].as_ref()];
    for (i, x) in names.iter().enumerate() {
        if names[i + 1..].contains(x) {
            return false;
        }
    }
    true
}

/// Classify an einsum given its input index terms and its output term.
///
/// Index names are compared by string equality only; shapes are not
/// consulted (shape consistency is the caller's concern — the fast-path
/// gate in `crates/core` re-validates extents before dispatch).
///
/// Returns [`Pattern::General`] for anything outside the recognition
/// table in the crate docs, including every spec with an output index
/// that appears in no input.
pub fn classify_terms<S: AsRef<str>>(inputs: &[Vec<S>], output: &[S]) -> Pattern {
    // Output repeats (`a -> aa`) and broadcast outputs are never fast.
    if has_repeats(output) {
        return Pattern::General;
    }
    for o in output {
        if !inputs
            .iter()
            .any(|t| t.iter().any(|i| i.as_ref() == o.as_ref()))
        {
            return Pattern::General;
        }
    }
    match inputs {
        [input] => {
            if has_repeats(input) {
                // Only the square-diagonal forms admit repeats.
                if input.len() == 2 && input[0].as_ref() == input[1].as_ref() {
                    return match output.len() {
                        1 if output[0].as_ref() == input[0].as_ref() => Pattern::Diagonal,
                        0 => Pattern::Trace,
                        _ => Pattern::General,
                    };
                }
                return Pattern::General;
            }
            classify_unary(input, output)
        }
        [a, b] => {
            if has_repeats(a) || has_repeats(b) {
                return Pattern::General;
            }
            classify_binary(a, b, output)
        }
        _ => Pattern::General,
    }
}

/// Parse and classify an einsum in compact notation, e.g. `"ij,jk->ik"`.
///
/// Each index is a single non-`,`/`->` character; whitespace is ignored.
/// Returns `None` if the spec is malformed (no `->`, empty input term).
pub fn classify_spec(spec: &str) -> Option<Pattern> {
    let (lhs, rhs) = spec.split_once("->")?;
    let output: Vec<String> = rhs
        .chars()
        .filter(|c| !c.is_whitespace())
        .map(String::from)
        .collect();
    let mut inputs = Vec::new();
    for term in lhs.split(',') {
        let vars: Vec<String> = term
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(String::from)
            .collect();
        if vars.is_empty() {
            return None;
        }
        inputs.push(vars);
    }
    Some(classify_terms(&inputs, &output))
}

/// Canonicalize index names by order of first appearance (inputs
/// left-to-right, then output) and render the spec compactly:
/// `classify_terms` is invariant under this renaming, so two specs with
/// the same canonical form always classify identically.
///
/// `canonical_spec(&[vec!["p","q"], vec!["q","r"]], &["p","r"])` is
/// `"ab,bc->ac"`. Names beyond 26 distinct indices render as `#<n>`.
pub fn canonical_spec<S: AsRef<str>>(inputs: &[Vec<S>], output: &[S]) -> String {
    fn rank<'a>(order: &mut Vec<&'a str>, name: &'a str) -> usize {
        match order.iter().position(|n| *n == name) {
            Some(p) => p,
            None => {
                order.push(name);
                order.len() - 1
            }
        }
    }
    fn letter(r: usize) -> String {
        if r < 26 {
            char::from(b'a' + r as u8).to_string()
        } else {
            format!("#{r}")
        }
    }
    let mut order: Vec<&str> = Vec::new();
    let mut rendered_inputs = Vec::new();
    for term in inputs {
        let mut s = String::new();
        for v in term {
            s.push_str(&letter(rank(&mut order, v.as_ref())));
        }
        rendered_inputs.push(s);
    }
    let mut out = String::new();
    for v in output {
        out.push_str(&letter(rank(&mut order, v.as_ref())));
    }
    format!("{}->{}", rendered_inputs.join(","), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(spec: &str) -> Pattern {
        classify_spec(spec).unwrap()
    }

    #[test]
    fn recognizes_every_table_row() {
        assert_eq!(c("ij,jk->ik"), Pattern::Matmul);
        assert_eq!(c("gij,gjk->gik"), Pattern::BatchedMatmul);
        assert_eq!(c("ij->ji"), Pattern::Transpose { perm: vec![1, 0] });
        assert_eq!(
            c("ijk->kij"),
            Pattern::Transpose {
                perm: vec![2, 0, 1]
            }
        );
        assert_eq!(c("ij->ij"), Pattern::Transpose { perm: vec![0, 1] });
        assert_eq!(c("ijk->ik"), Pattern::Reduction { axes: vec![1] });
        assert_eq!(c("ij->"), Pattern::Reduction { axes: vec![0, 1] });
        assert_eq!(c("ij->i"), Pattern::Reduction { axes: vec![1] });
        assert_eq!(c("ij,ij->ij"), Pattern::Hadamard);
        assert_eq!(c("i,i->i"), Pattern::Hadamard);
        assert_eq!(c("i,j->ij"), Pattern::Outer);
        assert_eq!(c("i,i->"), Pattern::Dot);
        assert_eq!(c("ii->"), Pattern::Trace);
        assert_eq!(c("ii->i"), Pattern::Diagonal);
    }

    #[test]
    fn near_misses_fall_back_to_general() {
        // Repeated indices outside the aa forms.
        assert_eq!(c("iij->j"), Pattern::General);
        assert_eq!(c("iii->i"), Pattern::General);
        assert_eq!(c("ii->ii"), Pattern::General);
        // Broadcast / invented output index.
        assert_eq!(c("i->ij"), Pattern::General);
        assert_eq!(c("ij,j->ij"), Pattern::General);
        // Reduce + permute is not an ordered subsequence.
        assert_eq!(c("ijk->ji"), Pattern::General);
        // Matvec and transposed-operand matmuls.
        assert_eq!(c("ij,j->i"), Pattern::General);
        assert_eq!(c("ij,kj->ik"), Pattern::General);
        assert_eq!(c("ji,jk->ik"), Pattern::General);
        // Transposed Hadamard, Frobenius dot, 2-D "outer".
        assert_eq!(c("ij,ji->ij"), Pattern::General);
        assert_eq!(c("ij,ij->"), Pattern::General);
        assert_eq!(c("ij,kl->ijkl"), Pattern::General);
        // Matmul degenerate index collisions.
        assert_eq!(c("ij,ji->ii"), Pattern::General);
        assert_eq!(c("ii,ij->ij"), Pattern::General);
        // Three operands never classify.
        assert_eq!(c("ij,jk,kl->il"), Pattern::General);
        // Batched matmul with a colliding batch index.
        assert_eq!(c("iab,ibi->iai"), Pattern::General);
    }

    #[test]
    fn classification_is_name_invariant() {
        let a = classify_terms(&[vec!["p", "q"], vec!["q", "r"]], &["p", "r"]);
        assert_eq!(a, Pattern::Matmul);
        assert_eq!(
            canonical_spec(&[vec!["p", "q"], vec!["q", "r"]], &["p", "r"]),
            "ab,bc->ac"
        );
        assert_eq!(
            canonical_spec(&[vec!["row", "col"]], &["col", "row"]),
            "ab->ba"
        );
    }

    #[test]
    fn spec_parsing_edges() {
        assert!(classify_spec("ij,jk").is_none());
        assert!(classify_spec("ij,->ij").is_none());
        assert_eq!(classify_spec(" i j -> j i "), Some(c("ij->ji")));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Pattern::Matmul.name(), "matmul");
        assert_eq!(Pattern::Transpose { perm: vec![] }.name(), "transpose");
        assert_eq!(Pattern::General.name(), "general");
        assert!(Pattern::Dot.is_fast());
        assert!(!Pattern::General.is_fast());
        assert_eq!(format!("{}", Pattern::BatchedMatmul), "batched_matmul");
    }
}
