//! Minimal, dependency-free stand-in for the subset of the `criterion`
//! API this workspace uses (see `vendor/README.md`).
//!
//! Timing methodology: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples, each an adaptively-sized batch of
//! iterations targeting `measurement_time / sample_size` per sample.
//! Reported numbers are the min / mean / max per-iteration times. There
//! is no statistical analysis or HTML report.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported so call sites can use
/// `criterion::black_box` as with the real crate.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget for measurement.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let s = &b.samples;
        if s.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        let min = s.iter().copied().fold(f64::INFINITY, f64::min);
        let max = s.iter().copied().fold(0.0f64, f64::max);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{name:<40} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Handed to the closure passed to [`Criterion::bench_function`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, recording per-iteration seconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, and calibrate the batch size from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let batch = ((sample_budget / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

/// Groups benchmark functions under a shared config, mirroring the real
/// crate's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2e-9).contains("ns"));
        assert!(format_time(2e-6).contains("µs"));
        assert!(format_time(2e-3).contains("ms"));
        assert!(format_time(2.0).contains(" s"));
    }
}
