//! Minimal, dependency-free stand-in for the subset of the `proptest`
//! API this workspace uses (see `vendor/README.md`).
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the assertion message and the case number), and regex strategies
//! support only character classes with an optional `?` suffix (the only
//! patterns this repository uses). Every test's random stream is seeded
//! from the test name, so runs are reproducible.

pub mod test_runner {
    //! Configuration, errors, and the deterministic RNG behind each test.

    /// Per-`proptest!` configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// xoshiro256++ seeded from the test name: deterministic per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from an arbitrary label (the generated test's name).
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a over the label, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut next = || {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Derive a second strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A boxed generator closure, one per `prop_oneof!` branch.
    pub type Generator<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between boxed sub-strategies (`prop_oneof!`).
    pub struct Union<V> {
        branches: Vec<Generator<V>>,
    }

    impl<V> Union<V> {
        /// Build from generator closures (used by `prop_oneof!`).
        pub fn from_generators(branches: Vec<Generator<V>>) -> Union<V> {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.branches.len() as u64) as usize;
            (self.branches[i])(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(usize, u64, u32, i64, i32, u8);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// `&str` strategies: character-class patterns like `"[a-h]"` or
    /// `"[A-Z][A-Z]?"` (a literal char outside brackets stands for
    /// itself; `?` makes the preceding class optional).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                // Parse one atom: a [...] class or a literal char.
                let set: Vec<char> = if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed character class")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            for c in lo..=hi {
                                set.push(char::from_u32(c).expect("valid char range"));
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                } else {
                    let c = chars[i];
                    i += 1;
                    vec![c]
                };
                let optional = i < chars.len() && chars[i] == '?';
                if optional {
                    i += 1;
                }
                if optional && rng.below(2) == 0 {
                    continue;
                }
                assert!(!set.is_empty(), "empty character class");
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
            out
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Permitted sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec()`](crate::collection::vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each inner `#[test] fn name(pat in strategy, ...)`
/// becomes a regular `#[test]` that runs `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg); $($rest)*);
    };
    (@with_cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < cfg.cases {
                    attempts += 1;
                    if attempts > cfg.cases.saturating_mul(20).max(1000) {
                        panic!("proptest {}: too many rejected cases", stringify!($name));
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), ran, msg)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), left, right),
            ));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::from_generators(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0usize..10, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn charclass_patterns(s in "[a-c][x-z]?") {
            let mut cs = s.chars();
            let first = cs.next().expect("nonempty");
            prop_assert!(('a'..='c').contains(&first));
            if let Some(second) = cs.next() {
                prop_assert!(('x'..='z').contains(&second));
            }
        }

        #[test]
        fn oneof_picks_every_branch(v in crate::collection::vec(
            prop_oneof![Just(1usize), Just(2usize)], 64
        )) {
            prop_assert!(v.iter().all(|&e| e == 1usize || e == 2usize));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }
}
