//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses (see `vendor/README.md`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so the
//! statistical quality is adequate for the randomized workloads and
//! moment tests in this repository. Streams are fully determined by the
//! seed; nothing reads OS entropy.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit output stream.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        uniform_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn uniform_f64(bits: u64) -> f64 {
    // 53 random mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn uniform_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Bounded uniform integer in `[0, span)` via Lemire's multiply-shift.
fn uniform_below(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample; `inclusive` selects the closed upper bound.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform(lo: Self, hi: Self, _inclusive: bool, rng: &mut impl RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + uniform_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform(lo: Self, hi: Self, _inclusive: bool, rng: &mut impl RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + uniform_f32(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(usize, u64, u32, i64, i32, u8);

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and seedable from a single `u64`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
