//! Integration tests for the performance claims the benchmarks rely on —
//! the qualitative shapes of the paper's evaluation, asserted at test
//! sizes so regressions in the compiler or cost model fail loudly.

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_formats::heuristic::heuristic_group_size;
use insum_formats::{Bcsr, BlockGroupCoo, Coo, Csr, GroupCoo};
use insum_gpu::DeviceModel;
use insum_tensor::DType;
use insum_workloads::blocksparse::{block_sparse_dense, coo_from_degrees};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn sim(app: &apps::BoundApp, opts: &InsumOptions) -> f64 {
    app.compile(opts)
        .expect("compiles")
        .time(&app.tensors)
        .expect("simulates")
        .total_time()
}

#[test]
fn ablation_ladder_is_monotone() {
    // Fig. 13's ladder: unfused < fused-eager < fused-lazy (in speed).
    let mut rng = SmallRng::seed_from_u64(1);
    let a = block_sparse_dense(256, 256, 32, 32, 0.9, &mut rng).cast(DType::F16);
    let b = insum_tensor::rand_uniform(vec![256, 128], -1.0, 1.0, &mut rng).cast(DType::F16);
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let t_unfused = sim(&app, &InsumOptions::unfused());
    let t_eager = sim(
        &app,
        &InsumOptions {
            lazy_broadcast: false,
            ..Default::default()
        },
    );
    let t_lazy = sim(&app, &InsumOptions::default());
    assert!(
        t_lazy < t_eager,
        "lazy {t_lazy:.3e} must beat eager {t_eager:.3e}"
    );
    assert!(
        t_eager < t_unfused,
        "fused {t_eager:.3e} must beat unfused {t_unfused:.3e}"
    );
}

#[test]
fn grouping_beats_plain_coo() {
    // Fig. 13 rows 1-2: grouping reduces scatters and metadata traffic.
    let mut rng = SmallRng::seed_from_u64(2);
    let a = block_sparse_dense(256, 256, 32, 32, 0.7, &mut rng);
    let coo = Coo::from_dense(&a).expect("matrix");
    let b = insum_tensor::rand_uniform(vec![256, 128], -1.0, 1.0, &mut rng);
    let gc = GroupCoo::from_coo(&coo, 16).expect("valid g");
    let opts = InsumOptions::default();
    let t_coo = sim(&apps::spmm_coo(&coo, &b), &opts);
    let t_gc = sim(&apps::spmm_group(&gc, &b), &opts);
    assert!(
        t_gc < t_coo,
        "grouping must win: group {t_gc:.3e} vs coo {t_coo:.3e}"
    );
}

#[test]
fn blocking_enables_tensor_cores_and_wins() {
    let mut rng = SmallRng::seed_from_u64(3);
    let a = block_sparse_dense(256, 256, 32, 32, 0.7, &mut rng).cast(DType::F16);
    let coo = Coo::from_dense(&a).expect("matrix");
    let b = insum_tensor::rand_uniform(vec![256, 128], -1.0, 1.0, &mut rng).cast(DType::F16);
    let gc = GroupCoo::from_coo(&coo, 16).expect("valid g");
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let opts = InsumOptions::default();
    let unstructured = apps::spmm_group(&gc, &b);
    let structured = apps::spmm_block_group(&bgc, &b);
    assert!(!unstructured
        .compile(&opts)
        .expect("compiles")
        .uses_tensor_cores());
    assert!(structured
        .compile(&opts)
        .expect("compiles")
        .uses_tensor_cores());
    assert!(sim(&structured, &opts) < sim(&unstructured, &opts));
}

#[test]
fn hypersparse_favors_group_coo_over_bcsr() {
    // Fig. 10 mechanism: one nonzero block in a tall matrix; BCSR pays a
    // program per block row plus full row-pointer traffic and a full
    // output store.
    let mut dense = insum_tensor::Tensor::zeros(vec![2048, 64]);
    for i in 0..32 {
        for j in 0..32 {
            dense.set(&[i, j], 1.0);
        }
    }
    let dense = dense.cast(DType::F16);
    let mut rng = SmallRng::seed_from_u64(4);
    let b = insum_tensor::rand_uniform(vec![64, 64], -1.0, 1.0, &mut rng).cast(DType::F16);
    let bgc = BlockGroupCoo::from_dense(&dense, 32, 32, 1).expect("blocked");
    let t_ours = sim(&apps::spmm_block_group(&bgc, &b), &InsumOptions::default());
    let bcsr = Bcsr::from_dense(&dense, 32, 32).expect("blocked");
    let (_, p) =
        insum_baselines::spmm::torch_bsr_spmm(&bcsr, &b, &DeviceModel::rtx3090(), Mode::Analytic)
            .expect("runs");
    assert!(
        t_ours < p.total_time(),
        "hypersparse: ours {t_ours:.3e} must beat BCSR {:.3e}",
        p.total_time()
    );
}

#[test]
fn sputnik_beats_cusparse_only_on_skew() {
    let device = DeviceModel::rtx3090();
    let mut rng = SmallRng::seed_from_u64(5);
    // Uniform degrees: swizzling does not help.
    let uniform = coo_from_degrees(&vec![8; 512], 512, &mut rng);
    let b = insum_tensor::rand_uniform(vec![512, 32], -1.0, 1.0, &mut rng);
    let csr_u = Csr::from_coo(&uniform);
    let (_, pu_s) =
        insum_baselines::spmm::sputnik_spmm(&csr_u, &b, &device, Mode::Analytic).expect("runs");
    let (_, pu_c) =
        insum_baselines::spmm::cusparse_spmm(&csr_u, &b, &device, Mode::Analytic).expect("runs");
    let uniform_gain = pu_c.total_time() / pu_s.total_time();

    // One giant late row: swizzling helps a lot.
    let mut degrees = vec![2usize; 512];
    degrees[511] = 1024;
    let skewed = coo_from_degrees(&degrees, 2048, &mut rng);
    let b2 = insum_tensor::rand_uniform(vec![2048, 32], -1.0, 1.0, &mut rng);
    let csr_s = Csr::from_coo(&skewed);
    let (_, ps_s) =
        insum_baselines::spmm::sputnik_spmm(&csr_s, &b2, &device, Mode::Analytic).expect("runs");
    let (_, ps_c) =
        insum_baselines::spmm::cusparse_spmm(&csr_s, &b2, &device, Mode::Analytic).expect("runs");
    let skew_gain = ps_c.total_time() / ps_s.total_time();
    assert!(
        skew_gain > uniform_gain,
        "swizzle gain on skew ({skew_gain:.3}) must exceed uniform ({uniform_gain:.3})"
    );
}

#[test]
fn heuristic_group_size_is_near_optimal_in_simulated_time() {
    let mut rng = SmallRng::seed_from_u64(6);
    let a = block_sparse_dense(512, 512, 32, 32, 0.5, &mut rng).cast(DType::F16);
    let b = insum_tensor::rand_uniform(vec![512, 128], -1.0, 1.0, &mut rng).cast(DType::F16);
    let bcoo = insum_formats::BlockCoo::from_dense(&a, 32, 32).expect("blocked");
    let occ = bcoo.block_occupancy();
    let g_star = heuristic_group_size(&occ);
    let opts = InsumOptions::default();
    let t_star = sim(
        &apps::spmm_block_group(
            &BlockGroupCoo::from_block_coo(&bcoo, g_star).expect("valid"),
            &b,
        ),
        &opts,
    );
    let best = (1..=16usize)
        .map(|g| {
            sim(
                &apps::spmm_block_group(
                    &BlockGroupCoo::from_block_coo(&bcoo, g).expect("valid"),
                    &b,
                ),
                &opts,
            )
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        t_star <= best * 1.25,
        "heuristic g={g_star} time {t_star:.3e} within 25% of best {best:.3e}"
    );
}

#[test]
fn f16_halves_memory_traffic() {
    let mut rng = SmallRng::seed_from_u64(7);
    let a = block_sparse_dense(256, 256, 32, 32, 0.5, &mut rng);
    let b32 = insum_tensor::rand_uniform(vec![256, 128], -1.0, 1.0, &mut rng);
    let bgc32 = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let bgc16 = BlockGroupCoo::from_dense(&a.cast(DType::F16), 32, 32, 2).expect("blocked");
    let app32 = apps::spmm_block_group(&bgc32, &b32);
    let app16 = apps::spmm_block_group(&bgc16, &b32.cast(DType::F16));
    let opts = InsumOptions::default();
    let p32 = app32
        .compile(&opts)
        .expect("compiles")
        .time(&app32.tensors)
        .expect("simulates");
    let p16 = app16
        .compile(&opts)
        .expect("compiles")
        .time(&app16.tensors)
        .expect("simulates");
    let d32 = p32.total_stats().dram_bytes() as f64;
    let d16 = p16.total_stats().dram_bytes() as f64;
    assert!(d16 < 0.7 * d32, "f16 traffic {d16} vs f32 {d32}");
}
