//! Cross-crate integration tests: every paper application, end to end —
//! workload generator → sparse format → indirect Einsum → fused kernel →
//! simulated execution — checked against independent references.

use insum::apps;
use insum::{eager, InsumOptions, Mode};
use insum_formats::heuristic::heuristic_group_size;
use insum_formats::{Bcsr, BlockGroupCoo, Coo, Csr, GroupCoo};
use insum_gpu::DeviceModel;
use insum_tensor::{DType, Tensor};
use insum_workloads::blocksparse::block_sparse_dense;
use insum_workloads::equivariant::cg_tensor;
use insum_workloads::graphs::{catalog, generate};
use insum_workloads::pointcloud::{generate_points, kernel_map, voxelize, RoomSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn option_grid() -> Vec<InsumOptions> {
    vec![
        InsumOptions::default(),
        InsumOptions {
            lazy_broadcast: false,
            ..Default::default()
        },
        InsumOptions {
            tensor_cores: false,
            ..Default::default()
        },
        InsumOptions::unfused(),
        InsumOptions::autotuned(),
    ]
}

#[test]
fn structured_spmm_all_configurations_match_dense() {
    let mut rng = SmallRng::seed_from_u64(1);
    let a = block_sparse_dense(128, 128, 32, 32, 0.6, &mut rng);
    let b = insum_tensor::rand_uniform(vec![128, 64], -1.0, 1.0, &mut rng);
    let want = a.matmul(&b).expect("shapes agree");
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    for opts in option_grid() {
        let compiled = app.compile(&opts).expect("compiles");
        let (c, profile) = compiled.run(&app.tensors).expect("runs");
        let c2 = apps::unblock_output(&c);
        assert!(
            c2.allclose(&want, 1e-3, 1e-3),
            "configuration {opts:?} diverges (max diff {:?})",
            c2.max_abs_diff(&want)
        );
        assert!(profile.total_time() > 0.0);
    }
}

#[test]
fn unstructured_spmm_matches_baselines_numerically() {
    let mut rng = SmallRng::seed_from_u64(2);
    let spec = &catalog()[5]; // cora
    let adj = generate(spec, 8, &mut rng);
    let b = insum_tensor::rand_uniform(vec![adj.cols, 32], -1.0, 1.0, &mut rng);
    let g = heuristic_group_size(&adj.occupancy());
    let gc = GroupCoo::from_coo(&adj, g).expect("valid g");
    let app = apps::spmm_group(&gc, &b);
    let (ours, _) = app
        .compile(&InsumOptions::default())
        .expect("compiles")
        .run(&app.tensors)
        .expect("runs");

    let device = DeviceModel::rtx3090();
    let csr = Csr::from_coo(&adj);
    let (sput, _) =
        insum_baselines::spmm::sputnik_spmm(&csr, &b, &device, Mode::Execute).expect("runs");
    let (cus, _) =
        insum_baselines::spmm::cusparse_spmm(&csr, &b, &device, Mode::Execute).expect("runs");
    let dense_ref = adj.to_dense().matmul(&b).expect("shapes agree");
    assert!(ours.allclose(&dense_ref, 1e-3, 1e-3));
    assert!(sput.allclose(&dense_ref, 1e-3, 1e-3));
    assert!(cus.allclose(&dense_ref, 1e-3, 1e-3));
}

#[test]
fn sparse_conv_matches_all_baselines() {
    let mut rng = SmallRng::seed_from_u64(3);
    let spec = RoomSpec {
        name: "t",
        w: 2.0,
        d: 2.0,
        h: 2.0,
        furniture: 2,
    };
    let scene = voxelize(&generate_points(&spec, 0.25, &mut rng), 0.25);
    let c = 16;
    let input = insum_tensor::rand_uniform(vec![scene.len(), c], -1.0, 1.0, &mut rng);
    let weight = insum_tensor::rand_uniform(vec![27, c, c], -0.5, 0.5, &mut rng);
    let km = kernel_map(&scene, 16);
    let app = apps::sparse_conv(&km, &input, &weight);
    let (ours, _) = app
        .compile(&InsumOptions::default())
        .expect("compiles")
        .run(&app.tensors)
        .expect("runs");

    let device = DeviceModel::rtx3090();
    let (a1, _) =
        insum_baselines::conv::implicit_gemm_conv(&scene, &input, &weight, &device, Mode::Execute)
            .expect("runs");
    let (a2, _) = insum_baselines::conv::fetch_on_demand_conv(
        &scene,
        &input,
        &weight,
        &device,
        Mode::Execute,
    )
    .expect("runs");
    let (taco, _) =
        insum_baselines::conv::taco_conv(&scene, &input, &weight, &device, Mode::Execute)
            .expect("runs");
    let (stir, _) =
        insum_baselines::conv::sparsetir_conv(&scene, &input, &weight, &device, Mode::Execute)
            .expect("runs");
    for (name, t) in [
        ("algo1", &a1),
        ("algo2", &a2),
        ("taco", &taco),
        ("sparsetir", &stir),
    ] {
        assert!(
            ours.allclose(t, 1e-2, 1e-2),
            "{name} disagrees with ours (max diff {:?})",
            ours.max_abs_diff(t)
        );
    }
}

#[test]
fn equivariant_tp_matches_baselines() {
    let mut rng = SmallRng::seed_from_u64(4);
    let cg = cg_tensor(2, 4);
    let (batch, u, w) = (4, 8, 8);
    let x = insum_tensor::rand_uniform(vec![batch, cg.dim, u], -1.0, 1.0, &mut rng);
    let y = insum_tensor::rand_uniform(vec![batch, cg.dim], -1.0, 1.0, &mut rng);
    let wt = insum_tensor::rand_uniform(vec![batch, cg.paths.len(), u, w], -0.5, 0.5, &mut rng);
    let app = apps::equivariant_tp(&cg, &x, &y, &wt);
    let (ours, _) = app
        .compile(&InsumOptions::default())
        .expect("compiles")
        .run(&app.tensors)
        .expect("runs");
    let device = DeviceModel::rtx3090();
    let (e3, _) =
        insum_baselines::tp::e3nn_tp(&cg, &x, &y, &wt, &device, Mode::Execute).expect("runs");
    let (cueq, _) =
        insum_baselines::tp::cuequivariance_tp(&cg, &x, &y, &wt, &device, Mode::Execute)
            .expect("runs");
    assert!(
        ours.allclose(&e3, 1e-3, 1e-3),
        "e3nn diff {:?}",
        ours.max_abs_diff(&e3)
    );
    assert!(
        ours.allclose(&cueq, 1e-3, 1e-3),
        "cueq diff {:?}",
        ours.max_abs_diff(&cueq)
    );
}

#[test]
fn f16_structured_spmm_is_half_precision_accurate() {
    let mut rng = SmallRng::seed_from_u64(5);
    let a = block_sparse_dense(64, 64, 32, 32, 0.5, &mut rng).cast(DType::F16);
    let b = insum_tensor::rand_uniform(vec![64, 32], -1.0, 1.0, &mut rng).cast(DType::F16);
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let (c, _) = app
        .compile(&InsumOptions::default())
        .expect("compiles")
        .run(&app.tensors)
        .expect("runs");
    let want = a.matmul(&b).expect("shapes agree");
    // Half precision: tolerate ~1e-2 relative error on the accumulation.
    assert!(apps::unblock_output(&c).allclose(&want, 2e-2, 2e-2));
}

#[test]
fn fused_kernel_is_always_single_launch_and_cheapest() {
    let mut rng = SmallRng::seed_from_u64(6);
    let a = block_sparse_dense(128, 128, 32, 32, 0.8, &mut rng);
    let b = insum_tensor::rand_uniform(vec![128, 64], -1.0, 1.0, &mut rng);
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let fused = app.compile(&InsumOptions::default()).expect("compiles");
    let unfused = app.compile(&InsumOptions::unfused()).expect("compiles");
    assert_eq!(fused.kernel_count(), 1);
    assert!(unfused.kernel_count() >= 3);
    let t_f = fused.time(&app.tensors).expect("simulates").total_time();
    let t_u = unfused.time(&app.tensors).expect("simulates").total_time();
    assert!(t_f < t_u, "fusion must win: {t_f:.3e} vs {t_u:.3e}");
}

#[test]
fn torch_bsr_baseline_agrees_with_insum_numerics() {
    let mut rng = SmallRng::seed_from_u64(7);
    let a = block_sparse_dense(128, 128, 32, 32, 0.7, &mut rng);
    let b = insum_tensor::rand_uniform(vec![128, 64], -1.0, 1.0, &mut rng);
    let bcsr = Bcsr::from_dense(&a, 32, 32).expect("blocked");
    let (c_bsr, _) =
        insum_baselines::spmm::torch_bsr_spmm(&bcsr, &b, &DeviceModel::rtx3090(), Mode::Execute)
            .expect("runs");
    let want = a.matmul(&b).expect("shapes agree");
    assert!(c_bsr.allclose(&want, 1e-3, 1e-3));
}

#[test]
fn eager_reference_agrees_with_formats_roundtrip() {
    // The eager interpreter on the COO einsum equals dense matmul for a
    // random sparse matrix — ties lang/graph/formats/tensor together.
    let mut rng = SmallRng::seed_from_u64(8);
    let coo = insum_workloads::blocksparse::unstructured_coo(24, 30, 0.15, &mut rng);
    let b = insum_tensor::rand_uniform(vec![30, 8], -1.0, 1.0, &mut rng);
    let tensors: std::collections::BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![24, 8])),
        ("AM".to_string(), coo.am.clone()),
        ("AK".to_string(), coo.ak.clone()),
        ("AV".to_string(), coo.av.clone()),
        ("B".to_string(), b.clone()),
    ]
    .into_iter()
    .collect();
    let got = eager(apps::SPMM_COO_EXPR, &tensors).expect("evaluates");
    let want = coo.to_dense().matmul(&b).expect("shapes agree");
    assert!(got.allclose(&want, 1e-4, 1e-4));
}

#[test]
fn autotune_never_hurts() {
    let mut rng = SmallRng::seed_from_u64(9);
    let a = block_sparse_dense(128, 128, 32, 32, 0.5, &mut rng);
    let b = insum_tensor::rand_uniform(vec![128, 128], -1.0, 1.0, &mut rng);
    let bgc = BlockGroupCoo::from_dense(&a, 32, 32, 2).expect("blocked");
    let app = apps::spmm_block_group(&bgc, &b);
    let plain = app.compile(&InsumOptions::default()).expect("compiles");
    let tuned = app.compile(&InsumOptions::autotuned()).expect("compiles");
    let t_plain = plain.time(&app.tensors).expect("simulates").total_time();
    let t_tuned = tuned.time(&app.tensors).expect("simulates").total_time();
    assert!(
        t_tuned <= t_plain * 1.0001,
        "autotuned {t_tuned:.3e} vs default {t_plain:.3e}"
    );
}

#[test]
fn group_size_one_equals_coo_pipeline() {
    // GroupCOO with g = 1 must produce identical results to plain COO
    // through the whole compiled pipeline.
    let mut rng = SmallRng::seed_from_u64(10);
    let coo_m = insum_workloads::blocksparse::unstructured_coo(32, 40, 0.1, &mut rng);
    let b = insum_tensor::rand_uniform(vec![40, 16], -1.0, 1.0, &mut rng);
    let gc = GroupCoo::from_coo(&coo_m, 1).expect("valid g");
    let app_coo = apps::spmm_coo(&coo_m, &b);
    let app_gc = apps::spmm_group(&gc, &b);
    let opts = InsumOptions::default();
    let (c1, _) = app_coo
        .compile(&opts)
        .expect("compiles")
        .run(&app_coo.tensors)
        .expect("runs");
    let (c2, _) = app_gc
        .compile(&opts)
        .expect("compiles")
        .run(&app_gc.tensors)
        .expect("runs");
    assert!(c1.allclose(&c2, 1e-5, 1e-5));
}

#[test]
fn coo_reference_consistency_under_duplicates() {
    // Duplicate coordinates accumulate in both the eager reference and
    // the compiled kernel.
    let coo = Coo::from_triplets(4, 4, &[(1, 1, 2.0), (1, 1, 3.0)]).expect("in bounds");
    let b = Tensor::eye(4);
    let app = apps::spmm_coo(&coo, &b);
    let (c, _) = app
        .compile(&InsumOptions::default())
        .expect("compiles")
        .run(&app.tensors)
        .expect("runs");
    assert_eq!(c.at(&[1, 1]), 5.0);
}
