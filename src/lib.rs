//! Root crate for the Insum reproduction workspace.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). The actual library lives in
//! the `insum` crate (`crates/core`); see the README for a tour.
