//! Two-einsum attention served through `insum_serve`: scores (`QKᵀ`)
//! and values (`P·V`) are each a spec-form contraction routed through
//! the planner, with the softmax (the only non-einsum stage) on the
//! host between them. Two tenants run the same attention shapes on
//! their own data — the registry keys artifacts by expression, shapes,
//! and options, so both tenants share one plan artifact per einsum and
//! every pairwise step compiles exactly once process-wide.
//!
//! Run with: `cargo run --release --example attention`

use insum::{run_chain, Tensor};
use insum_serve::{ServeEngine, ServeError};
use insum_tensor::rand_uniform;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Scores einsum: `S[b,h,q,k] = Q[b,h,q,e] * K[b,h,k,e]` in spec form
/// (operands bind positionally as `op0`, `op1`).
const SCORES: &str = "bhqe,bhke->bhqk";
/// Values einsum: `O[b,h,q,d] = P[b,h,q,k] * V[b,h,k,d]`.
const VALUES: &str = "bhqk,bhkd->bhqd";

const BATCH: usize = 2;
const HEADS: usize = 4;
const SEQ: usize = 64;
const DIM: usize = 32;

/// Row-wise scaled softmax over the last (key) axis.
fn softmax(scores: &Tensor, dim: usize) -> Tensor {
    let shape = scores.shape().to_vec();
    let keys = *shape.last().expect("scores have a key axis");
    let scale = 1.0 / (dim as f32).sqrt();
    let mut data = scores.data().to_vec();
    for row in data.chunks_mut(keys) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v * scale));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v * scale - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Tensor::from_vec(shape, data).expect("softmax preserves the shape")
}

/// Integer-valued Q/K/V in {-2, …, 2}: the scores reduction is then
/// exact in f32, so the served scores can be checked bit-for-bit
/// against the dense einsum oracle (see the `insum_planner` docs for
/// the exactness domain).
fn qkv(seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t =
        || rand_uniform(vec![BATCH, HEADS, SEQ, DIM], -2.49, 2.49, &mut rng).map(f32::round);
    (t(), t(), t())
}

fn bind(a: &Tensor, b: &Tensor) -> BTreeMap<String, Tensor> {
    [
        ("op0".to_string(), a.clone()),
        ("op1".to_string(), b.clone()),
    ]
    .into_iter()
    .collect()
}

fn main() -> Result<(), ServeError> {
    let engine = ServeEngine::with_defaults()?;

    for (tenant, seed) in [("alice", 3u64), ("bob", 4u64)] {
        let session = engine.session(tenant);
        let (q, k, v) = qkv(seed);

        // Stage 1 (served): attention scores.
        let scores_in = bind(&q, &k);
        let scores = session.submit(SCORES, &scores_in)?.wait()?;
        // Integer data → the device reduction is exact: served scores
        // match the dense f64-accumulating oracle bit-for-bit.
        let want_scores = insum_tensor::einsum(SCORES, &[&q, &k]).expect("scores einsum");
        assert_eq!(scores.output.data(), want_scores.data(), "{tenant}: scores");

        // Stage 2 (host): scaled softmax over keys.
        let probs = softmax(&scores.output, DIM);

        // Stage 3 (served): weighted values. The probabilities are
        // generic floats now, so the check is the serving guarantee —
        // bit-identity with a standalone planned run of the same
        // request — plus closeness to the dense oracle.
        let values_in = bind(&probs, &v);
        let out = session.submit(VALUES, &values_in)?.wait()?;
        let (want_out, _) = run_chain(VALUES, &values_in).map_err(ServeError::from)?;
        assert_eq!(
            out.output.data(),
            want_out.data(),
            "{tenant}: served values must equal a standalone planned run"
        );
        let dense = insum_tensor::einsum(VALUES, &[&probs, &v]).expect("values einsum");
        let max_err = out
            .output
            .data()
            .iter()
            .zip(dense.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err < 1e-4,
            "{tenant}: values drifted {max_err} from dense"
        );

        println!(
            "{tenant}: attention output {:?} verified (scores registry hit: {}, \
             values registry hit: {})",
            out.output.shape(),
            scores.registry_hit,
            out.registry_hit
        );
    }

    // Both tenants shared one plan artifact per einsum: two compilations
    // total, and the second tenant hit the registry on both stages.
    let m = engine.metrics();
    assert_eq!(m.registry.misses, 2, "one plan artifact per einsum");
    assert_eq!(m.registry.hits, 2, "the second tenant reused both");
    println!(
        "served {} attention stages for 2 tenants with {} plan compilations \
         ({} registry hits)",
        m.completed, m.registry.misses, m.registry.hits
    );
    Ok(())
}
