//! Attention served through `insum_serve`, staged to exercise the
//! pattern fast path: the Kᵀ layout change and the probability-mass
//! reduction are canonical einsums that dispatch to zero-copy stride
//! views / microkernels, while the two contractions (`QKᵀ` scores and
//! `P·V` values) are spec-form chains routed through the planner, with
//! the softmax (the only non-einsum stage) on the host. Two tenants run
//! the same attention shapes on their own data — the registry keys
//! artifacts by expression, shapes, and options, so both tenants share
//! every artifact and each stage compiles exactly once process-wide.
//!
//! Each stage prints whether it dispatched onto the fast path (and to
//! which pattern) or onto the general lowering.
//!
//! Run with: `cargo run --release --example attention`

use insum::{insum_with, run_chain, InsumOptions, Tensor};
use insum_serve::{ServeEngine, ServeError};
use insum_tensor::rand_uniform;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Key transpose: a pure layout change, `Pattern::Transpose` territory.
const KEY_T: &str = "KT[b,h,e,k] = K[b,h,k,e]";
/// Scores einsum against the transposed keys:
/// `S[b,h,q,k] = Q[b,h,q,e] * KT[b,h,e,k]` in spec form (operands bind
/// positionally as `op0`, `op1`).
const SCORES: &str = "bhqe,bhek->bhqk";
/// Values einsum: `O[b,h,q,d] = P[b,h,q,k] * V[b,h,k,d]`.
const VALUES: &str = "bhqk,bhkd->bhqd";
/// Probability mass per query row (sums the key axis away):
/// `Pattern::Reduction` territory, used to sanity-check the softmax.
const MASS: &str = "M[b,h,q] = P[b,h,q,k]";

const BATCH: usize = 2;
const HEADS: usize = 4;
const SEQ: usize = 64;
const DIM: usize = 32;

/// Row-wise scaled softmax over the last (key) axis.
fn softmax(scores: &Tensor, dim: usize) -> Tensor {
    let shape = scores.shape().to_vec();
    let keys = *shape.last().expect("scores have a key axis");
    let scale = 1.0 / (dim as f32).sqrt();
    let mut data = scores.contiguous_data().to_vec();
    for row in data.chunks_mut(keys) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v * scale));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v * scale - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Tensor::from_vec(shape, data).expect("softmax preserves the shape")
}

/// Integer-valued Q/K/V in {-2, …, 2}: the scores reduction is then
/// exact in f32, so the served scores can be checked bit-for-bit
/// against the dense einsum oracle (see the `insum_planner` docs for
/// the exactness domain).
fn qkv(seed: u64) -> (Tensor, Tensor, Tensor) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t =
        || rand_uniform(vec![BATCH, HEADS, SEQ, DIM], -2.49, 2.49, &mut rng).map(f32::round);
    (t(), t(), t())
}

fn bind(a: &Tensor, b: &Tensor) -> BTreeMap<String, Tensor> {
    [
        ("op0".to_string(), a.clone()),
        ("op1".to_string(), b.clone()),
    ]
    .into_iter()
    .collect()
}

/// How a statement-form stage dispatches: the recognized fast-path
/// pattern's name, or `"general"` for the full lowering.
fn dispatch_of(expr: &str, tensors: &BTreeMap<String, Tensor>) -> String {
    match insum_with(expr, tensors, &InsumOptions::default()) {
        Ok(compiled) => compiled
            .fast_path_pattern()
            .map(|p| format!("fast:{}", p.name()))
            .unwrap_or_else(|| "general".to_string()),
        Err(e) => format!("error: {e}"),
    }
}

fn main() -> Result<(), ServeError> {
    let engine = ServeEngine::with_defaults()?;

    for (tenant, seed) in [("alice", 3u64), ("bob", 4u64)] {
        let session = engine.session(tenant);
        let (q, k, v) = qkv(seed);

        // Stage 1 (served, fast path): transpose the keys into the
        // (e, k) layout the scores contraction consumes. This is a pure
        // stride transform — the served output is a view of K's own
        // storage; no bytes moved.
        let kt_in: BTreeMap<String, Tensor> = [
            ("K".to_string(), k.clone()),
            (
                "KT".to_string(),
                Tensor::zeros(vec![BATCH, HEADS, DIM, SEQ]),
            ),
        ]
        .into_iter()
        .collect();
        println!(
            "{tenant}: stage keyT    dispatch {}",
            dispatch_of(KEY_T, &kt_in)
        );
        let kt = session.submit(KEY_T, &kt_in)?.wait()?.output;
        assert!(
            kt.shares_storage(&k),
            "{tenant}: transposed keys must be a zero-copy view"
        );

        // Stage 2 (served, general): attention scores through the
        // planner chain.
        println!("{tenant}: stage scores  dispatch general (planner chain)");
        let scores_in = bind(&q, &kt);
        let scores = session.submit(SCORES, &scores_in)?.wait()?;
        // Integer data → the device reduction is exact: served scores
        // match the dense f64-accumulating oracle bit-for-bit.
        let want_scores = insum_tensor::einsum(SCORES, &[&q, &kt]).expect("scores einsum");
        assert_eq!(
            *scores.output.contiguous_data(),
            *want_scores.contiguous_data(),
            "{tenant}: scores"
        );

        // Stage 3 (host): scaled softmax over keys.
        let probs = softmax(&scores.output, DIM);

        // Stage 4 (served, fast path): probability mass per query row —
        // a reduction microkernel — which must give 1 for every row.
        let mass_in: BTreeMap<String, Tensor> = [
            ("P".to_string(), probs.clone()),
            ("M".to_string(), Tensor::zeros(vec![BATCH, HEADS, SEQ])),
        ]
        .into_iter()
        .collect();
        println!(
            "{tenant}: stage mass    dispatch {}",
            dispatch_of(MASS, &mass_in)
        );
        let mass = session.submit(MASS, &mass_in)?.wait()?.output;
        assert!(
            mass.contiguous_data()
                .iter()
                .all(|&m| (m - 1.0).abs() < 1e-5),
            "{tenant}: softmax rows must sum to 1"
        );

        // Stage 5 (served, general): weighted values. The probabilities
        // are generic floats now, so the check is the serving guarantee
        // — bit-identity with a standalone planned run of the same
        // request — plus closeness to the dense oracle.
        println!("{tenant}: stage values  dispatch general (planner chain)");
        let values_in = bind(&probs, &v);
        let out = session.submit(VALUES, &values_in)?.wait()?;
        let (want_out, _) = run_chain(VALUES, &values_in).map_err(ServeError::from)?;
        assert_eq!(
            out.output.data(),
            want_out.data(),
            "{tenant}: served values must equal a standalone planned run"
        );
        let dense = insum_tensor::einsum(VALUES, &[&probs, &v]).expect("values einsum");
        let max_err = out
            .output
            .data()
            .iter()
            .zip(dense.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err < 1e-4,
            "{tenant}: values drifted {max_err} from dense"
        );

        println!(
            "{tenant}: attention output {:?} verified (scores registry hit: {}, \
             values registry hit: {})",
            out.output.shape(),
            scores.registry_hit,
            out.registry_hit
        );
    }

    // Both tenants shared every artifact — two fast-path statements and
    // two chain plans: four compilations total, and the second tenant
    // hit the registry on all four stages.
    let m = engine.metrics();
    assert_eq!(m.registry.misses, 4, "one artifact per served stage");
    assert_eq!(m.registry.hits, 4, "the second tenant reused all four");
    println!(
        "served {} attention stages for 2 tenants with {} artifact compilations \
         ({} registry hits)",
        m.completed, m.registry.misses, m.registry.hits
    );
    Ok(())
}
