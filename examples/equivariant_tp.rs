//! Equivariant tensor product (paper §6.5): contract exact Clebsch–Gordan
//! coefficients with batched features and per-path weights through one
//! indirect Einsum, and check equivariance-adjacent invariants against
//! the e3nn-style baseline.
//!
//! Run with: `cargo run --release --example equivariant_tp`

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_gpu::DeviceModel;
use insum_workloads::equivariant::{cg_tensor, irrep_dim};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let lmax = 2;
    let (batch, u, w) = (32, 16, 16);
    let cg = cg_tensor(lmax, 8);
    println!(
        "lmax = {lmax}: {} coupling paths, {} CG nonzeros over a {}^3 x paths tensor",
        cg.paths.len(),
        cg.nnz,
        irrep_dim(lmax)
    );

    let mut rng = SmallRng::seed_from_u64(5);
    let x = insum_tensor::rand_uniform(vec![batch, cg.dim, u], -1.0, 1.0, &mut rng);
    let y = insum_tensor::rand_uniform(vec![batch, cg.dim], -1.0, 1.0, &mut rng);
    let wt = insum_tensor::rand_uniform(vec![batch, cg.paths.len(), u, w], -0.5, 0.5, &mut rng);

    let app = apps::equivariant_tp(&cg, &x, &y, &wt);
    println!("\nexpression: {}", app.expr);
    let compiled = app.compile(&InsumOptions::default()).expect("compiles");
    let (z, profile) = compiled.run(&app.tensors).expect("runs");
    println!(
        "fused kernels: {}, tensor cores: {}",
        compiled.kernel_count(),
        compiled.uses_tensor_cores()
    );
    println!("{profile}");

    // Agreement with the per-path e3nn-style baseline (2 launches/path).
    let device = DeviceModel::rtx3090();
    let (z_ref, p_e3) =
        insum_baselines::tp::e3nn_tp(&cg, &x, &y, &wt, &device, Mode::Execute).expect("runs");
    assert!(
        z.allclose(&z_ref, 1e-3, 1e-3),
        "tensor product agrees with e3nn"
    );
    println!(
        "verified against e3nn ({} launches); simulated speedup {:.2}x",
        p_e3.launches(),
        p_e3.total_time() / profile.total_time()
    );

    // Scalar-path sanity: the l3 = 0 output block is the rotation-invariant
    // channel; it must be identical when inputs are globally scaled by -1
    // on odd-parity irreps... here we simply check it is nonzero and finite.
    let invariant_energy: f32 = (0..batch).map(|b| z.at(&[b, 0, 0]).abs()).sum();
    assert!(invariant_energy.is_finite() && invariant_energy > 0.0);
    println!("scalar (l=0) output channel energy: {invariant_energy:.3}");
}
