//! Point-cloud sparse convolution end to end: synthesize an indoor room,
//! voxelize it, build the grouped kernel map, and run one submanifold
//! 3×3×3 convolution layer through the Insum compiler — the paper's §6.4
//! case study, whose hand-written competitor (TorchSparse) is ~4500 lines
//! of CUDA.
//!
//! Run with: `cargo run --release --example point_cloud_conv`

use insum::apps;
use insum::{DType, InsumOptions, Mode};
use insum_formats::heuristic::heuristic_group_size;
use insum_gpu::DeviceModel;
use insum_workloads::pointcloud::{generate_points, kernel_map, rooms, voxelize};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(3);
    let room = rooms()
        .into_iter()
        .find(|r| r.name == "office")
        .expect("office exists");
    println!(
        "scene: {} ({}x{}x{} m, {} furniture pieces)",
        room.name, room.w, room.d, room.h, room.furniture
    );

    let points = generate_points(&room, 0.08, &mut rng);
    let scene = voxelize(&points, 0.12);
    println!(
        "{} points -> {} occupied voxels at 12 cm",
        points.len(),
        scene.len()
    );

    // Grouped kernel map (grouping by weight offset, §6.4).
    let occ: Vec<usize> = insum_baselines::conv::pairs_by_offset(&scene)
        .iter()
        .map(Vec::len)
        .collect();
    let g = heuristic_group_size(&occ).clamp(8, 64);
    let km = kernel_map(&scene, g);
    println!(
        "kernel map: {} pairs in {} groups of {} (padding {:.1}%)",
        km.pairs,
        km.groups(),
        km.group_size,
        100.0 * (1.0 - km.pairs as f64 / (km.groups() * km.group_size) as f64),
    );

    let channels = 32;
    let input = insum_tensor::rand_uniform(vec![scene.len(), channels], -1.0, 1.0, &mut rng)
        .cast(DType::F16);
    let weight = insum_tensor::rand_uniform(vec![27, channels, channels], -0.5, 0.5, &mut rng)
        .cast(DType::F16);

    let app = apps::sparse_conv(&km, &input, &weight);
    println!("\nexpression: {}", app.expr);
    let compiled = app.compile(&InsumOptions::default()).expect("compiles");
    let (out, profile) = compiled.run(&app.tensors).expect("runs");
    println!(
        "fused kernels: {}, tensor cores: {}",
        compiled.kernel_count(),
        compiled.uses_tensor_cores()
    );
    println!("{profile}");

    // Check against the hand-written ImplicitGEMM baseline.
    let device = DeviceModel::rtx3090();
    let (ref_out, p_ig) =
        insum_baselines::conv::implicit_gemm_conv(&scene, &input, &weight, &device, Mode::Execute)
            .expect("baseline runs");
    assert!(
        out.allclose(&ref_out, 2e-2, 2e-2),
        "conv agrees with ImplicitGEMM"
    );
    println!(
        "verified against ImplicitGEMM; simulated speedup {:.2}x (one expression vs a CUDA library)",
        p_ig.total_time() / profile.total_time()
    );
}
