//! Multi-tenant serving: two tenants stream SpMM requests at one
//! `insum_serve` engine; the registry compiles once, the scheduler
//! batches compatible launches, and every response is bit-identical to
//! a standalone `insum(...).run(...)` of the same request.
//!
//! Run with: `cargo run --release --example serving`

use insum::{insum, Tensor};
use insum_serve::{ServeConfig, ServeEngine, ServeError};
use insum_tensor::{rand_uniform, randint};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const SPMM: &str = "C[AM[p],n] += AV[p] * B[AK[p],n]";

fn request(seed: u64) -> BTreeMap<String, Tensor> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nnz = 64;
    [
        ("C".to_string(), Tensor::zeros(vec![32, 64])),
        ("AM".to_string(), randint(vec![nnz], 32, &mut rng)),
        ("AK".to_string(), randint(vec![nnz], 48, &mut rng)),
        (
            "AV".to_string(),
            rand_uniform(vec![nnz], -1.0, 1.0, &mut rng),
        ),
        (
            "B".to_string(),
            rand_uniform(vec![48, 64], -1.0, 1.0, &mut rng),
        ),
    ]
    .into_iter()
    .collect()
}

fn main() -> Result<(), ServeError> {
    let engine = ServeEngine::new(ServeConfig::default().with_max_batch(4))?;

    // Two tenants submit concurrently; requests share the kernel (same
    // expression and shapes), so the scheduler batches across tenants.
    let responses = std::thread::scope(|scope| {
        let workers: Vec<_> = ["alice", "bob"]
            .into_iter()
            .map(|tenant| {
                let session = engine.session(tenant);
                scope.spawn(move || {
                    let handles: Vec<_> = (0..4)
                        .map(|i| {
                            let tensors = request(i);
                            let handle = session.submit(SPMM, &tensors)?;
                            Ok((tensors, handle))
                        })
                        .collect::<Result<_, ServeError>>()?;
                    handles
                        .into_iter()
                        .map(|(tensors, h)| Ok((tensors, h.wait()?)))
                        .collect::<Result<Vec<_>, ServeError>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("tenant thread panicked"))
            .flatten()
            .collect::<Vec<_>>()
    });

    // The determinism guarantee: batched responses equal standalone runs.
    for (tensors, response) in &responses {
        let (want, _) = insum(SPMM, tensors)
            .map_err(ServeError::from)?
            .run(tensors)
            .map_err(ServeError::from)?;
        assert_eq!(response.output.data(), want.data(), "bit-identical");
    }

    // The metrics snapshot renders itself (per-tenant latency
    // percentiles included), and the program cache prints its own
    // one-line summary.
    let m = engine.metrics();
    println!("{m}");
    println!("{}", insum_inductor::ProgramCache::global().stats());

    // A response carries its full span: every phase the request went
    // through, timestamped on the engine clock.
    if let Some(trace) = &responses[0].1.trace {
        println!("first response's span:\n{trace}");
    }
    Ok(())
}
