//! Quickstart: express SpMM over a COO matrix as one indirect Einsum,
//! compile it to a fused simulated-GPU kernel, and verify the result
//! against a dense reference.
//!
//! Run with: `cargo run --release --example quickstart`

use insum::{eager, insum, Tensor};
use insum_formats::Coo;
use std::collections::BTreeMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A 6x8 sparse matrix with a handful of nonzeros.
    let mut a = Tensor::zeros(vec![6, 8]);
    for (r, c, v) in [
        (0, 1, 2.0),
        (0, 5, -1.0),
        (2, 2, 3.0),
        (4, 7, 0.5),
        (5, 0, 1.5),
    ] {
        a.set(&[r, c], v);
    }
    let coo = Coo::from_dense(&a)?;
    let b = Tensor::from_fn(vec![8, 4], |i| (i[0] + 2 * i[1]) as f32 * 0.1);

    // Bind the format's tensors to the indirect Einsum of paper Fig. 2:
    //   C[AM[p], n] += AV[p] * B[AK[p], n]
    let tensors: BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![6, 4])),
        ("AM".to_string(), coo.am.clone()),
        ("AK".to_string(), coo.ak.clone()),
        ("AV".to_string(), coo.av.clone()),
        ("B".to_string(), b.clone()),
    ]
    .into_iter()
    .collect();

    let expr = "C[AM[p],n] += AV[p] * B[AK[p],n]";
    let op = insum(expr, &tensors)?;

    println!("expression : {expr}");
    println!("kernels    : {} (fully fused)", op.kernel_count());
    println!("tensor cores: {}", op.uses_tensor_cores());
    println!("\ngenerated Triton-like kernel:\n{}", op.triton_source());

    let (c, profile) = op.run(&tensors)?;
    println!("{profile}");

    // Three-way check: compiled kernel == eager graph == dense matmul.
    let reference = a.matmul(&b)?;
    let eager_result = eager(expr, &tensors)?;
    assert!(
        c.allclose(&reference, 1e-5, 1e-5),
        "kernel matches dense matmul"
    );
    assert!(
        c.allclose(&eager_result, 1e-5, 1e-5),
        "kernel matches eager reference"
    );
    println!("verified: compiled kernel == eager reference == dense matmul");
    Ok(())
}
