//! Inspect the compiler: print the fusion plan roles and the generated
//! Triton-like kernels for the paper's running example
//! `C[D[y],x] += A[y,E[r]] * B[r,x]` (Fig. 9) in all three codegen modes,
//! plus the unfused stock-Inductor pipeline shape.
//!
//! Run with: `cargo run --release --example inspect_codegen`

use insum::{insum_with, InsumOptions, Tensor};
use std::collections::BTreeMap;

fn main() {
    let (m, k, r, n) = (64, 128, 32, 64);
    let tensors: BTreeMap<String, Tensor> = [
        ("C".to_string(), Tensor::zeros(vec![m, n])),
        ("D".to_string(), Tensor::arange(r)),
        ("A".to_string(), Tensor::zeros(vec![r, k])),
        ("E".to_string(), Tensor::arange(r)),
        ("B".to_string(), Tensor::zeros(vec![r, n])),
    ]
    .into_iter()
    .collect();
    let expr = "C[D[y],x] += A[y,E[r]] * B[r,x]";
    println!("expression: {expr}\n");

    for (label, opts) in [
        (
            "lazy broadcasting + tl.dot (ours, Fig. 9)",
            InsumOptions::default(),
        ),
        (
            "eager broadcasting + tl.dot (Fig. 8b)",
            InsumOptions {
                lazy_broadcast: false,
                ..Default::default()
            },
        ),
        (
            "no ops.dot: scalar multiply + tl.sum (Fig. 8a)",
            InsumOptions {
                tensor_cores: false,
                ..Default::default()
            },
        ),
    ] {
        let op = insum_with(expr, &tensors, &opts).expect("compiles");
        println!("# ==== {label} ====");
        println!("{}", op.triton_source());
        let t = op.time(&tensors).expect("simulates").total_time();
        println!(
            "# simulated: {:.2} us, tensor cores: {}\n",
            t * 1e6,
            op.uses_tensor_cores()
        );
    }

    let unfused = insum_with(expr, &tensors, &InsumOptions::unfused()).expect("compiles");
    let profile = unfused.time(&tensors).expect("simulates");
    println!("# ==== stock Inductor (unfused) ====");
    println!(
        "# {} kernels (gather, template matmul, scatter), simulated {:.2} us:",
        unfused.kernel_count(),
        profile.total_time() * 1e6
    );
    for r in &profile.reports {
        println!("#   {r}");
    }
}
