//! GNN-style unstructured SpMM: aggregate neighbour features over a
//! synthetic citation graph (the cora model from the Fig. 11 suite),
//! comparing Insum's GroupCOO kernel against the Sputnik- and
//! cuSPARSE-style baselines on the same simulated GPU.
//!
//! Run with: `cargo run --release --example gnn_spmm`

use insum::apps;
use insum::{InsumOptions, Mode};
use insum_formats::heuristic::heuristic_group_size;
use insum_formats::{Csr, GroupCoo};
use insum_gpu::DeviceModel;
use insum_workloads::graphs::{catalog, generate, gini};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let spec = catalog()
        .into_iter()
        .find(|s| s.name == "cora")
        .expect("cora is in the catalog");
    let adj = generate(&spec, 1, &mut rng); // full-size cora model
    let feats = insum_tensor::rand_uniform(vec![adj.cols, 128], -1.0, 1.0, &mut rng);
    println!(
        "graph: {} nodes, {} edges, degree skew (gini) {:.2}",
        adj.rows,
        adj.nnz(),
        gini(&adj.occupancy())
    );

    // Ours: GroupCOO with the sqrt(S/n) group size.
    let g = heuristic_group_size(&adj.occupancy());
    let gc = GroupCoo::from_coo(&adj, g).expect("valid group size");
    println!(
        "GroupCOO: g = {g}, {} groups, {} slots",
        gc.num_groups(),
        gc.slots()
    );
    let app = apps::spmm_group(&gc, &feats);
    let compiled = app.compile(&InsumOptions::default()).expect("compiles");
    let (ours_out, ours_profile) = compiled.run(&app.tensors).expect("runs");

    // Baselines on the same simulated device.
    let device = DeviceModel::rtx3090();
    let csr = Csr::from_coo(&adj);
    let (sput_out, p_sput) =
        insum_baselines::spmm::sputnik_spmm(&csr, &feats, &device, Mode::Execute).expect("runs");
    let (cus_out, p_cus) =
        insum_baselines::spmm::cusparse_spmm(&csr, &feats, &device, Mode::Execute).expect("runs");

    // All three agree numerically.
    assert!(ours_out.allclose(&sput_out, 1e-3, 1e-3));
    assert!(ours_out.allclose(&cus_out, 1e-3, 1e-3));

    let (t_ours, t_sput, t_cus) = (
        ours_profile.total_time(),
        p_sput.total_time(),
        p_cus.total_time(),
    );
    println!("\nsimulated aggregation times (one layer, N = 128):");
    println!("  insum (GroupCOO, 1 expression): {:>8.2} us", t_ours * 1e6);
    println!(
        "  sputnik-style (swizzled CSR)  : {:>8.2} us  ({:.2}x)",
        t_sput * 1e6,
        t_sput / t_ours
    );
    println!(
        "  cusparse-style (CSR)          : {:>8.2} us  ({:.2}x)",
        t_cus * 1e6,
        t_cus / t_ours
    );
}
